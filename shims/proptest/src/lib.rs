//! Workspace-local, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this repository is fully offline, so the real
//! crates-io `proptest` cannot be fetched. This shim implements the subset
//! of the API the workspace's property tests actually use:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - strategies built from integer ranges, tuples of strategies,
//!   [`collection::vec`], and [`any`] for primitive types,
//! - combinators: [`strategy::Strategy::prop_map`], [`strategy::Just`] and
//!   the [`prop_oneof!`] macro (uniform choice, no weights).
//!
//! Sampling is **deterministic**: every test function derives its RNG seed
//! from its own name and the case index, so failures reproduce exactly
//! across runs and machines. Unlike the real proptest there is no
//! shrinking; on failure the full generated input is printed instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Mirrors the real crate's `Strategy` trait, reduced to the one method
    /// the shim needs: sample a value from a deterministic RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value: std::fmt::Debug;
        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map sampled values through `f` (the real crate's `prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: std::fmt::Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: std::fmt::Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing one fixed value (the real crate's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (built by [`prop_oneof!`];
    /// the real crate's weighted unions are not supported).
    pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

    impl<T: std::fmt::Debug> Union<T> {
        /// New union over `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "empty prop_oneof!");
            Union(alternatives)
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Box a strategy for [`Union`] (used by the [`prop_oneof!`] macro).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Uniform in [start, end) from 53 random mantissa bits.
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: each element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 RNG used to sample strategies.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name and case index so each case is stable
        /// across runs, platforms and test orderings.
        pub fn deterministic(name: &str, case: u32) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h ^ ((case as u64) << 32 | 0x9e37_79b9))
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; the shim uses a smaller count
            // because this workspace's cases each run a whole simulation.
            ProptestConfig { cases: 64 }
        }
    }

    /// How one sampled case ended (used by the `proptest!` expansion).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CaseOutcome {
        /// Body ran to completion.
        Pass,
        /// A `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Strategy producing arbitrary values of a primitive type.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any::default()
    }
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Choose uniformly between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Skip the current case when its sampled inputs are uninteresting.
/// Only valid directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Reject;
        }
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// item runs `cases` sampled inputs through its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                let vals = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let dbg = format!("{:?}", vals);
                let ($($arg,)+) = vals;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::CaseOutcome {
                        $body
                        $crate::test_runner::CaseOutcome::Pass
                    },
                ));
                match outcome {
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!(
                            "proptest {}: case {}/{} failed with input {}",
                            stringify!($name), case + 1, cfg.cases, dbg
                        );
                        std::panic::resume_unwind(e);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = TestRng::deterministic("vec", 0);
        for _ in 0..100 {
            let v = collection::vec(0u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_map_and_just_compose() {
        let strat = prop_oneof![Just(0u64), (10u64..20).prop_map(|v| v * 2)];
        let mut rng = TestRng::deterministic("oneof", 0);
        let mut saw_zero = false;
        let mut saw_even = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || (20..40).contains(&v), "{v}");
            saw_zero |= v == 0;
            saw_even |= v >= 20;
        }
        assert!(saw_zero && saw_even, "both branches must be sampled");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_cases(x in 0u64..100, flip in any::<bool>(),
                                 v in collection::vec(0u8..4, 0..8)) {
            prop_assert!(x < 100);
            let parity: u64 = if flip { 1 } else { 0 };
            prop_assert!(parity <= 1);
            prop_assert!(v.len() < 8);
        }
    }
}
