//! Workspace-local, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so the real crates-io criterion
//! cannot be fetched. This shim keeps the workspace's `harness = false`
//! benches compiling and running with the same source: it implements
//! benchmark groups, `bench_function` / `bench_with_input`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — one warm-up call, then
//! `sample_size` timed calls — and reports min / median / mean wall-clock
//! time per iteration (plus elements/sec when a throughput is set). It
//! favours predictable runtime over statistical rigour; use an external
//! profiler for serious measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements (events, items...).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed();
            std::hint::black_box(out);
            self.samples.push(dt);
        }
    }
}

/// Summary of one benchmark's samples.
#[derive(Debug, Clone)]
pub struct SampleStats {
    /// Benchmark name (group/id).
    pub name: String,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl SampleStats {
    fn from_samples(name: String, mut samples: Vec<Duration>, tp: Option<Throughput>) -> Self {
        assert!(!samples.is_empty(), "bench {name} recorded no samples");
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let sum: Duration = samples.iter().sum();
        let mean = sum / samples.len() as u32;
        SampleStats {
            name,
            min,
            median,
            mean,
            throughput: tp,
        }
    }

    /// Elements (or bytes) per second at the median time, when a
    /// throughput was declared.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        let s = self.median.as_secs_f64();
        (s > 0.0).then(|| units as f64 / s)
    }

    fn report(&self) {
        let rate = match self.rate_per_sec() {
            Some(r) => format!("  ({r:.0} elem/s)"),
            None => String::new(),
        };
        println!(
            "bench {:<40} min {:>12?}  median {:>12?}  mean {:>12?}{rate}",
            self.name, self.min, self.median, self.mean
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: &'a mut Vec<SampleStats>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::with_capacity(self.sample_size),
        };
        f(&mut b);
        let stats =
            SampleStats::from_samples(format!("{}/{id}", self.name), b.samples, self.throughput);
        stats.report();
        self.results.push(stats);
        self
    }

    /// Run one benchmark over an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for source compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<SampleStats>,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            results: &mut self.results,
        }
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[SampleStats] {
        &self.results
    }
}

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_report_rate() {
        let s = SampleStats::from_samples(
            "g/x".into(),
            vec![Duration::from_millis(2), Duration::from_millis(4)],
            Some(Throughput::Elements(4000)),
        );
        assert_eq!(s.min, Duration::from_millis(2));
        // Median of two samples is the second after sort.
        assert_eq!(s.median, Duration::from_millis(4));
        let r = s.rate_per_sec().unwrap();
        assert!((r - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].name, "grp/noop");
    }
}
