//! Simulation-as-a-service cache demo: the same clock sweep served cold
//! (simulated) and then warm (answered from the content-addressed snapshot
//! store), with bit-identical records.
//!
//! ```text
//! cargo run --release --example serve_cache
//! ```

use drcf::serve::scenario::SweepRequest;
use drcf::serve::server::process_sweep;
use drcf::serve::store::SnapshotStore;

fn main() {
    let dir = std::env::temp_dir().join(format!("drcf-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::open(&dir).expect("open store");
    let req = SweepRequest::small(4_000, vec![150, 300, 600]);

    let t0 = std::time::Instant::now();
    let cold = process_sweep(&store, &req).expect("cold sweep");
    let cold_t = t0.elapsed();
    let t1 = std::time::Instant::now();
    let warm = process_sweep(&store, &req).expect("warm sweep");
    let warm_t = t1.elapsed();

    println!(
        "cold: simulated={} from_cache={} in {cold_t:?}",
        cold.simulated, cold.from_cache
    );
    println!(
        "warm: simulated={} from_cache={} in {warm_t:?}",
        warm.simulated, warm.from_cache
    );
    println!("bit-identical: {}", cold.records == warm.records);
    for r in &cold.records {
        println!(
            "  clock {:>4} MHz -> makespan {:.0} ns",
            r.param("clock_mhz").unwrap_or("?"),
            r.makespan_ns
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
