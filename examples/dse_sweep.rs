//! Design-space exploration: which accelerators should fold into the DRCF?
//!
//! Enumerates every folding subset for the video pipeline, simulates all
//! of them in parallel (rayon over deterministic single-threaded runs),
//! extracts the makespan/area Pareto front, and dumps the full record set
//! as JSON for external plotting.
//!
//! Run with: `cargo run --release --example dse_sweep`

use drcf::prelude::*;

fn main() {
    let w = video_pipeline(4, 64);
    println!("exploring folding subsets for '{}'...\n", w.name);

    let outcomes = explore_partitions(&w, &SocSpec::default(), &morphosys(), 2);
    let records: Vec<RunRecord> = outcomes.iter().map(|o| o.record.clone()).collect();
    let front = pareto_front(&records, &[objectives::makespan, objectives::area]);

    let mut t = Table::new(
        "all folding subsets (min fold = 2)",
        &[
            "folded",
            "makespan",
            "area(kgate)",
            "switches",
            "hit rate",
            "Pareto",
        ],
    );
    for (i, o) in outcomes.iter().enumerate() {
        t.row(vec![
            if o.folded.is_empty() {
                "(none)".into()
            } else {
                o.folded.join("+")
            },
            fmt_ns(o.record.makespan_ns),
            format!("{:.1}", o.record.area_gates as f64 / 1000.0),
            o.record.switches.to_string(),
            fmt_pct(o.record.hit_rate),
            if front.contains(&i) {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
    print!("{}", t.render());

    // Cross-check against the §5.1 rules.
    let (profile, _) = asap_profile(&w).expect("library workloads are acyclic");
    let groups = select_candidates(&profile, &SelectionRules::default());
    println!("\nrule-based proposal(s):");
    for g in &groups {
        println!("  fold {:?} — {}", g.instances, g.rationale);
    }

    // Dump records for plotting.
    let json = records_to_json(&records).to_string_pretty();
    let path = std::env::temp_dir().join("drcf_dse_records.json");
    std::fs::write(&path, json).expect("write JSON");
    println!("\nwrote {} records to {}", records.len(), path.display());
    println!("Pareto-optimal subsets: {:?}", front);
}
