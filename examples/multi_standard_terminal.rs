//! Multi-standard terminal: the reconfiguration-churn stress case.
//!
//! A terminal alternating between two radio standards every frame forces a
//! context switch per frame on a shared fabric. The example compares the
//! paper's reactive scheduler against the MorphoSys-style extensions
//! (multi-slot residency, sequence prefetch, background loading) and shows
//! where the churn stops hurting.
//!
//! Run with: `cargo run --example multi_standard_terminal`

use drcf::prelude::*;

fn run_policy(
    w: &Workload,
    slots: usize,
    prefetch: bool,
    overlap: bool,
    switch_every: usize,
) -> RunMetrics {
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        memory: MemoryConfig {
            base: 0,
            size_words: 0x20000,
            dual_port: true,
            ..MemoryConfig::default()
        },
        mapping: Mapping::Drcf {
            geometry: size_fabric(w, &names, 1.1, slots),
            candidates: names,
            technology: varicore(),
            config_path: SocConfigPath::DirectPort,
            scheduler: SchedulerConfig {
                slots,
                prefetch: if prefetch {
                    PrefetchPolicy::Sequence(vec![0, 1, 2, 3])
                } else {
                    PrefetchPolicy::None
                },
                eviction: EvictionPolicy::Lru,
            },
            overlap_load_exec: overlap,
        },
        ..SocSpec::default()
    };
    let m = run_soc(build_soc(w, &spec).expect("build")).0;
    assert!(m.ok, "switch_every={switch_every} slots={slots}");
    m
}

fn main() {
    println!("multi-standard terminal: standard A (FIR+FFT) vs B (DCT+AES)\n");

    // Part 1: churn rate sweep under the reactive scheduler.
    // Two slots: a standard's kernel pair stays resident while the terminal
    // stays on that standard, so the reconfiguration cost tracks the
    // standard-switching rate.
    let mut t = Table::new(
        "reactive scheduler (2 slots) vs standard-switching rate (12 frames)",
        &[
            "switch every",
            "makespan",
            "switches",
            "hit rate",
            "reconfig ovh",
        ],
    );
    for switch_every in [1usize, 2, 3, 6, 12] {
        let w = multi_standard(12, 64, switch_every);
        let m = run_policy(&w, 2, false, false, switch_every);
        t.row(vec![
            format!("{switch_every} frame(s)"),
            fmt_ns(m.makespan.as_ns_f64()),
            m.switches.to_string(),
            fmt_pct(m.hit_rate),
            fmt_pct(m.reconfig_overhead),
        ]);
    }
    print!("{}", t.render());
    println!();

    // Part 2: scheduling policies at worst-case churn.
    let w = multi_standard(12, 64, 1);
    let mut t = Table::new(
        "scheduling policies at switch-every-frame churn",
        &[
            "policy",
            "makespan",
            "switches",
            "hit rate",
            "blocking reconfig",
        ],
    );
    for (name, slots, prefetch, overlap) in [
        ("reactive, 1 slot (paper)", 1, false, false),
        ("reactive, 2 slots", 2, false, false),
        ("reactive, 4 slots (all resident)", 4, false, false),
        ("prefetch+background, 2 slots", 2, true, true),
    ] {
        let m = run_policy(&w, slots, prefetch, overlap, 1);
        t.row(vec![
            name.into(),
            fmt_ns(m.makespan.as_ns_f64()),
            m.switches.to_string(),
            fmt_pct(m.hit_rate),
            fmt_pct(m.reconfig_overhead),
        ]);
    }
    print!("{}", t.render());
    println!("\nWith 4 slots every context stays resident after its first load — the");
    println!("terminal pays reconfiguration once per standard, not once per frame;");
    println!("background prefetch gets most of that benefit with half the fabric.");
}
