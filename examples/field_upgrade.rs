//! Field upgrade: the paper's market motivation, demonstrated.
//!
//! §2: manufacturers "introduce first not fully completed products ... and
//! then extend products' lifetimes through firmware upgrades" — migrating
//! standards, enhancements, added features, and software-style bug fixing
//! for hardware. On a DRCF, an upgrade is a new configuration image in
//! memory; the silicon is untouched.
//!
//! This example ships a terminal with a v1 channel filter, then "upgrades"
//! it in the field to a v2 filter (more taps, a revised standard) and to a
//! stronger cipher — verifying the same fabric geometry hosts all of it,
//! and showing the fabric's activity timeline.
//!
//! Run with: `cargo run --example field_upgrade`

use drcf::prelude::*;

/// Build the shipped product's workload (v1 kernels).
fn firmware_v1(frames: usize) -> Workload {
    let mut w = wireless_receiver(frames, 64);
    w.name = "terminal-fw-1.0".into();
    w
}

/// The field upgrade: v2 kernels — a longer channel filter (revised
/// standard) and more cipher rounds — in the *same* accelerator slots.
fn firmware_v2(frames: usize) -> Workload {
    let mut w = wireless_receiver(frames, 64);
    w.name = "terminal-fw-2.0".into();
    for a in &mut w.accels {
        match &mut a.kind {
            KernelKind::Fir { taps } => {
                // Sharper filter for the revised standard: 16 taps.
                *taps = vec![1, -2, 4, -7, 12, 18, 24, 27, 27, 24, 18, 12, -7, 4, -2, 1];
            }
            KernelKind::Fft { points } => {
                *points = 128; // finer carrier resolution
            }
            _ => {}
        }
    }
    w
}

fn run_on_fabric(w: &Workload, geometry: FabricGeometry) -> (RunMetrics, String) {
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        memory: MemoryConfig {
            base: 0,
            size_words: 0x20000,
            ..MemoryConfig::default()
        },
        mapping: Mapping::Drcf {
            geometry,
            candidates: names,
            technology: varicore(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    };
    let soc = build_soc(w, &spec).expect("build");
    let (m, soc) = run_soc(soc);
    assert!(m.ok, "{}", w.name);
    let drcf_id = soc.drcf.expect("fabric present");
    let fabric = soc.sim.get::<Drcf>(drcf_id);
    let names: Vec<&str> = (0..fabric.context_count())
        .map(|i| fabric.context_name(i))
        .collect();
    let timeline = fabric.stats.timeline(&names, soc.sim.now(), 72);
    (m, timeline)
}

fn main() {
    // The fabric is sized once, at tape-out, for the largest v1 kernel
    // plus headroom — that headroom is what buys the field upgrades.
    let v1 = firmware_v1(3);
    let max_v1 = v1.accels.iter().map(|a| a.kind.gate_count()).max().unwrap();
    let geometry = FabricGeometry::new(max_v1 * 14 / 10, 1); // 40% headroom
    println!(
        "tape-out: fabric of {} kgates (largest v1 kernel {} + 40% headroom)\n",
        geometry.total_gates / 1000,
        max_v1 / 1000
    );

    let (m1, tl1) = run_on_fabric(&v1, geometry);
    println!(
        "firmware 1.0: makespan {}, {} switches, {} config words",
        fmt_ns(m1.makespan.as_ns_f64()),
        m1.switches,
        m1.config_words
    );
    println!("{tl1}");

    // Years later, in the field: new images, same silicon.
    let v2 = firmware_v2(3);
    let max_v2 = v2.accels.iter().map(|a| a.kind.gate_count()).max().unwrap();
    assert!(
        geometry.fits(max_v2),
        "upgrade must fit the shipped fabric ({max_v2} gates)"
    );
    let (m2, tl2) = run_on_fabric(&v2, geometry);
    println!(
        "firmware 2.0: makespan {}, {} switches, {} config words",
        fmt_ns(m2.makespan.as_ns_f64()),
        m2.switches,
        m2.config_words
    );
    println!("{tl2}");

    println!(
        "upgrade delta: +{} config words per full context set, 0 silicon changes;",
        m2.config_words.saturating_sub(m1.config_words) / m2.switches.max(1)
    );
    println!("the hardwired (Fig. 1a) product would have needed a re-spin for the");
    println!("16-tap filter — the 'costly re-fabrications' §2 says reconfiguration avoids.");

    // And the contrast: the v2 filter genuinely computes something new.
    let mut f1 = KernelAccelerator::new("f1", firmware_v1(1).accels[0].kind.clone(), 0, 32);
    let mut f2 = KernelAccelerator::new("f2", firmware_v2(1).accels[0].kind.clone(), 0, 32);
    for acc in [&mut f1, &mut f2] {
        for i in 0..8u64 {
            acc.write(regs::DATA + i, 100 + i).unwrap();
        }
        acc.write(regs::LEN, 8).unwrap();
        acc.write(regs::CTRL, 1).unwrap();
    }
    assert_ne!(
        f1.read(regs::DATA + 4).unwrap(),
        f2.read(regs::DATA + 4).unwrap(),
        "v2 filter must produce different output"
    );
    println!("\n(v1 vs v2 filter outputs verified different on the same input)");
}
