//! The ADRIATIC design flow (paper Fig. 3), narrated end to end:
//!
//! 1. **System specification** — an executable wireless-receiver task graph.
//! 2. **Profiling** — analytic (ASAP) busy fractions and overlap.
//! 3. **Partitioning** — the §5.1 rules of thumb select DRCF candidates.
//! 4. **Mapping** — the Fig. 4 transformation generates the DRCF design,
//!    emitted as pseudo-SystemC listings like the paper's §5.2.
//! 5. **System-level simulation** — baseline vs mapped architecture.
//! 6. **Back-annotation** — measured reconfiguration costs.
//!
//! Run with: `cargo run --example adriatic_flow`

use drcf::prelude::*;
use drcf::transform::design::ModuleKind;

fn main() {
    println!("=============================================================");
    println!(" ADRIATIC co-design flow (paper Fig. 3)");
    println!("=============================================================\n");

    // ---- 1. System specification ----------------------------------------
    let w = wireless_receiver(4, 64);
    println!("[1] system specification: '{}'", w.name);
    println!(
        "    {} tasks over kernels: {:?}\n",
        w.graph.tasks.len(),
        w.graph.hardware_blocks()
    );

    // ---- 2. Profiling ----------------------------------------------------
    let (profile, sched_cycles) = asap_profile(&w).expect("library workloads are acyclic");
    println!("[2] profiling (ASAP schedule, {sched_cycles} cycles):");
    for b in &profile.blocks {
        println!(
            "    {:<10} busy {:>5.1}%  {:>6} gates",
            b.instance,
            b.busy_fraction * 100.0,
            b.gate_count
        );
    }
    println!();

    // ---- 3. Partitioning (§5.1 rules) ------------------------------------
    let groups = select_candidates(&profile, &SelectionRules::default());
    println!("[3] partitioning: {} candidate group(s)", groups.len());
    for g in &groups {
        println!("    fold {:?} — {}", g.instances, g.rationale);
    }
    let candidates = groups.first().expect("a candidate group").instances.clone();
    println!();

    // ---- 4. Mapping: the Fig. 4 transformation over the IR ---------------
    // Rebuild the same structure as a SystemC-style design description and
    // run the analyze -> validate -> template -> rewrite pipeline.
    let design = example_design(candidates.len());
    let cand_names: Vec<String> = (0..candidates.len()).map(|i| format!("hwa{i}")).collect();
    let cand_refs: Vec<&str> = cand_names.iter().map(String::as_str).collect();
    let result = transform_design(
        &design,
        &cand_refs,
        &TemplateOptions::new(varicore(), FabricGeometry::new(40_000, 1)),
        ConfigTransport::SharedInterfaceBus {
            split_transactions: true,
        },
    )
    .expect("transformation");
    println!("[4] mapping: generated module '{}'", result.drcf_module);
    println!("--- hierarchical module after rewrite (cf. paper §5.2) ---");
    print!("{}", emit_hier_module(&result.design.top));
    let drcf_mod = result.design.module(&result.drcf_module).unwrap();
    if let ModuleKind::Drcf(spec) = &drcf_mod.kind {
        for (cm, p) in spec.context_modules.iter().zip(&spec.context_params) {
            println!(
                "    context {cm}: config @ {:#x}, {} words",
                p.config_addr, p.config_size_words
            );
        }
    }
    println!();

    // ---- 5. System-level simulation ---------------------------------------
    let baseline = run_soc(build_soc(&w, &SocSpec::default()).expect("baseline")).0;
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &candidates, 1.1, 1),
            candidates: candidates.clone(),
            technology: varicore(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        memory: MemoryConfig {
            base: 0,
            size_words: 0x20000,
            ..MemoryConfig::default()
        },
        ..SocSpec::default()
    };
    let mapped = run_soc(build_soc(&w, &spec).expect("mapped")).0;
    println!("[5] system-level simulation:");
    let mut t = Table::new(
        "architecture comparison",
        &[
            "architecture",
            "makespan",
            "area(kgate)",
            "bus util",
            "switches",
            "reconfig ovh",
        ],
    );
    for (name, m) in [("Fig1a fixed", &baseline), ("Fig1b DRCF", &mapped)] {
        t.row(vec![
            name.into(),
            fmt_ns(m.makespan.as_ns_f64()),
            format!("{:.1}", m.area_gates as f64 / 1000.0),
            fmt_pct(m.bus_utilization),
            m.switches.to_string(),
            fmt_pct(m.reconfig_overhead),
        ]);
    }
    print!("{}", t.render());
    println!();

    // ---- 6. Back-annotation -----------------------------------------------
    let per_switch =
        mapped.reconfig_overhead * mapped.makespan.as_ns_f64() / mapped.switches.max(1) as f64;
    println!("[6] back-annotation:");
    println!(
        "    measured context-switch cost {} and config traffic {} words refine the",
        fmt_ns(per_switch),
        mapped.config_words
    );
    println!("    §5.3 parameters for the next flow iteration.");
    assert!(mapped.area_gates < baseline.area_gates);
}
