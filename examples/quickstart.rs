//! Quickstart: model two hardware accelerators, fold them into a
//! dynamically reconfigurable fabric (DRCF), and watch the context
//! scheduler account reconfiguration the way the paper's §5.3 prescribes.
//!
//! Run with: `cargo run --example quickstart`

use drcf::prelude::*;

fn main() {
    // 1. A simulator (the SystemC-equivalent kernel).
    let mut sim = Simulator::new();

    // 2. An address map: system memory holds the configuration images;
    //    the DRCF claims the two accelerators' register ranges.
    //    Component ids: 0 = testbench, 1 = bus, 2 = memory, 3 = DRCF.
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 2).expect("memory range");
    map.add(0x2000, 0x20FF, 3).expect("fabric range");

    // 3. A testbench that exercises both accelerators through the bus,
    //    written as a sequential script (≈ an SC_THREAD).
    struct Testbench {
        port: MasterPort,
        step: usize,
        program: Vec<(BusOp, Addr, Word)>,
    }
    impl Component for Testbench {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            let issue = |tb: &mut Self, api: &mut Api<'_>| {
                if let Some(&(op, addr, v)) = tb.program.get(tb.step) {
                    tb.step += 1;
                    match op {
                        BusOp::Write => {
                            tb.port.write(api, addr, vec![v]);
                        }
                        BusOp::Read => {
                            tb.port.read(api, addr, 1);
                        }
                    }
                }
            };
            match &msg.kind {
                MsgKind::Start => issue(self, api),
                _ => {
                    if let Ok(resp) = self.port.take_response(api, msg) {
                        if resp.op == BusOp::Read {
                            println!("  [{}] read {:#x} -> {:?}", api.now(), resp.addr, resp.data);
                        }
                        issue(self, api);
                    }
                }
            }
        }
    }
    sim.add(
        "testbench",
        Testbench {
            port: MasterPort::new(1, 1),
            step: 0,
            program: vec![
                (BusOp::Write, 0x2000, 42), // context A: triggers the first load
                (BusOp::Read, 0x2000, 0),   // hit: A is active
                (BusOp::Write, 0x2080, 99), // context B: triggers a switch
                (BusOp::Read, 0x2080, 0),
                (BusOp::Read, 0x2000, 0), // back to A: switch again
            ],
        },
    );

    // 4. Bus (split transactions — §5.4 limitation 3) and memory.
    sim.add("bus", Bus::new(BusConfig::default(), map));
    sim.add(
        "memory",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );

    // 5. The DRCF: two register-file contexts with the §5.3 parameters
    //    (configuration address, size, extra delay), loading over the bus.
    let contexts = vec![
        Context::new(
            Box::new(RegisterFile::new("hwacc_a", 0x2000, 16, 2)),
            ContextParams {
                config_addr: 0x100,
                config_size_words: 128,
                ..ContextParams::default()
            },
        ),
        Context::new(
            Box::new(RegisterFile::new("hwacc_b", 0x2080, 16, 2)),
            ContextParams {
                config_addr: 0x180,
                config_size_words: 128,
                ..ContextParams::default()
            },
        ),
    ];
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::SystemBus {
                    bus: 1,
                    priority: 3,
                    burst: 16,
                },
                scheduler: SchedulerConfig::default(), // reactive, 1 slot
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: false,
            },
            contexts,
        ),
    );

    // 6. Run and report.
    println!("running...");
    let reason = sim.run();
    println!("finished at {} ({reason:?})\n", sim.now());

    let f = sim.get::<Drcf>(3);
    println!("DRCF instrumentation (§5.3 step 5):");
    println!("  context switches : {}", f.stats.switches);
    println!("  scheduler hits   : {}", f.stats.hits);
    println!("  scheduler misses : {}", f.stats.misses);
    println!("  config words     : {}", f.stats.config_words);
    println!("  reconfig time    : {}", f.stats.reconfig);
    for (i, cs) in f.stats.per_context.iter().enumerate() {
        println!(
            "  context '{}': active {}, {} accesses, loaded {} time(s)",
            f.context_name(i),
            cs.active,
            cs.accesses,
            cs.switches_in
        );
    }
    assert!(f.stats.invariant_holds(sim.now()));
}
