//! Wireless-receiver scenario: choose a reconfigurable technology for a
//! multi-kernel baseband pipeline.
//!
//! Builds the Fig. 1(b) architecture for each Chapter-3 technology preset,
//! simulates the same frame pipeline, and prints the makespan /
//! reconfiguration / energy trade-off — the design-space exploration the
//! paper's abstract promises. Also dumps a VCD trace of the baseline run's
//! frame-completion signal.
//!
//! Run with: `cargo run --example wireless_receiver`

use drcf::prelude::*;

fn main() {
    let w = wireless_receiver(6, 128);
    println!("workload: {} ({} tasks)\n", w.name, w.graph.tasks.len());

    // Baseline: fixed accelerators.
    let baseline = run_soc(build_soc(&w, &SocSpec::default()).expect("baseline")).0;

    // One run per technology.
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let mut t = Table::new(
        "technology exploration (config over system bus)",
        &[
            "implementation",
            "makespan",
            "vs fixed",
            "area(kgate)",
            "switches",
            "config kwords",
            "reconfig ovh",
            "energy(mJ)",
        ],
    );
    t.row(vec![
        "fixed accelerators".into(),
        fmt_ns(baseline.makespan.as_ns_f64()),
        "1.00x".into(),
        format!("{:.1}", baseline.area_gates as f64 / 1000.0),
        "0".into(),
        "0".into(),
        "-".into(),
        "-".into(),
    ]);
    for tech in all_presets() {
        let slots = tech.on_chip_contexts.min(names.len()).max(1);
        let spec = SocSpec {
            memory: MemoryConfig {
                base: 0,
                size_words: 0x80000,
                ..MemoryConfig::default()
            },
            mapping: Mapping::Drcf {
                geometry: size_fabric(&w, &names, 1.1, slots),
                candidates: names.clone(),
                technology: tech.clone(),
                config_path: SocConfigPath::SystemBus,
                scheduler: SchedulerConfig {
                    slots,
                    ..SchedulerConfig::default()
                },
                overlap_load_exec: tech.on_chip_contexts > 1,
            },
            ..SocSpec::default()
        };
        let m = run_soc(build_soc(&w, &spec).expect("build")).0;
        assert!(m.ok, "{}", tech.name);
        t.row(vec![
            format!("DRCF / {}", tech.name),
            fmt_ns(m.makespan.as_ns_f64()),
            format!(
                "{:.2}x",
                m.makespan.as_ns_f64() / baseline.makespan.as_ns_f64()
            ),
            format!("{:.1}", m.area_gates as f64 / 1000.0),
            m.switches.to_string(),
            format!("{:.1}", m.config_words as f64 / 1000.0),
            fmt_pct(m.reconfig_overhead),
            format!("{:.2}", m.fabric_energy_mj),
        ]);
    }
    print!("{}", t.render());

    // Re-run the MorphoSys point with structured tracing on: derive the
    // §5.3 reconfiguration timeline and the bus-contention report, and dump
    // a Perfetto-loadable Chrome trace of the whole run.
    {
        let tech = morphosys();
        let slots = tech.on_chip_contexts.min(names.len()).max(1);
        let spec = SocSpec {
            memory: MemoryConfig {
                base: 0,
                size_words: 0x80000,
                ..MemoryConfig::default()
            },
            mapping: Mapping::Drcf {
                geometry: size_fabric(&w, &names, 1.1, slots),
                candidates: names.clone(),
                technology: tech,
                config_path: SocConfigPath::SystemBus,
                scheduler: SchedulerConfig {
                    slots,
                    ..SchedulerConfig::default()
                },
                overlap_load_exec: true,
            },
            trace_capacity: Some(1 << 20),
            ..SocSpec::default()
        };
        let (m, soc) = run_soc(build_soc(&w, &spec).expect("traced build"));
        assert!(m.ok);
        println!("\nreconfiguration timeline (DRCF / MorphoSys):");
        print!("{}", m.timeline);
        println!("\nbus contention:");
        print!("{}", m.bus_contention);
        let trace_path = std::env::temp_dir().join("drcf_wireless_receiver_trace.json");
        write_chrome_trace(&soc.sim, &trace_path).expect("write trace");
        println!(
            "\nwrote Chrome trace ({} events) to {} — open in https://ui.perfetto.dev",
            soc.sim.observe_events().len(),
            trace_path.display()
        );
    }

    // A small traced run: watch the Viterbi STATUS register over time.
    println!("\ntracing one frame (VCD)...");
    let mut sim = Simulator::new();
    sim.enable_trace();
    let status_sig = sim.add_signal("viterbi_done", 0u8);
    sim.trace_signal(status_sig);
    // Tiny observer flipping the signal at frame milestones, driven by a
    // scripted process.
    let script = ScriptBuilder::new()
        .wait(SimDuration::us(10))
        .then(move |api| api.write(status_sig, 1))
        .wait(SimDuration::us(10))
        .then(move |api| api.write(status_sig, 0))
        .build();
    sim.add("milestones", script);
    sim.run().expect("simulation failed");
    let vcd = sim.tracer().expect("tracer").render();
    let path = std::env::temp_dir().join("drcf_wireless_receiver.vcd");
    std::fs::write(&path, &vcd).expect("write VCD");
    println!("wrote {} bytes of VCD to {}", vcd.len(), path.display());
}
