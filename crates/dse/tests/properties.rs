//! Property tests for the DSE layer: Pareto-front correctness against a
//! brute-force oracle and sweep-order preservation.

use drcf_dse::prelude::*;
use proptest::prelude::*;

fn rec(makespan: f64, area: u64, energy: f64) -> RunRecord {
    RunRecord {
        scenario: "p".into(),
        params: vec![],
        makespan_ns: makespan,
        bus_utilization: 0.0,
        bus_words: 0,
        switches: 0,
        config_words: 0,
        reconfig_overhead: 0.0,
        hit_rate: 0.0,
        energy_mj: energy,
        area_gates: area,
        ok: true,
        error: None,
        contexts_loaded: 0,
        reconfig_ns: 0.0,
    }
}

proptest! {
    /// The Pareto front equals the brute-force non-dominated set, on 2 and
    /// 3 objectives.
    #[test]
    fn pareto_matches_bruteforce(
        points in proptest::collection::vec((1u32..100, 1u32..100, 1u32..100), 1..40),
        three in any::<bool>(),
    ) {
        let records: Vec<RunRecord> = points
            .iter()
            .map(|&(m, a, e)| rec(m as f64, a as u64, e as f64))
            .collect();
        let objs: Vec<Objective> = if three {
            vec![objectives::makespan, objectives::area, objectives::energy]
        } else {
            vec![objectives::makespan, objectives::area]
        };
        let front = pareto_front(&records, &objs);
        // Brute force oracle.
        let oracle: Vec<usize> = (0..records.len())
            .filter(|&i| {
                !(0..records.len())
                    .any(|j| j != i && dominates(&records[j], &records[i], &objs))
            })
            .collect();
        prop_assert_eq!(front.clone(), oracle);
        // Front is never empty for nonempty input.
        prop_assert!(!front.is_empty());
        // No point on the front dominates another front point.
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&records[i], &records[j], &objs));
                }
            }
        }
    }

    /// sweep_with preserves input order and evaluates every point exactly
    /// once (pure function comparison with serial map).
    #[test]
    fn sweep_with_matches_serial_map(xs in proptest::collection::vec(0u64..10_000, 0..64)) {
        let f = |&x: &u64| x.wrapping_mul(2654435761).rotate_left(7);
        let par = sweep_with(&xs, f);
        let ser: Vec<u64> = xs.iter().map(f).collect();
        prop_assert_eq!(par, ser);
    }

    /// Subset enumeration: correct count and every subset respects min_size.
    #[test]
    fn subsets_counts(n in 1usize..8, min in 1usize..4) {
        let names: Vec<String> = (0..n).map(|i| format!("b{i}")).collect();
        let subs = subsets(&names, min);
        let expect: usize = (0..(1usize << n))
            .filter(|m| m.count_ones() as usize >= min)
            .count();
        prop_assert_eq!(subs.len(), expect);
        prop_assert!(subs.iter().all(|s| s.len() >= min));
        // No duplicates.
        let mut sorted: Vec<Vec<String>> = subs.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), subs.len());
    }
}
