//! Fixed-width and markdown table rendering for experiment harnesses.

use std::fmt::Write as _;

/// A simple table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New titled table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match headers"
        );
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], w: &[usize]| {
            cells
                .iter()
                .zip(w)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &w));
        let _ = writeln!(
            out,
            "{}",
            w.iter()
                .map(|&n| "-".repeat(n))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &w));
        }
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }
}

/// Format a nanosecond value with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Format a fraction in `[0, 1]` as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name    value"));
        assert!(s.contains("longer  22"));
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("md", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render_markdown();
        assert!(s.contains("| a | b |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(2500.0), "2.50us");
        assert_eq!(fmt_ns(3_000_000.0), "3.00ms");
        assert_eq!(fmt_pct(0.256), "25.6%");
    }
}
