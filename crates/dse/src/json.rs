//! Minimal JSON value type, writer and parser.
//!
//! The implementation moved to `drcf_kernel::json` when the snapshot
//! subsystem started serializing kernel state; this module re-exports it
//! so DSE callers (`crate::metrics::RunRecord`, `BENCH_kernel.json`
//! emitters) keep their import paths.

pub use drcf_kernel::json::*;
