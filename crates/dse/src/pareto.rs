//! Pareto-front extraction over run records.
//!
//! The design-space exploration of the ADRIATIC flow trades makespan
//! against area (and energy); the interesting designs are the
//! non-dominated ones.

use crate::metrics::RunRecord;

/// An objective to *minimize*.
pub type Objective = fn(&RunRecord) -> f64;

/// Common objectives.
pub mod objectives {
    use crate::metrics::RunRecord;

    /// Makespan in nanoseconds.
    pub fn makespan(r: &RunRecord) -> f64 {
        r.makespan_ns
    }
    /// Area proxy in gates.
    pub fn area(r: &RunRecord) -> f64 {
        r.area_gates as f64
    }
    /// Fabric energy in mJ.
    pub fn energy(r: &RunRecord) -> f64 {
        r.energy_mj
    }
}

/// Does `a` dominate `b` (no worse everywhere, strictly better somewhere)?
pub fn dominates(a: &RunRecord, b: &RunRecord, objs: &[Objective]) -> bool {
    let mut strictly = false;
    for f in objs {
        let (va, vb) = (f(a), f(b));
        if va > vb {
            return false;
        }
        if va < vb {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated records, in input order.
pub fn pareto_front(records: &[RunRecord], objs: &[Objective]) -> Vec<usize> {
    (0..records.len())
        .filter(|&i| {
            !records
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &records[i], objs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(makespan: f64, area: u64) -> RunRecord {
        RunRecord {
            scenario: "t".into(),
            params: vec![],
            makespan_ns: makespan,
            bus_utilization: 0.0,
            bus_words: 0,
            switches: 0,
            config_words: 0,
            reconfig_overhead: 0.0,
            hit_rate: 0.0,
            energy_mj: 0.0,
            area_gates: area,
            ok: true,
            error: None,
            contexts_loaded: 0,
            reconfig_ns: 0.0,
        }
    }

    const OBJS: &[Objective] = &[objectives::makespan, objectives::area];

    #[test]
    fn dominance_definition() {
        let a = rec(10.0, 100);
        let b = rec(20.0, 200);
        let c = rec(10.0, 100);
        assert!(dominates(&a, &b, OBJS));
        assert!(!dominates(&b, &a, OBJS));
        assert!(!dominates(&a, &c, OBJS), "equal points do not dominate");
    }

    #[test]
    fn front_keeps_tradeoff_points() {
        let records = vec![
            rec(10.0, 300), // fast, big     - on front
            rec(30.0, 100), // slow, small   - on front
            rec(20.0, 200), // middle        - on front
            rec(35.0, 250), // dominated by everything decent
        ];
        let front = pareto_front(&records, OBJS);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let records = vec![rec(1.0, 1)];
        assert_eq!(pareto_front(&records, OBJS), vec![0]);
        assert!(pareto_front(&[], OBJS).is_empty());
    }

    #[test]
    fn duplicate_optima_all_survive() {
        let records = vec![rec(10.0, 100), rec(10.0, 100), rec(50.0, 500)];
        assert_eq!(pareto_front(&records, OBJS), vec![0, 1]);
    }

    #[test]
    fn front_never_contains_dominated_point() {
        // Exhaustive check on a small lattice.
        let mut records = Vec::new();
        for m in [10.0, 20.0, 30.0] {
            for a in [100u64, 200, 300] {
                records.push(rec(m, a));
            }
        }
        let front = pareto_front(&records, OBJS);
        for &i in &front {
            for (j, other) in records.iter().enumerate() {
                if i != j {
                    assert!(!dominates(other, &records[i], OBJS));
                }
            }
        }
        // Only (10.0, 100) is non-dominated on the full lattice.
        assert_eq!(front.len(), 1);
    }
}
