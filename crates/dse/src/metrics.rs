//! Run records — the rows of every experiment table.

use crate::json::{Json, JsonError};
use drcf_soc::prelude::RunMetrics;

/// One simulation's outcome, flattened for tables and JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Scenario label.
    pub scenario: String,
    /// Named parameters of this point.
    pub params: Vec<(String, String)>,
    /// Application makespan in nanoseconds.
    pub makespan_ns: f64,
    /// Bus utilization in [0, 1].
    pub bus_utilization: f64,
    /// Words moved on the bus.
    pub bus_words: u64,
    /// Context switches.
    pub switches: u64,
    /// Configuration words streamed.
    pub config_words: u64,
    /// Fraction of the run lost to blocking reconfiguration.
    pub reconfig_overhead: f64,
    /// Context scheduler hit rate.
    pub hit_rate: f64,
    /// Fabric energy in millijoules.
    pub energy_mj: f64,
    /// Area proxy in equivalent gates.
    pub area_gates: u64,
    /// Run completed cleanly.
    pub ok: bool,
    /// Why the run failed (typed simulation error or panic message), when
    /// `ok` is false.
    pub error: Option<String>,
    /// Distinct fabric contexts that loaded at least once (from the run's
    /// [`ReconfigTimeline`](drcf_core::prelude::ReconfigTimeline)).
    pub contexts_loaded: u64,
    /// Total time spent reconfiguring (blocking + overlapped), ns.
    pub reconfig_ns: f64,
}

impl RunRecord {
    /// Build from SoC run metrics.
    pub fn from_metrics(scenario: &str, params: Vec<(String, String)>, m: &RunMetrics) -> Self {
        RunRecord {
            scenario: scenario.to_string(),
            params,
            makespan_ns: m.makespan.as_ns_f64(),
            bus_utilization: m.bus_utilization,
            bus_words: m.bus_words,
            switches: m.switches,
            config_words: m.config_words,
            reconfig_overhead: m.reconfig_overhead,
            hit_rate: m.hit_rate,
            energy_mj: m.fabric_energy_mj,
            area_gates: m.area_gates,
            ok: m.ok,
            error: m.error.clone(),
            contexts_loaded: m.timeline.contexts_loaded,
            reconfig_ns: m.timeline.total_reconfig.as_ns_f64(),
        }
    }

    /// A record for a point whose evaluation failed or panicked: metrics
    /// are zeroed, `makespan_ns` is infinite so failed points sort last,
    /// and `error` carries the reason. Sweeps use this to keep one bad
    /// point from discarding the rest of the exploration.
    pub fn failed(scenario: &str, params: Vec<(String, String)>, error: impl Into<String>) -> Self {
        RunRecord {
            scenario: scenario.to_string(),
            params,
            makespan_ns: f64::INFINITY,
            bus_utilization: 0.0,
            bus_words: 0,
            switches: 0,
            config_words: 0,
            reconfig_overhead: 0.0,
            hit_rate: 0.0,
            energy_mj: 0.0,
            area_gates: 0,
            ok: false,
            error: Some(error.into()),
            contexts_loaded: 0,
            reconfig_ns: 0.0,
        }
    }

    /// Fetch a named parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Throughput proxy: work items per millisecond given `items` of work.
    pub fn items_per_ms(&self, items: u64) -> f64 {
        if self.makespan_ns == 0.0 {
            0.0
        } else {
            items as f64 / (self.makespan_ns / 1e6)
        }
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("scenario", self.scenario.as_str().into())
            .with(
                "params",
                Json::Arr(
                    self.params
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![k.as_str().into(), v.as_str().into()]))
                        .collect(),
                ),
            )
            .with("makespan_ns", self.makespan_ns.into())
            .with("bus_utilization", self.bus_utilization.into())
            .with("bus_words", self.bus_words.into())
            .with("switches", self.switches.into())
            .with("config_words", self.config_words.into())
            .with("reconfig_overhead", self.reconfig_overhead.into())
            .with("hit_rate", self.hit_rate.into())
            .with("energy_mj", self.energy_mj.into())
            .with("area_gates", self.area_gates.into())
            .with("ok", self.ok.into())
            .with(
                "error",
                match &self.error {
                    Some(e) => e.as_str().into(),
                    None => Json::Null,
                },
            )
            .with("contexts_loaded", self.contexts_loaded.into())
            .with("reconfig_ns", self.reconfig_ns.into())
    }

    /// Decode from the JSON produced by [`RunRecord::to_json`].
    pub fn from_json(v: &Json) -> Result<RunRecord, JsonError> {
        let field = |k: &str| {
            v.get(k).ok_or(JsonError {
                pos: 0,
                message: format!("missing field {k}"),
            })
        };
        let bad = |k: &str| JsonError {
            pos: 0,
            message: format!("bad field {k}"),
        };
        let num = |k: &str| field(k)?.as_f64().ok_or_else(|| bad(k));
        let int = |k: &str| field(k)?.as_u64().ok_or_else(|| bad(k));
        let mut params = Vec::new();
        for p in field("params")?.as_arr().ok_or_else(|| bad("params"))? {
            match p.as_arr() {
                Some([k, val]) => params.push((
                    k.as_str().ok_or_else(|| bad("params"))?.to_string(),
                    val.as_str().ok_or_else(|| bad("params"))?.to_string(),
                )),
                _ => return Err(bad("params")),
            }
        }
        Ok(RunRecord {
            scenario: field("scenario")?
                .as_str()
                .ok_or_else(|| bad("scenario"))?
                .to_string(),
            params,
            // Failed records carry an infinite makespan, which JSON can only
            // spell as null; read that back as infinity.
            makespan_ns: match field("makespan_ns")? {
                Json::Null => f64::INFINITY,
                other => other.as_f64().ok_or_else(|| bad("makespan_ns"))?,
            },
            bus_utilization: num("bus_utilization")?,
            bus_words: int("bus_words")?,
            switches: int("switches")?,
            config_words: int("config_words")?,
            reconfig_overhead: num("reconfig_overhead")?,
            hit_rate: num("hit_rate")?,
            energy_mj: num("energy_mj")?,
            area_gates: int("area_gates")?,
            ok: field("ok")?.as_bool().ok_or_else(|| bad("ok"))?,
            // Absent in records written before the error field existed.
            error: v.get("error").and_then(|e| e.as_str()).map(str::to_string),
            // Absent in records written before the timeline summary rode
            // along; default to zero rather than rejecting the record.
            contexts_loaded: v.get("contexts_loaded").and_then(Json::as_u64).unwrap_or(0),
            reconfig_ns: v.get("reconfig_ns").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

/// Encode a slice of records as a JSON array.
pub fn records_to_json(records: &[RunRecord]) -> Json {
    Json::Arr(records.iter().map(RunRecord::to_json).collect())
}

/// One JSONL line binding a sweep-point index to its completed record —
/// the append-streamed persistence unit of a crash-resumable sweep
/// (`drcf-serve`): each finished point appends one line, so an
/// interruption at any instant loses at most the line being written.
pub fn record_jsonl_line(point: usize, record: &RunRecord) -> String {
    let mut line = Json::obj()
        .with("point", Json::from(point as u64))
        .with("record", record.to_json())
        .to_string();
    line.push('\n');
    line
}

/// Recover `(point, record)` pairs from an append-streamed JSONL file
/// written with [`record_jsonl_line`].
///
/// A line that does not parse, or parses to the wrong shape, is skipped
/// rather than fatal: a process killed mid-append leaves exactly one torn
/// trailing line, and the crash-resume contract is "re-simulate anything
/// not durably recorded", so dropping it is always safe. The number of
/// skipped lines is returned so callers can report the repair.
pub fn records_from_jsonl(text: &str) -> (Vec<(usize, RunRecord)>, usize) {
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(line).ok().and_then(|j| {
            let point = j.get("point").and_then(Json::as_f64)? as usize;
            let record = RunRecord::from_json(j.get("record")?).ok()?;
            Some((point, record))
        });
        match parsed {
            Some(pair) => out.push(pair),
            None => skipped += 1,
        }
    }
    (out, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::prelude::SimDuration;

    fn metrics() -> RunMetrics {
        RunMetrics {
            makespan: SimDuration::us(3),
            bus_utilization: 0.5,
            bus_words: 100,
            switches: 4,
            config_words: 800,
            reconfig_overhead: 0.1,
            hit_rate: 0.75,
            fabric_energy_mj: 1.5,
            area_gates: 20_000,
            errors: 0,
            ok: true,
            error: None,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn conversion_keeps_fields() {
        let r = RunRecord::from_metrics("test", vec![("freq".into(), "100".into())], &metrics());
        assert_eq!(r.makespan_ns, 3000.0);
        assert_eq!(r.switches, 4);
        assert_eq!(r.param("freq"), Some("100"));
        assert_eq!(r.param("nope"), None);
        assert!(r.ok);
    }

    #[test]
    fn throughput_proxy() {
        let r = RunRecord::from_metrics("t", vec![], &metrics());
        // 3000 ns = 0.003 ms; 6 items -> 2000 items/ms.
        assert!((r.items_per_ms(6) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn failed_record_round_trips_with_error() {
        let r = RunRecord::failed(
            "sweep",
            vec![("point".into(), "3".into())],
            "deadlock: 2 pending obligations",
        );
        assert!(!r.ok);
        let s = r.to_json().to_string();
        let back = RunRecord::from_json(&crate::json::Json::parse(&s).unwrap()).unwrap();
        assert_eq!(
            back.error.as_deref(),
            Some("deadlock: 2 pending obligations")
        );
        assert!(!back.ok);
    }

    #[test]
    fn timeline_summary_rides_on_the_record() {
        use drcf_core::prelude::{ReconfigTimeline, TimelineRow};
        let mut m = metrics();
        m.timeline = ReconfigTimeline {
            rows: vec![TimelineRow {
                name: "fir".into(),
                activations: 2,
                reconfig: SimDuration::ns(400),
                ..TimelineRow::default()
            }],
            total_reconfig: SimDuration::ns(400),
            contexts_loaded: 1,
            ..ReconfigTimeline::default()
        };
        let r = RunRecord::from_metrics("t", vec![], &m);
        assert_eq!(r.contexts_loaded, 1);
        assert_eq!(r.reconfig_ns, 400.0);
        let back = RunRecord::from_json(&Json::parse(&r.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn records_without_timeline_fields_still_parse() {
        // A record serialized before the timeline summary existed.
        let r = RunRecord::from_metrics("old", vec![], &metrics());
        let Json::Obj(mut fields) = r.to_json() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "contexts_loaded" && k != "reconfig_ns");
        let back = RunRecord::from_json(&Json::Obj(fields)).unwrap();
        assert_eq!(back.contexts_loaded, 0);
        assert_eq!(back.reconfig_ns, 0.0);
        assert_eq!(back.scenario, "old");
    }

    #[test]
    fn serializes_to_json() {
        let r = RunRecord::from_metrics("t", vec![("a".into(), "b".into())], &metrics());
        let s = r.to_json().to_string();
        let back = RunRecord::from_json(&crate::json::Json::parse(&s).unwrap()).unwrap();
        assert_eq!(r, back);
    }
}
