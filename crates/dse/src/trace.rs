//! Trace exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and line-oriented JSONL.
//!
//! Both exporters consume the structured [`SimEvent`] stream recorded by
//! the kernel's [`Recorder`] (see `drcf_kernel::observe`) and resolve
//! component ids to display names. They live in the DSE crate because the
//! workspace's hand-rolled [`Json`] writer does (the build is fully
//! offline — no serde).
//!
//! Track layout: one Perfetto thread per `(component, lane)` pair, named
//! `<component>` for lane 0 and `<component>:<lane>` for higher lanes (the
//! fabric uses lane 1 for background context loads so overlapped switch
//! spans nest independently of execution spans). Kernel-phase events (the
//! [`KERNEL_SOURCE`] sentinel) get their own `kernel` track. Counters
//! become Chrome counter series named `<component>.<counter>`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use drcf_kernel::prelude::{
    ComponentId, LpReport, ShardRunReport, SimError, SimErrorKind, SimEvent, SimResult, Simulator,
    TraceEventKind, KERNEL_SOURCE,
};

use crate::json::Json;

/// Resolve the display name of an event source: component name, or
/// `kernel` for the scheduler's own phase events.
fn source_name(comp: ComponentId, name: &dyn Fn(ComponentId) -> Option<String>) -> String {
    if comp == KERNEL_SOURCE {
        "kernel".to_string()
    } else {
        name(comp).unwrap_or_else(|| format!("comp{comp}"))
    }
}

/// Track label for a `(component, lane)` pair.
fn track_name(comp: ComponentId, lane: u8, name: &dyn Fn(ComponentId) -> Option<String>) -> String {
    let base = source_name(comp, name);
    if lane == 0 {
        base
    } else {
        format!("{base}:{lane}")
    }
}

/// Femtoseconds to the microseconds Chrome trace `ts` expects.
fn ts_us(fs: u64) -> f64 {
    fs as f64 / 1e9
}

/// Build a Chrome trace-event JSON document from recorded events.
///
/// `name` resolves a component id to its display name (`None` falls back
/// to `comp<N>`). The output is the object form of the trace-event format:
/// `{"traceEvents": [...], "displayTimeUnit": "ns"}`, loadable by Perfetto
/// and `chrome://tracing`. Span events are emitted as matched `"B"`/`"E"`
/// pairs, instants as `"i"` with thread scope, counters as `"C"`.
pub fn chrome_trace_events(
    events: &[SimEvent],
    name: &dyn Fn(ComponentId) -> Option<String>,
) -> Json {
    // Dense tid assignment in first-seen order, with one thread_name
    // metadata record per track.
    let mut tracks: Vec<(ComponentId, u8)> = Vec::new();
    let mut tid_of = |comp: ComponentId, lane: u8, out: &mut Vec<Json>| -> usize {
        if let Some(i) = tracks.iter().position(|&t| t == (comp, lane)) {
            return i;
        }
        tracks.push((comp, lane));
        let tid = tracks.len() - 1;
        out.push(
            Json::obj()
                .with("name", Json::Str("thread_name".into()))
                .with("ph", Json::Str("M".into()))
                .with("pid", Json::Num(0.0))
                .with("tid", Json::Num(tid as f64))
                .with(
                    "args",
                    Json::obj().with("name", Json::Str(track_name(comp, lane, name))),
                ),
        );
        tid
    };

    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 8);
    for e in events {
        let tid = tid_of(e.comp, e.lane, &mut out);
        let base = Json::obj()
            .with("name", Json::Str(e.name.to_string()))
            .with("cat", Json::Str(e.cat.as_str().to_string()))
            .with("ts", Json::Num(ts_us(e.at.as_fs())))
            .with("pid", Json::Num(0.0))
            .with("tid", Json::Num(tid as f64));
        let ev = match e.kind {
            TraceEventKind::Begin => base
                .with("ph", Json::Str("B".into()))
                .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
            TraceEventKind::End => base
                .with("ph", Json::Str("E".into()))
                .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
            TraceEventKind::Instant => base
                .with("ph", Json::Str("i".into()))
                .with("s", Json::Str("t".into()))
                .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
            TraceEventKind::Counter => {
                // Counter series are named per component so multi-component
                // counters (e.g. two CPUs' `retired`) stay separate tracks.
                let series = format!("{}.{}", source_name(e.comp, name), e.name);
                Json::obj()
                    .with("name", Json::Str(series))
                    .with("cat", Json::Str(e.cat.as_str().to_string()))
                    .with("ts", Json::Num(ts_us(e.at.as_fs())))
                    .with("pid", Json::Num(0.0))
                    .with("tid", Json::Num(tid as f64))
                    .with("ph", Json::Str("C".into()))
                    .with("args", Json::obj().with("value", Json::Num(e.value as f64)))
            }
        };
        out.push(ev);
    }
    Json::obj()
        .with("traceEvents", Json::Arr(out))
        .with("displayTimeUnit", Json::Str("ns".into()))
}

/// [`chrome_trace_events`] over a finished simulator: drains the recorder
/// contents and resolves names from the component table.
pub fn chrome_trace(sim: &Simulator) -> Json {
    let events = sim.observe_events();
    let count = sim.component_count();
    chrome_trace_events(&events, &|id| {
        (id < count).then(|| sim.component_name(id).to_string())
    })
}

/// Render recorded events as JSONL: one self-describing JSON object per
/// line, in chronological order. Suited to `grep`/`jq`-style ad-hoc
/// analysis where a full trace viewer is overkill.
pub fn jsonl_events(events: &[SimEvent], name: &dyn Fn(ComponentId) -> Option<String>) -> String {
    let mut out = String::new();
    for e in events {
        let kind = match e.kind {
            TraceEventKind::Begin => "begin",
            TraceEventKind::End => "end",
            TraceEventKind::Instant => "instant",
            TraceEventKind::Counter => "counter",
        };
        let line = Json::obj()
            .with("ts_fs", Json::Num(e.at.as_fs() as f64))
            .with("delta", Json::Num(e.delta as f64))
            .with("comp", Json::Str(source_name(e.comp, name)))
            .with("lane", Json::Num(e.lane as f64))
            .with("cat", Json::Str(e.cat.as_str().to_string()))
            .with("name", Json::Str(e.name.to_string()))
            .with("kind", Json::Str(kind.into()))
            .with("value", Json::Num(e.value as f64));
        let _ = writeln!(out, "{line}");
    }
    out
}

/// [`jsonl_events`] over a finished simulator.
pub fn jsonl(sim: &Simulator) -> String {
    let events = sim.observe_events();
    let count = sim.component_count();
    jsonl_events(&events, &|id| {
        (id < count).then(|| sim.component_name(id).to_string())
    })
}

/// Write the Chrome trace of `sim` to `path` (pretty-printed, so diffs of
/// committed sample traces stay reviewable).
pub fn write_chrome_trace(sim: &Simulator, path: &Path) -> io::Result<()> {
    fs::write(path, chrome_trace(sim).to_string_pretty())
}

/// Write the JSONL trace of `sim` to `path`.
pub fn write_jsonl(sim: &Simulator, path: &Path) -> io::Result<()> {
    fs::write(path, jsonl(sim))
}

// ---------------------------------------------------------------------------
// Sharded trace merge: one multi-process document from N harvested LPs
// ---------------------------------------------------------------------------

/// Name resolver backed by an [`LpReport`]'s harvested component table.
fn lp_resolver(lp: &LpReport) -> impl Fn(ComponentId) -> Option<String> + '_ {
    move |id| lp.component_names.get(id).cloned()
}

/// Refuse to merge a run whose recorders were never enabled — the trace
/// would silently be empty, which is exactly the failure mode this layer
/// exists to remove.
fn check_traced(report: &ShardRunReport) -> SimResult<()> {
    if report.lps.iter().all(|l| l.trace_capacity == 0) {
        return Err(SimError::new(
            SimErrorKind::Validation,
            "sharded tracing is off: no LP recorder was enabled — set \
             ShardConfig::trace(capacity) (or the spec's trace_capacity) before the run",
        ));
    }
    Ok(())
}

/// Merge a sharded run into one Chrome trace-event document: one Perfetto
/// *process* per LP (`pid = lp + 1`, named after the LP), each with its
/// own `(component, lane)` thread tracks, plus synthesized window-protocol
/// `round` spans on every LP's `kernel` track (`B` at the window's start,
/// `E` at its horizon, with the bounding min-term, and envelope counts in
/// `args`).
///
/// The document contains only simulated-time data — harvested
/// [`SimEvent`]s and the profile's deterministic window records — so the
/// merge of the same topology is byte-identical at any shard count.
/// Errors if no LP had its recorder enabled.
pub fn chrome_trace_sharded(report: &ShardRunReport) -> SimResult<Json> {
    check_traced(report)?;
    let mut out: Vec<Json> = Vec::new();
    for (lp, rep) in report.lps.iter().enumerate() {
        let pid = (lp + 1) as f64;
        out.push(
            Json::obj()
                .with("name", Json::Str("process_name".into()))
                .with("ph", Json::Str("M".into()))
                .with("pid", Json::Num(pid))
                .with("tid", Json::Num(0.0))
                .with(
                    "args",
                    Json::obj().with("name", Json::Str(rep.name.clone())),
                ),
        );
        let resolve = lp_resolver(rep);
        // Register the kernel track first so the synthesized round spans
        // and the kernel's own counters share tid 0 on every process.
        let mut tracks: Vec<(ComponentId, u8)> = vec![(KERNEL_SOURCE, 0)];
        out.push(
            Json::obj()
                .with("name", Json::Str("thread_name".into()))
                .with("ph", Json::Str("M".into()))
                .with("pid", Json::Num(pid))
                .with("tid", Json::Num(0.0))
                .with("args", Json::obj().with("name", Json::Str("kernel".into()))),
        );
        for e in &rep.trace_events {
            let tid = match tracks.iter().position(|&t| t == (e.comp, e.lane)) {
                Some(i) => i,
                None => {
                    tracks.push((e.comp, e.lane));
                    let tid = tracks.len() - 1;
                    out.push(
                        Json::obj()
                            .with("name", Json::Str("thread_name".into()))
                            .with("ph", Json::Str("M".into()))
                            .with("pid", Json::Num(pid))
                            .with("tid", Json::Num(tid as f64))
                            .with(
                                "args",
                                Json::obj()
                                    .with("name", Json::Str(track_name(e.comp, e.lane, &resolve))),
                            ),
                    );
                    tid
                }
            };
            let base = Json::obj()
                .with("name", Json::Str(e.name.to_string()))
                .with("cat", Json::Str(e.cat.as_str().to_string()))
                .with("ts", Json::Num(ts_us(e.at.as_fs())))
                .with("pid", Json::Num(pid))
                .with("tid", Json::Num(tid as f64));
            let ev = match e.kind {
                TraceEventKind::Begin => base
                    .with("ph", Json::Str("B".into()))
                    .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
                TraceEventKind::End => base
                    .with("ph", Json::Str("E".into()))
                    .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
                TraceEventKind::Instant => base
                    .with("ph", Json::Str("i".into()))
                    .with("s", Json::Str("t".into()))
                    .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
                TraceEventKind::Counter => {
                    let series = format!("{}.{}", source_name(e.comp, &resolve), e.name);
                    Json::obj()
                        .with("name", Json::Str(series))
                        .with("cat", Json::Str(e.cat.as_str().to_string()))
                        .with("ts", Json::Num(ts_us(e.at.as_fs())))
                        .with("pid", Json::Num(pid))
                        .with("tid", Json::Num(tid as f64))
                        .with("ph", Json::Str("C".into()))
                        .with("args", Json::obj().with("value", Json::Num(e.value as f64)))
                }
            };
            out.push(ev);
        }
        // Synthesized window-protocol spans on the kernel track (tid 0).
        // The kernel itself emits only counters and instants there, so the
        // added B/E pairs cannot unbalance the track. Only deterministic
        // simulated-time fields go into args — never wall-clock ones.
        if let Some(prof) = report.profile.lps.get(lp) {
            for w in &prof.windows {
                let bound = match w.bound {
                    drcf_kernel::prelude::HorizonBound::End => "end".to_string(),
                    drcf_kernel::prelude::HorizonBound::Window => "window".to_string(),
                    drcf_kernel::prelude::HorizonBound::Link(l) => report
                        .profile
                        .links
                        .get(l)
                        .map(|li| format!("link:{}", li.name))
                        .unwrap_or_else(|| format!("link:{l}")),
                };
                out.push(
                    Json::obj()
                        .with("name", Json::Str("round".into()))
                        .with("cat", Json::Str("kernel".into()))
                        .with("ts", Json::Num(ts_us(w.start_fs)))
                        .with("pid", Json::Num(pid))
                        .with("tid", Json::Num(0.0))
                        .with("ph", Json::Str("B".into()))
                        .with(
                            "args",
                            Json::obj()
                                .with("round", Json::Num(w.round as f64))
                                .with("bound", Json::Str(bound))
                                .with("sent", Json::Num(w.sent as f64))
                                .with("received", Json::Num(w.received as f64)),
                        ),
                );
                out.push(
                    Json::obj()
                        .with("name", Json::Str("round".into()))
                        .with("cat", Json::Str("kernel".into()))
                        .with("ts", Json::Num(ts_us(w.horizon_fs)))
                        .with("pid", Json::Num(pid))
                        .with("tid", Json::Num(0.0))
                        .with("ph", Json::Str("E".into()))
                        .with("args", Json::obj()),
                );
            }
        }
    }
    Ok(Json::obj()
        .with("traceEvents", Json::Arr(out))
        .with("displayTimeUnit", Json::Str("ns".into())))
}

/// Merge a sharded run into JSONL: every harvested event as one line
/// (tagged with its LP), then one `kind:"round"` line per LP window.
/// Deterministic under the same rules as [`chrome_trace_sharded`].
pub fn jsonl_sharded(report: &ShardRunReport) -> SimResult<String> {
    check_traced(report)?;
    let mut out = String::new();
    for (lp, rep) in report.lps.iter().enumerate() {
        let resolve = lp_resolver(rep);
        for e in &rep.trace_events {
            let kind = match e.kind {
                TraceEventKind::Begin => "begin",
                TraceEventKind::End => "end",
                TraceEventKind::Instant => "instant",
                TraceEventKind::Counter => "counter",
            };
            let line = Json::obj()
                .with("lp", Json::Num(lp as f64))
                .with("lp_name", Json::Str(rep.name.clone()))
                .with("ts_fs", Json::Num(e.at.as_fs() as f64))
                .with("delta", Json::Num(e.delta as f64))
                .with("comp", Json::Str(source_name(e.comp, &resolve)))
                .with("lane", Json::Num(e.lane as f64))
                .with("cat", Json::Str(e.cat.as_str().to_string()))
                .with("name", Json::Str(e.name.to_string()))
                .with("kind", Json::Str(kind.into()))
                .with("value", Json::Num(e.value as f64));
            let _ = writeln!(out, "{line}");
        }
    }
    for prof in &report.profile.lps {
        for w in &prof.windows {
            let line = Json::obj()
                .with("lp", Json::Num(prof.lp as f64))
                .with("lp_name", Json::Str(prof.name.clone()))
                .with("kind", Json::Str("round".into()))
                .with("round", Json::Num(w.round as f64))
                .with("start_fs", Json::Num(w.start_fs as f64))
                .with("horizon_fs", Json::Num(w.horizon_fs as f64))
                .with("bound", Json::Str(w.bound.label().into()))
                .with("sent", Json::Num(w.sent as f64))
                .with("received", Json::Num(w.received as f64));
            let _ = writeln!(out, "{line}");
        }
    }
    Ok(out)
}

/// Write the merged Chrome trace of a sharded run to `path`. Errors with
/// [`SimErrorKind::Validation`] if tracing was off, and surfaces write
/// failures as [`SimErrorKind::Internal`].
pub fn write_chrome_trace_sharded(report: &ShardRunReport, path: &Path) -> SimResult<()> {
    let doc = chrome_trace_sharded(report)?;
    fs::write(path, doc.to_string_pretty()).map_err(|e| {
        SimError::new(
            SimErrorKind::Internal,
            format!("writing merged trace {}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::prelude::{SimTime, TraceCategory};

    fn ev(
        fs: u64,
        comp: ComponentId,
        lane: u8,
        name: &'static str,
        kind: TraceEventKind,
        value: u64,
    ) -> SimEvent {
        SimEvent {
            at: SimTime(fs),
            delta: 0,
            comp,
            lane,
            cat: TraceCategory::User,
            name,
            kind,
            value,
        }
    }

    #[test]
    fn chrome_trace_emits_tracks_and_balanced_phases() {
        let events = vec![
            ev(0, 0, 0, "work", TraceEventKind::Begin, 1),
            ev(1_000_000, 1, 1, "load", TraceEventKind::Begin, 2),
            ev(2_000_000, 1, 1, "load", TraceEventKind::End, 2),
            ev(3_000_000, 0, 0, "work", TraceEventKind::End, 1),
            ev(3_000_000, 0, 0, "tick", TraceEventKind::Instant, 9),
            ev(
                4_000_000,
                KERNEL_SOURCE,
                0,
                "deltas",
                TraceEventKind::Counter,
                5,
            ),
        ];
        let name = |id: ComponentId| match id {
            0 => Some("cpu".to_string()),
            1 => Some("drcf".to_string()),
            _ => None,
        };
        let doc = chrome_trace_events(&events, &name);
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 3 tracks discovered -> 3 metadata records + 6 events.
        assert_eq!(arr.len(), 9);
        let metas: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(metas, vec!["cpu", "drcf:1", "kernel"]);
        let phases = |ph: &str| {
            arr.iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(phases("B"), 2);
        assert_eq!(phases("E"), 2);
        assert_eq!(phases("i"), 1);
        assert_eq!(phases("C"), 1);
        // ts is microseconds: 1_000_000 fs = 1e-3 us.
        let b_drcf = arr
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("B")
                    && e.get("tid").and_then(Json::as_f64) == Some(1.0)
            })
            .unwrap();
        assert!((b_drcf.get("ts").and_then(Json::as_f64).unwrap() - 1e-3).abs() < 1e-12);
        // Counter series is component-qualified.
        let c = arr
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .unwrap();
        assert_eq!(c.get("name").and_then(Json::as_str), Some("kernel.deltas"));
        // The whole document round-trips through the parser.
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("traceEvents")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            9
        );
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let events = vec![
            ev(500, 2, 0, "grant", TraceEventKind::Instant, 7),
            ev(600, 2, 0, "queue_depth", TraceEventKind::Counter, 3),
        ];
        let text = jsonl_events(&events, &|_| Some("bus".to_string()));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("comp").and_then(Json::as_str), Some("bus"));
        }
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("instant"));
        assert_eq!(first.get("ts_fs").and_then(Json::as_u64), Some(500));
    }

    #[test]
    fn sharded_merge_refuses_untraced_runs_and_builds_process_tracks() {
        use drcf_kernel::prelude::{KernelMetrics, LpWindow, ShardProfile};

        let lp_report = |name: &str, traced: bool| LpReport {
            name: name.to_string(),
            final_time_fs: 2_000_000,
            metrics: KernelMetrics::default(),
            slice_hashes: Vec::new(),
            state_hash: 0,
            obligations: 0,
            probe: Json::Null,
            trace_events: if traced {
                vec![
                    ev(0, 0, 0, "work", TraceEventKind::Begin, 1),
                    ev(1_000_000, 0, 0, "work", TraceEventKind::End, 1),
                ]
            } else {
                Vec::new()
            },
            component_names: vec!["node".to_string()],
            trace_capacity: if traced { 16 } else { 0 },
            trace_emitted: if traced { 2 } else { 0 },
            trace_dropped: 0,
        };
        let mut report = ShardRunReport {
            lps: vec![lp_report("lp0", false), lp_report("lp1", false)],
            rounds: 1,
            messages: 0,
            in_flight_at_end: 0,
            shards: 1,
            wall_seconds: 0.0,
            profile: ShardProfile::default(),
        };
        let err = chrome_trace_sharded(&report).expect_err("tracing off must error");
        assert!(err.message.contains("tracing is off"), "{err:?}");
        assert!(jsonl_sharded(&report).is_err());

        report.lps = vec![lp_report("lp0", true), lp_report("lp1", true)];
        report.profile.lps = (0..2)
            .map(|lp| drcf_kernel::prelude::LpProfile {
                lp,
                name: format!("lp{lp}"),
                weight: 1,
                windows: vec![LpWindow {
                    round: 0,
                    start_fs: 0,
                    horizon_fs: 2_000_000,
                    bound: drcf_kernel::prelude::HorizonBound::End,
                    sent: 0,
                    received: 0,
                    last_inject: None,
                    busy_ns: 5,
                    blocked_ns: 7,
                }],
                busy_ns: 5,
                blocked_ns: 7,
                sent: 0,
                received: 0,
            })
            .collect();
        let doc = chrome_trace_sharded(&report).expect("merge");
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // One process per LP (pids 1 and 2), with a kernel track each.
        let process_names: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(process_names, vec!["lp0", "lp1"]);
        // Per (pid, tid): balanced B/E counts, including the round spans.
        for pid in [1.0, 2.0] {
            let count = |ph: &str| {
                arr.iter()
                    .filter(|e| {
                        e.get("pid").and_then(Json::as_f64) == Some(pid)
                            && e.get("ph").and_then(Json::as_str) == Some(ph)
                    })
                    .count()
            };
            assert_eq!(count("B"), count("E"), "pid {pid} spans balanced");
            assert_eq!(count("B"), 2, "work span + round span");
        }
        // Round spans carry only simulated-time args.
        let round_b = arr
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("round")
                    && e.get("ph").and_then(Json::as_str) == Some("B")
            })
            .unwrap();
        let args = round_b.get("args").unwrap();
        assert_eq!(args.get("bound").and_then(Json::as_str), Some("end"));
        assert!(args.get("busy_ns").is_none(), "no wall-clock data");

        let lines = jsonl_sharded(&report).expect("jsonl");
        let round_lines = lines.lines().filter(|l| l.contains("\"round\"")).count();
        assert_eq!(round_lines, 2);
    }

    #[test]
    fn empty_trace_still_renders_a_valid_document() {
        let doc = chrome_trace_events(&[], &|_| None);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("traceEvents")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        assert!(jsonl_events(&[], &|_| None).is_empty());
    }
}
