//! Trace exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and line-oriented JSONL.
//!
//! Both exporters consume the structured [`SimEvent`] stream recorded by
//! the kernel's [`Recorder`] (see `drcf_kernel::observe`) and resolve
//! component ids to display names. They live in the DSE crate because the
//! workspace's hand-rolled [`Json`] writer does (the build is fully
//! offline — no serde).
//!
//! Track layout: one Perfetto thread per `(component, lane)` pair, named
//! `<component>` for lane 0 and `<component>:<lane>` for higher lanes (the
//! fabric uses lane 1 for background context loads so overlapped switch
//! spans nest independently of execution spans). Kernel-phase events (the
//! [`KERNEL_SOURCE`] sentinel) get their own `kernel` track. Counters
//! become Chrome counter series named `<component>.<counter>`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use drcf_kernel::prelude::{ComponentId, SimEvent, Simulator, TraceEventKind, KERNEL_SOURCE};

use crate::json::Json;

/// Resolve the display name of an event source: component name, or
/// `kernel` for the scheduler's own phase events.
fn source_name(comp: ComponentId, name: &dyn Fn(ComponentId) -> Option<String>) -> String {
    if comp == KERNEL_SOURCE {
        "kernel".to_string()
    } else {
        name(comp).unwrap_or_else(|| format!("comp{comp}"))
    }
}

/// Track label for a `(component, lane)` pair.
fn track_name(comp: ComponentId, lane: u8, name: &dyn Fn(ComponentId) -> Option<String>) -> String {
    let base = source_name(comp, name);
    if lane == 0 {
        base
    } else {
        format!("{base}:{lane}")
    }
}

/// Femtoseconds to the microseconds Chrome trace `ts` expects.
fn ts_us(fs: u64) -> f64 {
    fs as f64 / 1e9
}

/// Build a Chrome trace-event JSON document from recorded events.
///
/// `name` resolves a component id to its display name (`None` falls back
/// to `comp<N>`). The output is the object form of the trace-event format:
/// `{"traceEvents": [...], "displayTimeUnit": "ns"}`, loadable by Perfetto
/// and `chrome://tracing`. Span events are emitted as matched `"B"`/`"E"`
/// pairs, instants as `"i"` with thread scope, counters as `"C"`.
pub fn chrome_trace_events(
    events: &[SimEvent],
    name: &dyn Fn(ComponentId) -> Option<String>,
) -> Json {
    // Dense tid assignment in first-seen order, with one thread_name
    // metadata record per track.
    let mut tracks: Vec<(ComponentId, u8)> = Vec::new();
    let mut tid_of = |comp: ComponentId, lane: u8, out: &mut Vec<Json>| -> usize {
        if let Some(i) = tracks.iter().position(|&t| t == (comp, lane)) {
            return i;
        }
        tracks.push((comp, lane));
        let tid = tracks.len() - 1;
        out.push(
            Json::obj()
                .with("name", Json::Str("thread_name".into()))
                .with("ph", Json::Str("M".into()))
                .with("pid", Json::Num(0.0))
                .with("tid", Json::Num(tid as f64))
                .with(
                    "args",
                    Json::obj().with("name", Json::Str(track_name(comp, lane, name))),
                ),
        );
        tid
    };

    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 8);
    for e in events {
        let tid = tid_of(e.comp, e.lane, &mut out);
        let base = Json::obj()
            .with("name", Json::Str(e.name.to_string()))
            .with("cat", Json::Str(e.cat.as_str().to_string()))
            .with("ts", Json::Num(ts_us(e.at.as_fs())))
            .with("pid", Json::Num(0.0))
            .with("tid", Json::Num(tid as f64));
        let ev = match e.kind {
            TraceEventKind::Begin => base
                .with("ph", Json::Str("B".into()))
                .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
            TraceEventKind::End => base
                .with("ph", Json::Str("E".into()))
                .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
            TraceEventKind::Instant => base
                .with("ph", Json::Str("i".into()))
                .with("s", Json::Str("t".into()))
                .with("args", Json::obj().with("value", Json::Num(e.value as f64))),
            TraceEventKind::Counter => {
                // Counter series are named per component so multi-component
                // counters (e.g. two CPUs' `retired`) stay separate tracks.
                let series = format!("{}.{}", source_name(e.comp, name), e.name);
                Json::obj()
                    .with("name", Json::Str(series))
                    .with("cat", Json::Str(e.cat.as_str().to_string()))
                    .with("ts", Json::Num(ts_us(e.at.as_fs())))
                    .with("pid", Json::Num(0.0))
                    .with("tid", Json::Num(tid as f64))
                    .with("ph", Json::Str("C".into()))
                    .with("args", Json::obj().with("value", Json::Num(e.value as f64)))
            }
        };
        out.push(ev);
    }
    Json::obj()
        .with("traceEvents", Json::Arr(out))
        .with("displayTimeUnit", Json::Str("ns".into()))
}

/// [`chrome_trace_events`] over a finished simulator: drains the recorder
/// contents and resolves names from the component table.
pub fn chrome_trace(sim: &Simulator) -> Json {
    let events = sim.observe_events();
    let count = sim.component_count();
    chrome_trace_events(&events, &|id| {
        (id < count).then(|| sim.component_name(id).to_string())
    })
}

/// Render recorded events as JSONL: one self-describing JSON object per
/// line, in chronological order. Suited to `grep`/`jq`-style ad-hoc
/// analysis where a full trace viewer is overkill.
pub fn jsonl_events(events: &[SimEvent], name: &dyn Fn(ComponentId) -> Option<String>) -> String {
    let mut out = String::new();
    for e in events {
        let kind = match e.kind {
            TraceEventKind::Begin => "begin",
            TraceEventKind::End => "end",
            TraceEventKind::Instant => "instant",
            TraceEventKind::Counter => "counter",
        };
        let line = Json::obj()
            .with("ts_fs", Json::Num(e.at.as_fs() as f64))
            .with("delta", Json::Num(e.delta as f64))
            .with("comp", Json::Str(source_name(e.comp, name)))
            .with("lane", Json::Num(e.lane as f64))
            .with("cat", Json::Str(e.cat.as_str().to_string()))
            .with("name", Json::Str(e.name.to_string()))
            .with("kind", Json::Str(kind.into()))
            .with("value", Json::Num(e.value as f64));
        let _ = writeln!(out, "{line}");
    }
    out
}

/// [`jsonl_events`] over a finished simulator.
pub fn jsonl(sim: &Simulator) -> String {
    let events = sim.observe_events();
    let count = sim.component_count();
    jsonl_events(&events, &|id| {
        (id < count).then(|| sim.component_name(id).to_string())
    })
}

/// Write the Chrome trace of `sim` to `path` (pretty-printed, so diffs of
/// committed sample traces stay reviewable).
pub fn write_chrome_trace(sim: &Simulator, path: &Path) -> io::Result<()> {
    fs::write(path, chrome_trace(sim).to_string_pretty())
}

/// Write the JSONL trace of `sim` to `path`.
pub fn write_jsonl(sim: &Simulator, path: &Path) -> io::Result<()> {
    fs::write(path, jsonl(sim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::prelude::{SimTime, TraceCategory};

    fn ev(
        fs: u64,
        comp: ComponentId,
        lane: u8,
        name: &'static str,
        kind: TraceEventKind,
        value: u64,
    ) -> SimEvent {
        SimEvent {
            at: SimTime(fs),
            delta: 0,
            comp,
            lane,
            cat: TraceCategory::User,
            name,
            kind,
            value,
        }
    }

    #[test]
    fn chrome_trace_emits_tracks_and_balanced_phases() {
        let events = vec![
            ev(0, 0, 0, "work", TraceEventKind::Begin, 1),
            ev(1_000_000, 1, 1, "load", TraceEventKind::Begin, 2),
            ev(2_000_000, 1, 1, "load", TraceEventKind::End, 2),
            ev(3_000_000, 0, 0, "work", TraceEventKind::End, 1),
            ev(3_000_000, 0, 0, "tick", TraceEventKind::Instant, 9),
            ev(
                4_000_000,
                KERNEL_SOURCE,
                0,
                "deltas",
                TraceEventKind::Counter,
                5,
            ),
        ];
        let name = |id: ComponentId| match id {
            0 => Some("cpu".to_string()),
            1 => Some("drcf".to_string()),
            _ => None,
        };
        let doc = chrome_trace_events(&events, &name);
        let arr = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 3 tracks discovered -> 3 metadata records + 6 events.
        assert_eq!(arr.len(), 9);
        let metas: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(metas, vec!["cpu", "drcf:1", "kernel"]);
        let phases = |ph: &str| {
            arr.iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(phases("B"), 2);
        assert_eq!(phases("E"), 2);
        assert_eq!(phases("i"), 1);
        assert_eq!(phases("C"), 1);
        // ts is microseconds: 1_000_000 fs = 1e-3 us.
        let b_drcf = arr
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("B")
                    && e.get("tid").and_then(Json::as_f64) == Some(1.0)
            })
            .unwrap();
        assert!((b_drcf.get("ts").and_then(Json::as_f64).unwrap() - 1e-3).abs() < 1e-12);
        // Counter series is component-qualified.
        let c = arr
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .unwrap();
        assert_eq!(c.get("name").and_then(Json::as_str), Some("kernel.deltas"));
        // The whole document round-trips through the parser.
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("traceEvents")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            9
        );
    }

    #[test]
    fn jsonl_is_one_parsable_object_per_line() {
        let events = vec![
            ev(500, 2, 0, "grant", TraceEventKind::Instant, 7),
            ev(600, 2, 0, "queue_depth", TraceEventKind::Counter, 3),
        ];
        let text = jsonl_events(&events, &|_| Some("bus".to_string()));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("comp").and_then(Json::as_str), Some("bus"));
        }
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("instant"));
        assert_eq!(first.get("ts_fs").and_then(Json::as_u64), Some(500));
    }

    #[test]
    fn empty_trace_still_renders_a_valid_document() {
        let doc = chrome_trace_events(&[], &|_| None);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("traceEvents")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        assert!(jsonl_events(&[], &|_| None).is_empty());
    }
}
