//! # drcf-dse — design-space exploration
//!
//! "The methodology allows to do true design space exploration at the
//! system-level, without the need to map the design first to an actual
//! technology implementation" (abstract). This crate is that exploration
//! layer: parameter spaces ([`space`]), a thread-parallel deterministic
//! sweep runner ([`runner`]), flattened run records ([`metrics`]) with a
//! std-only JSON codec ([`json`]), Pareto-front extraction ([`pareto`]),
//! partitioning-subset exploration ([`partition`]) and table rendering
//! ([`report`]).

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod pareto;
pub mod partition;
pub mod report;
pub mod runner;
pub mod space;

/// Commonly used items.
pub mod prelude {
    pub use crate::json::Json;
    pub use crate::metrics::{records_to_json, RunRecord};
    pub use crate::pareto::{dominates, objectives, pareto_front, Objective};
    pub use crate::partition::{explore_partitions, size_fabric, subsets, PartitionOutcome};
    pub use crate::report::{fmt_ns, fmt_pct, Table};
    pub use crate::runner::{sweep, sweep_serial, sweep_with};
    pub use crate::space::{cartesian2, cartesian3, linear_steps, pow2_steps};
}
