//! # drcf-dse — design-space exploration
//!
//! "The methodology allows to do true design space exploration at the
//! system-level, without the need to map the design first to an actual
//! technology implementation" (abstract). This crate is that exploration
//! layer: parameter spaces ([`space`]), a thread-parallel deterministic
//! sweep runner ([`runner`]), flattened run records ([`metrics`]) with a
//! std-only JSON codec ([`json`]), Pareto-front extraction ([`pareto`]),
//! partitioning-subset exploration ([`partition`]), table rendering
//! ([`report`]) and structured-trace exporters ([`trace`]).

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod json;
pub mod metrics;
pub mod pareto;
pub mod partition;
pub mod report;
pub mod runner;
pub mod space;
pub mod trace;

/// Commonly used items.
pub mod prelude {
    pub use crate::json::Json;
    pub use crate::metrics::{record_jsonl_line, records_from_jsonl, records_to_json, RunRecord};
    pub use crate::pareto::{dominates, objectives, pareto_front, Objective};
    pub use crate::partition::{explore_partitions, size_fabric, subsets, PartitionOutcome};
    pub use crate::report::{fmt_ns, fmt_pct, Table};
    pub use crate::runner::{
        sweep, sweep_catch, sweep_catch_workers, sweep_partitioned, sweep_serial, sweep_sharded,
        sweep_warm_fork, sweep_warm_fork_resume, sweep_with, thread_split, WarmFork,
    };
    pub use crate::space::{cartesian2, cartesian3, linear_steps, pow2_steps};
    pub use crate::trace::{
        chrome_trace, chrome_trace_events, chrome_trace_sharded, jsonl, jsonl_events,
        jsonl_sharded, write_chrome_trace, write_chrome_trace_sharded, write_jsonl,
    };
}
