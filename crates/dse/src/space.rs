//! Parameter-space helpers: cartesian products and common sweeps.

/// Cartesian product of two axes, row-major (a outer, b inner).
pub fn cartesian2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Cartesian product of three axes.
pub fn cartesian3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// Powers of two in `[lo, hi]`.
pub fn pow2_steps(lo: u64, hi: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut v = lo.next_power_of_two();
    while v <= hi {
        out.push(v);
        v *= 2;
    }
    out
}

/// `n` evenly spaced integers from `lo` to `hi` inclusive.
pub fn linear_steps(lo: u64, hi: u64, n: usize) -> Vec<u64> {
    assert!(n >= 2, "need at least two steps");
    assert!(hi >= lo);
    (0..n)
        .map(|i| lo + (hi - lo) * i as u64 / (n as u64 - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian2_row_major() {
        let p = cartesian2(&[1, 2], &["a", "b", "c"]);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], (1, "a"));
        assert_eq!(p[2], (1, "c"));
        assert_eq!(p[3], (2, "a"));
    }

    #[test]
    fn cartesian3_size() {
        let p = cartesian3(&[1, 2], &[10, 20], &[100]);
        assert_eq!(p.len(), 4);
        assert_eq!(p[3], (2, 20, 100));
    }

    #[test]
    fn pow2_range() {
        assert_eq!(pow2_steps(16, 128), vec![16, 32, 64, 128]);
        assert_eq!(pow2_steps(3, 20), vec![4, 8, 16]);
        assert!(pow2_steps(64, 32).is_empty());
    }

    #[test]
    fn linear_range_endpoints() {
        let v = linear_steps(0, 100, 5);
        assert_eq!(v, vec![0, 25, 50, 75, 100]);
        assert_eq!(linear_steps(7, 7, 2), vec![7, 7]);
    }
}
