//! Parallel sweep execution.
//!
//! Each simulation in this workspace is single-threaded and fully
//! deterministic, so design-space exploration parallelizes at whole-run
//! granularity: a scoped thread pool pulls parameter points off a shared
//! atomic cursor (classic work-stealing-by-index), and results are written
//! back by point index so parallel and serial sweeps produce identical
//! record vectors. This is std-only (the environment is offline), but the
//! contract matches the rayon `par_iter().map().collect()` idiom the
//! module originally used.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use drcf_kernel::prelude::{SimResult, Simulator, Snapshot};

use crate::metrics::RunRecord;

/// Render a `catch_unwind` payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `eval` over every point, in parallel, preserving order.
///
/// Faults are isolated per point: an evaluation that panics becomes a
/// [`RunRecord::failed`] record (ok = false, `error` set) at that point's
/// position, and every other point still completes.
pub fn sweep<P, F>(points: &[P], eval: F) -> Vec<RunRecord>
where
    P: Sync,
    F: Fn(&P) -> RunRecord + Sync,
{
    sweep_catch(points, eval)
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(rec) => rec,
            Err(msg) => RunRecord::failed(
                "sweep",
                vec![("point".into(), i.to_string())],
                format!("evaluator panicked: {msg}"),
            ),
        })
        .collect()
}

/// Tuning knobs for [`sweep_warm_fork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmFork {
    /// Number of copy-on-write forks a worker serves from one live base
    /// before rebasing — dropping the base and rebuilding it from the full
    /// snapshot. `0` means never rebase: the base lives for the whole
    /// sweep, which is fastest but lets the in-place restore chain grow
    /// unboundedly deep. A small nonzero depth periodically re-proves the
    /// base against the full document, the warm-fork analogue of
    /// `SnapshotChain`'s full-snapshot rebase.
    pub delta_chain: usize,
}

/// Evaluate one warm-fork point on a worker's live base, (re)building the
/// base as needed. Returns the record plus whether the base survived.
#[allow(clippy::too_many_arguments)]
fn warm_point<P, S, B, F>(
    i: usize,
    points: &[P],
    fork: &Snapshot,
    cfg: WarmFork,
    build: &B,
    eval: &F,
    base: &mut Option<S>,
    forks: &mut usize,
) -> RunRecord
where
    S: AsMut<Simulator>,
    B: Fn() -> SimResult<S>,
    F: Fn(&P, &mut S) -> RunRecord,
{
    let fail =
        |msg: String| RunRecord::failed("warm-fork", vec![("point".into(), i.to_string())], msg);
    // Periodic full rebase: bound how many in-place forks one base serves.
    if cfg.delta_chain > 0 && *forks >= cfg.delta_chain {
        *base = None;
        *forks = 0;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<RunRecord, String> {
        if base.is_none() {
            *base = Some(build().map_err(|e| format!("building warm-fork base: {e}"))?);
        }
        if let Some(b) = base.as_mut() {
            // Copy-on-write return to the fork point: only state touched
            // since the capture is restored. A refusal (the capture fell
            // out of the simulator's window, or the base is a stranger to
            // this snapshot) falls back to one cold rebuild, which stands
            // at the fork by construction.
            if let Err(e) = b.as_mut().rewind(fork) {
                *base = None;
                *base = Some(build().map_err(|err| {
                    format!("rebuilding warm-fork base after rewind refusal ({e}): {err}")
                })?);
            }
        }
        match base.as_mut() {
            Some(b) => Ok(eval(&points[i], b)),
            None => Err("warm-fork base missing after build".into()),
        }
    }));
    match outcome {
        Ok(Ok(rec)) => {
            *forks += 1;
            rec
        }
        Ok(Err(msg)) => {
            *base = None;
            fail(msg)
        }
        Err(payload) => {
            // The panic may have left the base mid-mutation; never fork
            // from it again.
            *base = None;
            fail(format!("evaluator panicked: {}", panic_message(payload)))
        }
    }
}

/// Warm-fork sweep: every worker keeps ONE live simulator standing at a
/// shared prefix snapshot and forks each point from it copy-on-write.
///
/// The caller captures the fork point once (e.g. with
/// `drcf_soc::prelude::snapshot_prefix`). `build` constructs a worker's
/// base — typically `restore_soc(&workload, &spec, &snap)` — and must
/// leave it standing exactly at `fork` with that document registered as a
/// capture (restoring from the snapshot does both). For each point the
/// runner rewinds the base to the fork in place ([`Simulator::rewind`]
/// touches only state dirtied since the capture, so per-point cost scales
/// with the tail's diff, not the prefix), then hands it to `eval`, which
/// applies the point's parameters to the live system and runs the tail —
/// e.g. via `drcf_soc::prelude::run_soc_mut`.
///
/// [`WarmFork::delta_chain`] bounds how many forks one base serves before
/// a full rebuild; a rewind refusal or an `eval` panic also retires the
/// base, so a poisoned point costs one cold build, never the sweep.
///
/// Same ordering and fault-isolation contract as [`sweep`]: one record per
/// point, in input order, panics becoming `RunRecord::failed` entries.
pub fn sweep_warm_fork<P, S, B, F>(
    points: &[P],
    fork: &Snapshot,
    cfg: WarmFork,
    build: B,
    eval: F,
) -> Vec<RunRecord>
where
    P: Sync,
    B: Fn() -> SimResult<S> + Sync,
    F: Fn(&P, &mut S) -> RunRecord + Sync,
    S: AsMut<Simulator>,
{
    sweep_warm_fork_resume(points, fork, cfg, build, eval, &[], &|_, _| {})
}

/// Crash-resumable [`sweep_warm_fork`]: skip already-finished points and
/// stream each completed record out as it lands.
///
/// `done` holds the records recovered from a previous (interrupted) run of
/// the same sweep, aligned with `points`; `Some` entries are returned
/// verbatim without simulating, `None` (or missing — `done` may be shorter
/// than `points`, including empty) entries are evaluated. `on_record` is
/// invoked on the worker thread for every *freshly evaluated* record,
/// before the result is merged — a persistence hook: append the record to
/// durable storage there and an interruption at any instant loses at most
/// the points currently in flight. Recovered records are not re-announced.
///
/// Ordering and fault isolation are exactly [`sweep_warm_fork`]'s: one
/// record per point, in input order.
pub fn sweep_warm_fork_resume<P, S, B, F>(
    points: &[P],
    fork: &Snapshot,
    cfg: WarmFork,
    build: B,
    eval: F,
    done: &[Option<RunRecord>],
    on_record: &(dyn Fn(usize, &RunRecord) + Sync),
) -> Vec<RunRecord>
where
    P: Sync,
    B: Fn() -> SimResult<S> + Sync,
    F: Fn(&P, &mut S) -> RunRecord + Sync,
    S: AsMut<Simulator>,
{
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out: Vec<Option<RunRecord>> = (0..n)
        .map(|i| done.get(i).cloned().unwrap_or(None))
        .collect();
    let todo: Vec<usize> = (0..n).filter(|&i| out[i].is_none()).collect();
    if !todo.is_empty() {
        let workers = hw_threads().clamp(1, todo.len());
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, RunRecord)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let todo = &todo;
                let build = &build;
                let eval = &eval;
                scope.spawn(move || {
                    // The live base is thread-local: it is born, forked, and
                    // retired on this worker, so `S` needs no Send/Sync.
                    let mut base: Option<S> = None;
                    let mut forks = 0usize;
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = todo.get(k) else {
                            break;
                        };
                        let rec =
                            warm_point(i, points, fork, cfg, build, eval, &mut base, &mut forks);
                        on_record(i, &rec);
                        if tx.send((i, rec)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (i, rec) in rx {
                out[i] = Some(rec);
            }
        });
    }
    out.into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| {
                RunRecord::failed(
                    "warm-fork",
                    vec![("point".into(), i.to_string())],
                    "worker died before reporting",
                )
            })
        })
        .collect()
}

/// Serial reference implementation (for equivalence tests and debugging).
pub fn sweep_serial<P, F>(points: &[P], eval: F) -> Vec<RunRecord>
where
    F: Fn(&P) -> RunRecord,
{
    points.iter().map(&eval).collect()
}

/// Run `eval` over every point in parallel, returning arbitrary payloads.
///
/// A panicking evaluation re-panics *here*, on the caller's thread, but
/// only after every other point has completed — a worker thread is never
/// lost to somebody else's bad point. Use [`sweep`] (or [`sweep_catch`]
/// directly) to turn panics into data instead.
pub fn sweep_with<P, R, F>(points: &[P], eval: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    sweep_catch(points, eval)
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(v) => v,
            Err(msg) => panic!("sweep point {i} panicked: {msg}"),
        })
        .collect()
}

/// Hardware threads available to this process.
fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Split the machine's thread budget between sweep points and simulation
/// shards ([`drcf_kernel::shard`]): returns `(point_workers,
/// shards_per_point)` such that `point_workers * shards_per_point` stays
/// within the hardware parallelism.
///
/// Point-level parallelism is the better deal (zero synchronization), so
/// it gets priority: shards only receive threads the points cannot use —
/// a sweep of 16 points on 16 cores runs 16 × 1-shard, while a sweep of 2
/// points on 16 cores runs 2 × 8-shard.
pub fn thread_split(n_points: usize, shards_per_point: usize) -> (usize, usize) {
    let par = hw_threads();
    let want_shards = shards_per_point.max(1);
    let point_workers = par.min(n_points.max(1));
    let shard_budget = (par / point_workers).clamp(1, want_shards);
    (point_workers, shard_budget)
}

/// [`sweep`] with the per-point shard budget from [`thread_split`]: `eval`
/// receives each point plus the shard count it should run with.
pub fn sweep_sharded<P, F>(points: &[P], shards_per_point: usize, eval: F) -> Vec<RunRecord>
where
    P: Sync,
    F: Fn(&P, usize) -> RunRecord + Sync,
{
    let (workers, shards) = thread_split(points.len(), shards_per_point);
    sweep_catch_workers(points, workers, |p| eval(p, shards))
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(rec) => rec,
            Err(msg) => RunRecord::failed(
                "sweep",
                vec![("point".into(), i.to_string())],
                format!("evaluator panicked: {msg}"),
            ),
        })
        .collect()
}

/// Sweep arbitrary SoC graphs through the automatic partitioner
/// ([`drcf_soc::partition`]): `plan` maps each point to its scenario
/// parameters, a [`drcf_soc::prelude::SocGraph`] and a base
/// [`drcf_kernel::prelude::ShardConfig`]; the runner splits the machine's
/// thread budget between sweep points and per-point simulation shards with
/// [`thread_split`] and runs every graph with `run_partitioned` under its
/// granted shard count. Because sharded execution is bit-identical to the
/// single-LP oracle by construction, the records are independent of the
/// budget split.
///
/// Same ordering and fault-isolation contract as [`sweep`]: one
/// [`RunRecord`] per point, in input order; a failed or panicking point
/// becomes a `RunRecord::failed` entry and every other point completes.
pub fn sweep_partitioned<P, F>(points: &[P], shards_per_point: usize, plan: F) -> Vec<RunRecord>
where
    P: Sync,
    F: Fn(
            &P,
        ) -> (
            Vec<(String, String)>,
            std::sync::Arc<drcf_soc::prelude::SocGraph>,
            drcf_kernel::prelude::ShardConfig,
        ) + Sync,
{
    let (workers, shards) = thread_split(points.len(), shards_per_point);
    sweep_catch_workers(points, workers, |p| {
        let (params, graph, cfg) = plan(p);
        match drcf_soc::prelude::run_partitioned(&graph, &cfg.shards(shards)) {
            Ok(run) => RunRecord::from_metrics("partitioned", params, &run.metrics),
            Err(e) => RunRecord::failed("partitioned", params, e.to_string()),
        }
    })
    .into_iter()
    .enumerate()
    .map(|(i, r)| match r {
        Ok(rec) => rec,
        Err(msg) => RunRecord::failed(
            "partitioned",
            vec![("point".into(), i.to_string())],
            format!("evaluator panicked: {msg}"),
        ),
    })
    .collect()
}

/// Run `eval` over every point in parallel with per-point fault isolation:
/// each evaluation runs under `catch_unwind`, so the result vector has one
/// entry per point, in order — `Ok(payload)` or `Err(panic message)`.
pub fn sweep_catch<P, R, F>(points: &[P], eval: F) -> Vec<Result<R, String>>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    sweep_catch_workers(points, hw_threads(), eval)
}

/// [`sweep_catch`] with an explicit worker-thread count (the point-level
/// half of a [`thread_split`] budget). `workers` is clamped to
/// `[1, points.len()]`.
pub fn sweep_catch_workers<P, R, F>(points: &[P], workers: usize, eval: F) -> Vec<Result<R, String>>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = points.len();
    let run_point =
        |i: usize| catch_unwind(AssertUnwindSafe(|| eval(&points[i]))).map_err(panic_message);
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(run_point).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
    // Results stream back over a channel the moment each point finishes.
    // Batching them in a per-worker Vec returned through join() loses every
    // completed point of a worker that dies mid-sweep (a panic that escapes
    // catch_unwind, e.g. a panic payload whose Drop itself panics while the
    // message is rendered) — only the point that killed the worker should
    // surface as an error.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<R, String>)>();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let run_point = &run_point;
                let tx = tx.clone();
                s.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = run_point(i);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                })
            })
            .collect();
        // Drop the scope's own sender so the drain ends once every worker
        // has exited (normally or by unwinding, which drops its clone).
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
        for h in handles {
            // Workers catch evaluation panics, so a join failure means the
            // thread itself died; its completed points already arrived over
            // the channel and anything unclaimed surfaces as Err below.
            let _ = h.join();
        }
    });
    out.into_iter()
        .map(|r| r.unwrap_or_else(|| Err("point not evaluated (sweep worker died)".into())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::prelude::SimDuration;
    use drcf_soc::prelude::*;

    fn eval_frames(frames: &usize) -> RunRecord {
        let w = wireless_receiver(*frames, 32);
        let soc = build_soc(&w, &SocSpec::default()).expect("build");
        let (m, _) = run_soc(soc);
        RunRecord::from_metrics("frames", vec![("frames".into(), frames.to_string())], &m)
    }

    #[test]
    fn parallel_equals_serial() {
        let points = vec![1usize, 2, 3];
        let par = sweep(&points, eval_frames);
        let ser = sweep_serial(&points, eval_frames);
        assert_eq!(par, ser);
        assert!(par.iter().all(|r| r.ok));
        // More frames take longer — ordering sanity.
        assert!(par[0].makespan_ns < par[2].makespan_ns);
    }

    #[test]
    fn sweep_preserves_point_order() {
        let points = vec![3usize, 1, 2];
        let recs = sweep(&points, eval_frames);
        let frames: Vec<&str> = recs.iter().map(|r| r.param("frames").unwrap()).collect();
        assert_eq!(frames, vec!["3", "1", "2"]);
    }

    #[test]
    fn sweep_with_custom_payloads() {
        let out = sweep_with(&[1u64, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn sweep_handles_many_points() {
        let points: Vec<u64> = (0..257).collect();
        let out = sweep_with(&points, |x| x + 1);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn panicking_point_yields_failed_record_others_complete() {
        let points: Vec<usize> = vec![1, 2, 3, 4];
        let recs = sweep(&points, |&p| {
            if p == 3 {
                panic!("injected failure at point {p}");
            }
            eval_frames(&1)
        });
        assert_eq!(recs.len(), 4, "every point gets a record");
        let failed: Vec<usize> = recs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.ok)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![2], "exactly the panicking point fails");
        let err = recs[2].error.as_deref().unwrap_or("");
        assert!(err.contains("injected failure"), "{err}");
        assert!(recs[0].ok && recs[1].ok && recs[3].ok);
    }

    #[test]
    fn sweep_catch_preserves_order_with_errors() {
        let out = sweep_catch(&[1u64, 2, 3], |&x| {
            if x == 2 {
                panic!("boom");
            }
            x * 10
        });
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Err("boom".to_string()));
        assert_eq!(out[2], Ok(30));
    }

    #[test]
    fn sweep_empty_points() {
        let out = sweep_with::<u64, u64, _>(&[], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_split_stays_within_hardware_budget() {
        let par = super::hw_threads();
        for (points, shards) in [(1usize, 8usize), (2, 4), (16, 4), (100, 1), (0, 0)] {
            let (w, s) = thread_split(points, shards);
            assert!(w >= 1 && s >= 1, "({points},{shards}) -> ({w},{s})");
            assert!(w <= points.max(1));
            assert!(s <= shards.max(1));
            assert!(w * s <= par.max(1) * 2, "budget blown: {w}x{s} on {par}");
        }
        // Plenty of points: points win the whole budget, shards get 1 each.
        let (w, s) = thread_split(1000, 8);
        assert_eq!(w, par.min(1000));
        assert_eq!(s, (par / w).clamp(1, 8));
        // One point: the whole budget goes to its shards.
        let (w, s) = thread_split(1, 8);
        assert_eq!(w, 1);
        assert_eq!(s, par.clamp(1, 8));
    }

    #[test]
    fn sweep_sharded_matches_serial_oracle_per_point() {
        // Sweep tile counts; each point runs with whatever shard budget
        // thread_split grants, and every result must equal the 1-shard run.
        let points = vec![2usize, 3, 4];
        let eval = |tiles: &usize, shards: usize| {
            let spec = ShardedSocSpec {
                tiles: *tiles,
                horizon: SimDuration::us(20),
                ..ShardedSocSpec::default()
            };
            let run = match spec.run_with_shards(shards) {
                Ok(r) => r,
                Err(e) => panic!("sharded run failed: {e:?}"),
            };
            RunRecord::from_metrics(
                "sharded",
                vec![("tiles".into(), tiles.to_string())],
                &run.metrics,
            )
        };
        let sharded = sweep_sharded(&points, 4, |p, s| eval(p, s));
        let serial = sweep_serial(&points, |p| eval(p, 1));
        assert_eq!(sharded, serial);
        assert!(sharded.iter().all(|r| r.ok));
    }

    #[test]
    fn sweep_partitioned_runs_plain_graphs_through_the_cut() {
        use drcf_bus::prelude::*;
        use drcf_kernel::prelude::{ShardConfig, SimTime};
        use std::sync::Arc;

        // A plain two-segment SocSpec-style graph per point: a CPU whose
        // program hammers a remote memory through a bridge, sweeping the
        // burst size. The partitioner must cut it into 2 LPs and every
        // record must match the single-shard oracle sweep bit for bit.
        let build_graph = |bursts: usize| {
            let mut g = SocGraph::new();
            let cpu_seg = g.add_segment("cpu", Some(BusConfig::default()));
            g.add_part(
                cpu_seg,
                Part::new("cpu", move |sim, ctx| {
                    let bus = ctx.bus()?;
                    let mut program = Vec::new();
                    for i in 0..bursts {
                        program.push(Instr::Write {
                            addr: 0x1_0000 + 8 * i as Addr,
                            data: vec![i as Word; 4],
                        });
                        program.push(Instr::Read {
                            addr: 0x1_0000 + 8 * i as Addr,
                            burst: 4,
                        });
                    }
                    Ok(sim.add("cpu", Cpu::new(CpuConfig::default(), bus, program)))
                }),
            );
            let mem_seg = g.add_segment("mem", Some(BusConfig::default()));
            g.add_part(
                mem_seg,
                Part::new("remote_mem", |sim, _| {
                    Ok(sim.add(
                        "remote_mem",
                        Memory::new(MemoryConfig {
                            base: 0x1_0000,
                            size_words: 0x1000,
                            ..MemoryConfig::default()
                        }),
                    ))
                })
                .with_claim(0x1_0000, 0x1_0FFF),
            );
            g.add_bridge(
                "br",
                BridgeConfig::default(),
                cpu_seg,
                mem_seg,
                (0x1_0000, 0x1_FFFF),
            );
            Arc::new(g)
        };
        let points = vec![4usize, 8, 16];
        let plan = |bursts: &usize| {
            (
                vec![("bursts".into(), bursts.to_string())],
                build_graph(*bursts),
                ShardConfig::to(SimTime::ZERO + SimDuration::us(200)).hash_slices(true),
            )
        };
        let sharded = sweep_partitioned(&points, 2, plan);
        let serial = sweep_partitioned(&points, 1, plan);
        assert_eq!(sharded, serial);
        assert!(sharded.iter().all(|r| r.ok), "{sharded:?}");
        // More bursts cross the bridge -> more bus words observed.
        assert!(sharded[0].bus_words < sharded[2].bus_words);
    }

    #[test]
    fn worker_death_loses_no_completed_points() {
        // A panic payload whose Drop panics detonates *after* catch_unwind,
        // while the message is rendered — the worker thread itself dies.
        // Every point it had already completed must still be reported.
        struct Bomb;
        impl Drop for Bomb {
            fn drop(&mut self) {
                if !std::thread::panicking() {
                    panic!("panic payload detonated on drop");
                }
            }
        }
        if std::thread::available_parallelism().map_or(1, |p| p.get()) < 2 {
            // The single-threaded fallback runs on the caller's thread and
            // cannot model a dying worker.
            return;
        }
        let points: Vec<usize> = (0..64).collect();
        let out = sweep_catch(&points, |&p| {
            if p == 40 {
                std::panic::panic_any(Bomb);
            }
            p * 2
        });
        assert_eq!(out.len(), points.len(), "one result per point");
        for (i, r) in out.iter().enumerate() {
            if i == 40 {
                assert!(r.is_err(), "the killing point reports an error");
            } else {
                assert_eq!(*r, Ok(i * 2), "point {i} must survive the dead worker");
            }
        }
    }

    #[test]
    fn warm_fork_matches_cold_runs() {
        let w = wireless_receiver(2, 32);
        let spec = SocSpec {
            mapping: Mapping::Drcf {
                candidates: vec!["fir".into(), "fft".into(), "viterbi".into()],
                technology: drcf_core::prelude::morphosys(),
                geometry: drcf_core::prelude::FabricGeometry::new(24_000, 1),
                config_path: SocConfigPath::SystemBus,
                scheduler: drcf_core::prelude::SchedulerConfig::default(),
                overlap_load_exec: false,
            },
            ..SocSpec::default()
        };
        let eval_cold = |_: &usize| {
            let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
            RunRecord::from_metrics("cold", vec![], &m)
        };
        let cold = sweep(&[0usize, 1, 2, 3, 4], eval_cold);
        assert!(cold.iter().all(|r| r.ok));
        // Fork each point from a snapshot taken halfway through the run.
        let makespan_fs = (cold[0].makespan_ns * 1_000_000.0) as u64;
        let at = drcf_kernel::prelude::SimDuration::fs(makespan_fs / 2);
        let snap = snapshot_prefix(&w, &spec, at).expect("prefix");
        // delta_chain = 2 exercises the periodic full rebase mid-sweep.
        let warm = sweep_warm_fork(
            &[0usize, 1, 2, 3, 4],
            &snap,
            WarmFork { delta_chain: 2 },
            || restore_soc(&w, &spec, &snap),
            |_, soc| {
                let m = run_soc_mut(soc);
                RunRecord::from_metrics("cold", vec![], &m)
            },
        );
        assert_eq!(warm, cold, "warm forks must be bit-identical to cold runs");
    }

    #[test]
    fn warm_fork_survives_a_panicking_point() {
        let w = wireless_receiver(2, 32);
        let spec = SocSpec::default();
        let (m, soc) = run_soc(build_soc(&w, &spec).expect("build"));
        assert!(m.ok);
        let reference = RunRecord::from_metrics("p", vec![], &m);
        let at = SimDuration::fs(m.makespan.as_fs() / 2);
        let snap = snapshot_prefix(&w, &spec, at).expect("prefix");
        drop(soc);
        let out = sweep_warm_fork(
            &[0usize, 1, 2, 3],
            &snap,
            WarmFork::default(),
            || restore_soc(&w, &spec, &snap),
            |&p, soc| {
                if p == 1 {
                    panic!("poisoned point");
                }
                let m = run_soc_mut(soc);
                RunRecord::from_metrics("p", vec![], &m)
            },
        );
        assert_eq!(out.len(), 4, "one record per point");
        for (i, r) in out.iter().enumerate() {
            if i == 1 {
                assert!(!r.ok, "the panicking point reports a failure");
                let err = r.error.as_deref().unwrap_or("");
                assert!(err.contains("poisoned point"), "panic message kept: {err}");
            } else {
                assert_eq!(r, &reference, "point {i} unharmed by the poisoned base");
            }
        }
    }
}
