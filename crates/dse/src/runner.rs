//! Parallel sweep execution.
//!
//! Each simulation in this workspace is single-threaded and fully
//! deterministic, so design-space exploration parallelizes at whole-run
//! granularity: `par_iter` over the parameter points (the data-parallel
//! idiom of the rayon guide), preserving point order in the output so
//! parallel and serial sweeps produce identical record vectors.

use rayon::prelude::*;

use crate::metrics::RunRecord;

/// Run `eval` over every point, in parallel, preserving order.
pub fn sweep<P, F>(points: &[P], eval: F) -> Vec<RunRecord>
where
    P: Sync,
    F: Fn(&P) -> RunRecord + Sync,
{
    points.par_iter().map(&eval).collect()
}

/// Serial reference implementation (for equivalence tests and debugging).
pub fn sweep_serial<P, F>(points: &[P], eval: F) -> Vec<RunRecord>
where
    F: Fn(&P) -> RunRecord,
{
    points.iter().map(&eval).collect()
}

/// Run `eval` over every point in parallel, returning arbitrary payloads.
pub fn sweep_with<P, R, F>(points: &[P], eval: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    points.par_iter().map(&eval).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_soc::prelude::*;

    fn eval_frames(frames: &usize) -> RunRecord {
        let w = wireless_receiver(*frames, 32);
        let soc = build_soc(&w, &SocSpec::default()).expect("build");
        let (m, _) = run_soc(soc);
        RunRecord::from_metrics(
            "frames",
            vec![("frames".into(), frames.to_string())],
            &m,
        )
    }

    #[test]
    fn parallel_equals_serial() {
        let points = vec![1usize, 2, 3];
        let par = sweep(&points, eval_frames);
        let ser = sweep_serial(&points, eval_frames);
        assert_eq!(par, ser);
        assert!(par.iter().all(|r| r.ok));
        // More frames take longer — ordering sanity.
        assert!(par[0].makespan_ns < par[2].makespan_ns);
    }

    #[test]
    fn sweep_preserves_point_order() {
        let points = vec![3usize, 1, 2];
        let recs = sweep(&points, eval_frames);
        let frames: Vec<&str> = recs.iter().map(|r| r.param("frames").unwrap()).collect();
        assert_eq!(frames, vec!["3", "1", "2"]);
    }

    #[test]
    fn sweep_with_custom_payloads() {
        let out = sweep_with(&[1u64, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
