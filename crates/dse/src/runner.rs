//! Parallel sweep execution.
//!
//! Each simulation in this workspace is single-threaded and fully
//! deterministic, so design-space exploration parallelizes at whole-run
//! granularity: a scoped thread pool pulls parameter points off a shared
//! atomic cursor (classic work-stealing-by-index), and results are written
//! back by point index so parallel and serial sweeps produce identical
//! record vectors. This is std-only (the environment is offline), but the
//! contract matches the rayon `par_iter().map().collect()` idiom the
//! module originally used.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::metrics::RunRecord;

/// Run `eval` over every point, in parallel, preserving order.
pub fn sweep<P, F>(points: &[P], eval: F) -> Vec<RunRecord>
where
    P: Sync,
    F: Fn(&P) -> RunRecord + Sync,
{
    sweep_with(points, eval)
}

/// Serial reference implementation (for equivalence tests and debugging).
pub fn sweep_serial<P, F>(points: &[P], eval: F) -> Vec<RunRecord>
where
    F: Fn(&P) -> RunRecord,
{
    points.iter().map(&eval).collect()
}

/// Run `eval` over every point in parallel, returning arbitrary payloads.
pub fn sweep_with<P, R, F>(points: &[P], eval: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = points.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return points.iter().map(&eval).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let eval = &eval;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, eval(&points[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every point evaluated exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_soc::prelude::*;

    fn eval_frames(frames: &usize) -> RunRecord {
        let w = wireless_receiver(*frames, 32);
        let soc = build_soc(&w, &SocSpec::default()).expect("build");
        let (m, _) = run_soc(soc);
        RunRecord::from_metrics("frames", vec![("frames".into(), frames.to_string())], &m)
    }

    #[test]
    fn parallel_equals_serial() {
        let points = vec![1usize, 2, 3];
        let par = sweep(&points, eval_frames);
        let ser = sweep_serial(&points, eval_frames);
        assert_eq!(par, ser);
        assert!(par.iter().all(|r| r.ok));
        // More frames take longer — ordering sanity.
        assert!(par[0].makespan_ns < par[2].makespan_ns);
    }

    #[test]
    fn sweep_preserves_point_order() {
        let points = vec![3usize, 1, 2];
        let recs = sweep(&points, eval_frames);
        let frames: Vec<&str> = recs.iter().map(|r| r.param("frames").unwrap()).collect();
        assert_eq!(frames, vec!["3", "1", "2"]);
    }

    #[test]
    fn sweep_with_custom_payloads() {
        let out = sweep_with(&[1u64, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn sweep_handles_many_points() {
        let points: Vec<u64> = (0..257).collect();
        let out = sweep_with(&points, |x| x + 1);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn sweep_empty_points() {
        let out = sweep_with::<u64, u64, _>(&[], |x| *x);
        assert!(out.is_empty());
    }
}
