//! Partitioning exploration: which accelerators should fold into the DRCF?
//!
//! The flow's partitioning phase (Fig. 3) decides which blocks become
//! contexts. This module enumerates candidate subsets, sizes a fabric for
//! each (the largest folded context sets the fabric area — that is the
//! whole area saving), simulates every option in parallel, and hands the
//! records to the Pareto analysis.

use drcf_core::prelude::{FabricGeometry, SchedulerConfig, Technology};
use drcf_soc::prelude::*;

use crate::metrics::RunRecord;
use crate::runner::sweep;

/// All subsets of `names` with at least `min_size` elements (stable order:
/// bitmask order over the input).
pub fn subsets(names: &[String], min_size: usize) -> Vec<Vec<String>> {
    let n = names.len();
    assert!(
        n <= 20,
        "subset enumeration beyond 20 blocks is unreasonable"
    );
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        if (mask.count_ones() as usize) < min_size {
            continue;
        }
        out.push(
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| names[i].clone())
                .collect(),
        );
    }
    out
}

/// Fabric geometry sized for a candidate set: area of the largest folded
/// context times a margin, in one region per `slots` requested.
pub fn size_fabric(
    workload: &Workload,
    folded: &[String],
    margin: f64,
    regions: usize,
) -> FabricGeometry {
    let max_gates = workload
        .accels
        .iter()
        .filter(|a| folded.contains(&a.name))
        .map(|a| a.kind.gate_count())
        .max()
        .unwrap_or(1_000);
    let total = ((max_gates as f64 * margin) as u64).max(1_000) * regions as u64;
    FabricGeometry::new(total, regions)
}

/// One partitioning option's outcome.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// The folded accelerator names (empty = all fixed).
    pub folded: Vec<String>,
    /// Its run record.
    pub record: RunRecord,
}

/// Explore every folding subset (plus the all-fixed baseline) for a
/// workload on a technology, in parallel.
pub fn explore_partitions(
    workload: &Workload,
    base_spec: &SocSpec,
    technology: &Technology,
    min_fold: usize,
) -> Vec<PartitionOutcome> {
    let names: Vec<String> = workload.accels.iter().map(|a| a.name.clone()).collect();
    let mut options: Vec<Vec<String>> = vec![vec![]]; // all-fixed baseline
    options.extend(subsets(&names, min_fold.max(1)));

    let records = sweep(&options, |folded| {
        let spec = SocSpec {
            mapping: if folded.is_empty() {
                Mapping::AllFixed
            } else {
                Mapping::Drcf {
                    candidates: folded.clone(),
                    technology: technology.clone(),
                    geometry: size_fabric(workload, folded, 1.1, 1),
                    config_path: SocConfigPath::SystemBus,
                    scheduler: SchedulerConfig::default(),
                    overlap_load_exec: false,
                }
            },
            ..base_spec.clone()
        };
        let label = if folded.is_empty() {
            "all-fixed".to_string()
        } else {
            folded.join("+")
        };
        match build_soc(workload, &spec) {
            Ok(soc) => {
                let (m, _) = run_soc(soc);
                RunRecord::from_metrics("partition", vec![("folded".into(), label)], &m)
            }
            Err(e) => {
                let mut r =
                    RunRecord::failed("partition", vec![("folded".into(), label)], e.to_string());
                // An unbuildable partition must also lose area comparisons.
                r.area_gates = u64::MAX;
                r
            }
        }
    });

    options
        .into_iter()
        .zip(records)
        .map(|(folded, record)| PartitionOutcome { folded, record })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_core::prelude::morphosys;

    #[test]
    fn subsets_enumeration() {
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let all = subsets(&names, 1);
        assert_eq!(all.len(), 7); // 2^3 - empty
        let pairs_up = subsets(&names, 2);
        assert_eq!(pairs_up.len(), 4); // 3 pairs + 1 triple
        assert!(pairs_up.contains(&vec!["a".to_string(), "b".to_string()]));
        assert!(subsets(&names, 4).is_empty());
    }

    #[test]
    fn fabric_sized_to_largest_member() {
        let w = wireless_receiver(1, 32);
        let g = size_fabric(&w, &["fir".into(), "viterbi".into()], 1.0, 1);
        let viterbi_gates = KernelKind::Viterbi.gate_count();
        assert_eq!(g.total_gates, viterbi_gates);
        let g2 = size_fabric(&w, &["fir".into()], 2.0, 1);
        assert!(g2.total_gates < viterbi_gates, "fir fabric is smaller");
    }

    #[test]
    fn exploration_includes_baseline_and_completes() {
        let w = wireless_receiver(1, 16);
        let outcomes = explore_partitions(&w, &SocSpec::default(), &morphosys(), 2);
        // baseline + 3 pairs + 1 triple = 5.
        assert_eq!(outcomes.len(), 5);
        assert!(outcomes[0].folded.is_empty());
        assert!(outcomes.iter().all(|o| o.record.ok), "{outcomes:#?}");
        // Baseline has the largest area and (weakly) the smallest makespan.
        let base = &outcomes[0].record;
        for o in &outcomes[1..] {
            assert!(o.record.area_gates < base.area_gates);
            assert!(o.record.makespan_ns >= base.makespan_ns);
        }
    }
}
