//! Property tests for the automatic partitioner: randomized
//! bridge-connected SoC graphs — random bridge latencies (including
//! zero-lookahead returns that force the merge fallback), random fault
//! windows and per-fabric config-traffic coalescing — must produce
//! bit-identical outcomes (`RunMetrics`, per-LP reports and per-slice
//! state hashes) at 1, 2 and 4 shards, and identical typed errors when a
//! fault window is hit.

use std::sync::Arc;

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_kernel::prelude::*;
use drcf_soc::prelude::*;
use proptest::prelude::*;

/// Per-fabric randomized parameters.
#[derive(Debug, Clone)]
struct FabricParams {
    forward_cycles: u64,
    return_cycles: u64,
    bridge_clock_mhz: u64,
    config_words: u64,
    coalesce: bool,
    accesses: usize,
}

fn fabric_params() -> impl Strategy<Value = FabricParams> {
    (
        50u64..150,
        prop_oneof![Just(0u64), 50u64..150],
        prop_oneof![Just(10u64), Just(25), Just(50), Just(100)],
        64u64..512,
        any::<bool>(),
        2usize..=4,
    )
        .prop_map(
            |(
                forward_cycles,
                return_cycles,
                bridge_clock_mhz,
                config_words,
                coalesce,
                accesses,
            )| {
                FabricParams {
                    forward_cycles,
                    return_cycles,
                    bridge_clock_mhz,
                    config_words,
                    coalesce,
                    accesses,
                }
            },
        )
}

/// Base of fabric `c`'s address window (disjoint per fabric).
fn base_of(c: usize) -> Addr {
    0x10_0000 * (c as Addr + 1)
}

/// Build a random bridge-connected graph: a CPU segment with one scripted
/// CPU master per fabric, plus one peripheral segment per fabric (config
/// memory + two-context DRCF) behind its own bridge. `fault` optionally
/// poisons the start of one fabric's config memory, which the CPU reads at
/// the end of its program — hitting it must abort the run with a typed
/// fault error, identically at every shard count.
fn build_graph(fabrics: &[FabricParams], fault: Option<usize>) -> Arc<SocGraph> {
    let mut g = SocGraph::new();
    let cpu_seg = g.add_segment("cpu", Some(BusConfig::default()));
    for (c, p) in fabrics.iter().enumerate() {
        let base = base_of(c);
        let accesses = p.accesses;
        g.add_part(
            cpu_seg,
            Part::new(&format!("cpu{c}"), move |sim, ctx| {
                let bus = ctx.bus()?;
                let mut program = Vec::new();
                for i in 0..accesses {
                    // Alternate the two contexts: every access misses and
                    // forces a full configuration load downstream.
                    let ctx_base = base + 0x8000 + 0x100 * (i as Addr % 2);
                    program.push(Instr::Write {
                        addr: ctx_base,
                        data: vec![i as Word + 1],
                    });
                }
                // Read back the start of the config memory (the fault
                // window, when one is injected on this fabric).
                program.push(Instr::Read {
                    addr: base + 0x1_0000,
                    burst: 4,
                });
                Ok(sim.add(
                    &format!("cpu{c}"),
                    Cpu::new(CpuConfig::default(), bus, program),
                ))
            }),
        );

        let mut bus_cfg = BusConfig::default();
        if fault == Some(c) {
            bus_cfg
                .fault_ranges
                .push((base + 0x1_0000, base + 0x1_0003));
        }
        let fab = g.add_segment(&format!("fabric{c}"), Some(bus_cfg));
        let mem_cfg = MemoryConfig {
            base: base + 0x1_0000,
            size_words: 0x1000,
            ..MemoryConfig::default()
        };
        let timing = mem_cfg.slave_timing();
        g.add_part(
            fab,
            Part::new(&format!("cfg_mem{c}"), move |sim, _| {
                Ok(sim.add(&format!("cfg_mem{c}"), Memory::new(mem_cfg.clone())))
            })
            .with_claim(base + 0x1_0000, base + 0x1_0FFF)
            .with_timing(timing),
        );
        let (config_words, coalesce) = (p.config_words, p.coalesce);
        g.add_part(
            fab,
            Part::new(&format!("drcf{c}"), move |sim, ctx| {
                let bus = ctx.bus()?;
                Ok(sim.add(
                    &format!("drcf{c}"),
                    Drcf::new(
                        DrcfConfig {
                            clock_mhz: 100,
                            config_path: ConfigPath::SystemBus {
                                bus,
                                priority: 3,
                                burst: 16,
                            },
                            scheduler: SchedulerConfig::default(),
                            overlap_load_exec: false,
                            abort_load_of: vec![],
                            coalesce_config_traffic: coalesce,
                        },
                        vec![
                            Context::new(
                                Box::new(RegisterFile::new("ctx_a", base + 0x8000, 16, 1)),
                                ContextParams {
                                    config_addr: base + 0x1_0100,
                                    config_size_words: config_words,
                                    ..ContextParams::default()
                                },
                            ),
                            Context::new(
                                Box::new(RegisterFile::new("ctx_b", base + 0x8100, 16, 1)),
                                ContextParams {
                                    config_addr: base + 0x1_0100 + config_words,
                                    config_size_words: config_words,
                                    ..ContextParams::default()
                                },
                            ),
                        ],
                    ),
                ))
            })
            .with_claim(base + 0x8000, base + 0x800F)
            .with_claim(base + 0x8100, base + 0x810F),
        );
        g.add_bridge(
            &format!("bridge{c}"),
            BridgeConfig {
                forward_cycles: p.forward_cycles,
                return_cycles: p.return_cycles,
                clock_mhz: p.bridge_clock_mhz,
                priority: 1,
            },
            cpu_seg,
            fab,
            (base + 0x8000, base + 0x1_FFFF),
        );
    }
    Arc::new(g)
}

fn run_graph(g: &Arc<SocGraph>, shards: usize) -> SimResult<PartitionedRun> {
    let cfg = ShardConfig::to(SimTime::ZERO + SimDuration::us(400))
        .shards(shards)
        .hash_slices(true);
    run_partitioned(g, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identity of sharded execution over random bridge-connected
    /// graphs: whatever the bridge latencies (zero-return bridges merge
    /// into their neighbor LP), coalescing settings and fault windows, the
    /// 2- and 4-shard runs agree with the single-LP oracle — on success
    /// in every metric, probe and per-slice state hash; on an injected
    /// fault in the exact typed error.
    #[test]
    fn random_bridge_graphs_are_shard_count_invariant(
        fabrics in proptest::collection::vec(fabric_params(), 1..4),
        fault_seed in any::<u8>(),
    ) {
        // Poison one fabric's readback window in half the cases.
        let fault = if fault_seed % 2 == 0 {
            Some(fault_seed as usize % fabrics.len())
        } else {
            None
        };
        let g = build_graph(&fabrics, fault);

        let plan = plan_partition(&g).expect("plan");
        let merged = fabrics.iter().filter(|p| p.return_cycles == 0).count();
        prop_assert_eq!(plan.cut.len() + plan.local.len(), fabrics.len());
        prop_assert_eq!(plan.local.len(), merged, "zero-return bridges merge");
        prop_assert_eq!(plan.lp_count(), 1 + fabrics.len() - merged);

        let oracle = run_graph(&g, 1);
        prop_assert_eq!(
            oracle.is_err(),
            fault.is_some(),
            "a poisoned readback window must abort the run: {:?}",
            oracle.as_ref().err()
        );
        for shards in [2usize, 4] {
            let run = run_graph(&g, shards);
            match (&oracle, &run) {
                (Ok(a), Ok(b)) => {
                    prop_assert!(
                        a.report.same_outcome(&b.report),
                        "{} shards diverged at {:?}",
                        shards,
                        a.report.first_divergence(&b.report)
                    );
                    prop_assert_eq!(&a.metrics, &b.metrics);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string(), "typed errors must match");
                }
                _ => prop_assert!(
                    false,
                    "oracle and {shards}-shard run disagree on success: {oracle:?} vs {run:?}"
                ),
            }
        }
    }
}
