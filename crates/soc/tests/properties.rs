//! Property tests for the SoC layer: program compilation structure,
//! analytic-profile consistency, and cross-mapping functional equivalence
//! on randomized workload parameters.

use drcf_core::prelude::{morphosys, FabricGeometry, SchedulerConfig};
use drcf_kernel::prelude::{SimDuration, SimTime};
use drcf_soc::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled programs have exactly the expected instruction counts:
    /// each hardware task contributes 2*ceil(words/16) data bursts plus 4
    /// control steps (LEN, CTRL, poll, status reset); software tasks one
    /// Compute each.
    #[test]
    fn compile_instruction_count(
        sw in proptest::collection::vec(1u64..10_000, 0..6),
        hw in proptest::collection::vec(1usize..100, 0..6),
    ) {
        let mut g = TaskGraph::new();
        for (i, &cycles) in sw.iter().enumerate() {
            g.add(&format!("sw{i}"), TaskKind::Software { cycles }, vec![]);
        }
        for (i, &words) in hw.iter().enumerate() {
            g.add(
                &format!("hw{i}"),
                TaskKind::Hardware {
                    accel: "acc".into(),
                    input_words: words,
                    seed: i as u64,
                },
                vec![],
            );
        }
        let bindings = vec![AccelBinding {
            name: "acc".into(),
            base: 0x2000,
            window_words: 64,
        }];
        let prog = compile(&g, &bindings, 50).unwrap();
        let expect: usize = sw.len()
            + hw.iter()
                .map(|&w| {
                    let w = w.min(64);
                    2 * w.div_ceil(16) + 4
                })
                .sum::<usize>();
        prop_assert_eq!(prog.len(), expect);
    }

    /// Analytic-profile consistency: busy fractions in (0, 1], pairwise
    /// overlap never exceeds either block's busy fraction, and the
    /// schedule length bounds every block's busy time.
    #[test]
    fn asap_profile_consistency(frames in 1usize..5, samples in 16usize..128) {
        for w in [
            wireless_receiver(frames, samples),
            video_pipeline(frames, samples.min(64)),
            multi_standard(frames * 2, samples.min(64), 1),
        ] {
            let (profile, makespan) = asap_profile(&w).unwrap();
            prop_assert!(makespan > 0);
            for b in &profile.blocks {
                prop_assert!(b.busy_fraction > 0.0 && b.busy_fraction <= 1.0,
                    "{}: {}", b.instance, b.busy_fraction);
            }
            for (a, b, f) in &profile.overlap {
                let ba = profile.blocks.iter().find(|x| &x.instance == a).unwrap();
                let bb = profile.blocks.iter().find(|x| &x.instance == b).unwrap();
                prop_assert!(*f <= ba.busy_fraction + 1e-9);
                prop_assert!(*f <= bb.busy_fraction + 1e-9);
                prop_assert!(*f >= 0.0);
            }
        }
    }

    /// Functional equivalence of the two Fig. 1 mappings over randomized
    /// workload parameters: the CPU reads back identical data.
    #[test]
    fn mappings_agree_on_random_workloads(
        frames in 1usize..4,
        samples in 8usize..48,
        switch_every in 1usize..3,
    ) {
        let w = multi_standard(frames * 2, samples, switch_every);
        let run = |mapping: Mapping| {
            let spec = SocSpec { mapping, ..SocSpec::default() };
            let soc = build_soc(&w, &spec).expect("build");
            let (m, soc) = run_soc(soc);
            assert!(m.ok);
            soc.sim.get::<Cpu>(0).read_log.clone()
        };
        let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
        let max_gates = w.accels.iter().map(|a| a.kind.gate_count()).max().unwrap();
        let folded = Mapping::Drcf {
            geometry: FabricGeometry::new(max_gates * 12 / 10, 1),
            candidates: names,
            technology: morphosys(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        };
        prop_assert_eq!(run(Mapping::AllFixed), run(folded));
    }

    /// Deterministic inputs: the same seed yields the same block; different
    /// seeds differ somewhere (overwhelmingly likely for 16+ words).
    #[test]
    fn task_inputs_seeded(seed in any::<u64>()) {
        let a = task_input(seed, 32);
        let b = task_input(seed, 32);
        prop_assert_eq!(&a, &b);
        let c = task_input(seed.wrapping_add(1), 32);
        prop_assert_ne!(&a, &c);
    }

    /// Sharded multi-fabric runs are a pure wall-clock optimization: over
    /// random tile counts, work mixes and fault windows, `RunMetrics`,
    /// per-LP reports and per-slice state hashes are bit-identical under
    /// 1, 2, and 4 shards.
    #[test]
    fn sharded_soc_is_shard_count_invariant(
        tiles in 2usize..6,
        work in 1u64..10,
        fanout in 0u64..6,
        emit_every in 1u64..5,
        fault_start_us in 0u64..20,
        fault_len_us in 0u64..10,
    ) {
        let spec = ShardedSocSpec {
            tiles,
            work,
            fanout,
            emit_every,
            horizon: SimDuration::us(25),
            fault_window: Some((
                SimTime::ZERO + SimDuration::us(fault_start_us),
                SimTime::ZERO + SimDuration::us(fault_start_us + fault_len_us),
            )),
            hash_slices: true,
            ..ShardedSocSpec::default()
        };
        let oracle = match spec.run_with_shards(1) {
            Ok(r) => r,
            Err(e) => panic!("oracle run failed: {e:?}"),
        };
        for shards in [2usize, 4] {
            let par = match spec.run_with_shards(shards) {
                Ok(r) => r,
                Err(e) => panic!("{shards}-shard run failed: {e:?}"),
            };
            prop_assert!(
                oracle.report.same_outcome(&par.report),
                "shards={} diverged at {:?}",
                shards,
                oracle.report.first_divergence(&par.report)
            );
            prop_assert_eq!(&oracle.metrics, &par.metrics);
            for (a, b) in oracle.report.lps.iter().zip(&par.report.lps) {
                prop_assert_eq!(&a.slice_hashes, &b.slice_hashes);
                prop_assert_eq!(a.state_hash, b.state_hash);
            }
        }
    }
}

/// Kernel compute-cycle models are monotone in input size for every kernel
/// (exhaustive over the library, not random).
#[test]
fn kernel_cycles_monotone() {
    let kinds = [
        KernelKind::Fir { taps: vec![1; 8] },
        KernelKind::Fft { points: 64 },
        KernelKind::Viterbi,
        KernelKind::Aes { rounds: 10 },
        KernelKind::Dct,
        KernelKind::MotionEst { search_points: 8 },
    ];
    for k in kinds {
        let mut prev = 0;
        for len in [1u64, 16, 64, 256, 1024] {
            let c = k.compute_cycles(len);
            assert!(c >= prev, "{k:?} not monotone at {len}");
            prev = c;
        }
    }
}
