//! SoC assembly: the two architectures of the paper's Fig. 1.
//!
//! * [`Mapping::AllFixed`] — Fig. 1(a): CPU + memory + one hardwired
//!   accelerator per workload kernel on the shared bus.
//! * [`Mapping::Drcf`] — Fig. 1(b): a chosen subset of those accelerators
//!   folded into a single dynamically reconfigurable fabric, configuration
//!   images resident in system memory.
//!
//! [`run_soc`] executes the workload's compiled CPU program on the built
//! system and extracts the metric record every experiment harness consumes.

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_kernel::prelude::*;

use crate::accelerator::KernelAccelerator;
use crate::cpu::{Cpu, CpuConfig};
use crate::tasks::{compile_with, AccelBinding, CompileOptions, CopyMode};
use crate::workloads::Workload;

/// Configuration transport choice at SoC level.
#[derive(Debug, Clone)]
pub enum SocConfigPath {
    /// Images in system memory, loaded over the shared bus.
    SystemBus,
    /// Dedicated port into the system memory (set `dual_port` on the
    /// memory config to make it contention-free).
    DirectPort,
    /// Fixed-rate loader (no modeled traffic).
    FixedRate {
        /// Words per cycle.
        words_per_cycle: u64,
    },
}

/// How the workload's accelerators are implemented.
// A configuration enum built a handful of times per run; the Technology
// payload's size is irrelevant next to the construction ergonomics.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Mapping {
    /// Every accelerator is its own hardwired block (Fig. 1a).
    AllFixed,
    /// The named accelerators fold into one DRCF (Fig. 1b); the rest stay
    /// hardwired.
    Drcf {
        /// Accelerator names to fold.
        candidates: Vec<String>,
        /// Target technology.
        technology: Technology,
        /// Fabric geometry.
        geometry: FabricGeometry,
        /// Configuration transport.
        config_path: SocConfigPath,
        /// Scheduler parameters.
        scheduler: SchedulerConfig,
        /// Background loading.
        overlap_load_exec: bool,
    },
}

/// Data-movement strategy at SoC level (resolved to a
/// [`crate::tasks::CopyMode`] by the builder, which allocates the staging
/// area and the DMA block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocCopyMode {
    /// CPU writes accelerator windows directly.
    CpuDirect,
    /// Inputs pre-loaded in memory; CPU relays them.
    CpuViaMemory,
    /// Inputs pre-loaded in memory; the DMA controller streams them.
    Dma,
}

/// Full SoC parameter set.
#[derive(Debug, Clone)]
pub struct SocSpec {
    /// Shared bus.
    pub bus: BusConfig,
    /// System memory.
    pub memory: MemoryConfig,
    /// Processor.
    pub cpu: CpuConfig,
    /// Clock of hardwired accelerators, MHz.
    pub accel_clock_mhz: u64,
    /// STATUS poll interval in CPU cycles.
    pub poll_interval_cycles: u64,
    /// Data movement strategy.
    pub copy_mode: SocCopyMode,
    /// Implementation mapping.
    pub mapping: Mapping,
    /// Fault injection: DRCF context ids whose loads are aborted
    /// mid-reconfiguration (forwarded to [`DrcfConfig::abort_load_of`]).
    pub abort_load_of: Vec<usize>,
    /// Structured-tracing ring-buffer capacity in events. `None` leaves the
    /// recorder disabled (zero overhead on the dispatch hot path).
    pub trace_capacity: Option<usize>,
    /// Coalesce uncontended configuration traffic into analytically timed
    /// bus windows (system-bus config path only). Timing-neutral: every
    /// run observable (makespan, bus/memory statistics, per-master waits)
    /// is bit-identical to the per-burst path; the bus falls back to
    /// per-burst transactions whenever another master contends, a fault
    /// range overlaps, or tracing is enabled.
    pub coalesce_config_traffic: bool,
    /// Pause the run at this simulated offset and capture a deterministic
    /// [`Snapshot`] before resuming to completion ([`run_soc`] stores it in
    /// [`BuiltSoc::snapshot`]). `None` runs straight through.
    pub snapshot_at: Option<SimDuration>,
}

impl Default for SocSpec {
    fn default() -> Self {
        SocSpec {
            bus: BusConfig::default(),
            memory: MemoryConfig {
                base: 0,
                size_words: 0x8000,
                ..MemoryConfig::default()
            },
            cpu: CpuConfig::default(),
            accel_clock_mhz: 100,
            poll_interval_cycles: 50,
            copy_mode: SocCopyMode::CpuDirect,
            mapping: Mapping::AllFixed,
            abort_load_of: vec![],
            trace_capacity: None,
            coalesce_config_traffic: true,
            snapshot_at: None,
        }
    }
}

/// A built, ready-to-run SoC.
pub struct BuiltSoc {
    /// The simulator.
    pub sim: Simulator,
    /// CPU component.
    pub cpu: ComponentId,
    /// Bus component.
    pub bus: ComponentId,
    /// Memory component.
    pub memory: ComponentId,
    /// DRCF component, when the mapping folds accelerators.
    pub drcf: Option<ComponentId>,
    /// Standalone accelerators: (name, id).
    pub standalone: Vec<(String, ComponentId)>,
    /// Accelerator address bindings (all of them, folded or not).
    pub bindings: Vec<AccelBinding>,
    /// Area proxy in equivalent gates (hardwired blocks + fabric).
    pub area_gates: u64,
    /// Per-context parameters of the fabric (empty without a DRCF).
    pub context_params: Vec<ContextParams>,
    /// Power model of the fabric technology (fabric mapping only).
    pub power_model: Option<PowerModel>,
    /// Fabric clock, MHz.
    pub fabric_clock_mhz: u64,
    /// When set, [`run_soc`] pauses here to capture a snapshot.
    pub snapshot_at: Option<SimDuration>,
    /// The snapshot captured by [`run_soc`] at [`Self::snapshot_at`].
    pub snapshot: Option<Snapshot>,
}

/// Warm-fork sweeps (`drcf_dse::runner::sweep_warm_fork`) address the
/// simulator inside a live SoC through this, rewinding it back to the
/// fork point between point evaluations.
impl AsMut<Simulator> for BuiltSoc {
    fn as_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }
}

/// Metrics of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Application makespan.
    pub makespan: SimDuration,
    /// Bus utilization over the run.
    pub bus_utilization: f64,
    /// Words moved across the bus.
    pub bus_words: u64,
    /// Context switches (0 without a fabric).
    pub switches: u64,
    /// Configuration words streamed.
    pub config_words: u64,
    /// Fraction of the run lost to blocking reconfiguration.
    pub reconfig_overhead: f64,
    /// Context scheduler hit rate.
    pub hit_rate: f64,
    /// Fabric energy, mJ (0 without a fabric/power model).
    pub fabric_energy_mj: f64,
    /// Area proxy, equivalent gates.
    pub area_gates: u64,
    /// Bus transactions that errored.
    pub errors: u64,
    /// How the run ended.
    pub ok: bool,
    /// The typed simulation error that ended the run, when `ok` is false.
    pub error: Option<String>,
    /// Per-context reconfiguration timeline (§5.3 step-5 accounting);
    /// empty without a fabric.
    pub timeline: ReconfigTimeline,
    /// Per-master bus grant-latency report.
    pub bus_contention: BusContention,
}

/// Assign consecutive, gap-separated base addresses to the workload's
/// accelerators, starting after the memory.
pub fn assign_bindings(workload: &Workload, spec: &SocSpec) -> Vec<AccelBinding> {
    let mut base = spec.memory.base + spec.memory.size_words as u64;
    // Round up to a friendly boundary.
    base = (base + 0xFF) & !0xFF;
    workload
        .accels
        .iter()
        .map(|a| {
            let b = AccelBinding {
                name: a.name.clone(),
                base,
                window_words: a.window_words,
            };
            let footprint = 3 + a.window_words as u64;
            base = (base + footprint + 0xF) & !0xF;
            b
        })
        .collect()
}

/// Build the SoC for `workload` under `spec`.
///
/// Component id layout: CPU = 0, bus = 1, memory = 2, then the DRCF (if
/// any), then standalone accelerators in workload order.
///
/// Every rejected configuration is a typed [`SimErrorKind::Validation`]
/// error naming the offending ingredient.
pub fn build_soc(workload: &Workload, spec: &SocSpec) -> SimResult<BuiltSoc> {
    fn invalid(msg: String) -> SimError {
        SimError::new(SimErrorKind::Validation, msg)
    }
    let bindings = assign_bindings(workload, spec);
    // The staging area sits in the upper half of system memory; the DMA
    // register block just above the accelerator bindings.
    let staging_base = spec.memory.base + spec.memory.size_words as u64 / 2;
    let dma_base = bindings
        .iter()
        .map(|b| b.base + 3 + b.window_words as u64)
        .max()
        .unwrap_or(spec.memory.base + spec.memory.size_words as u64)
        .div_ceil(0x100)
        * 0x100;
    let copy = match spec.copy_mode {
        SocCopyMode::CpuDirect => CopyMode::CpuDirect,
        SocCopyMode::CpuViaMemory => CopyMode::CpuViaMemory { staging_base },
        SocCopyMode::Dma => CopyMode::Dma {
            dma_base,
            staging_base,
        },
    };
    let (program, preloads) = compile_with(
        &workload.graph,
        &bindings,
        &CompileOptions {
            poll_interval_cycles: spec.poll_interval_cycles,
            copy,
        },
    )
    .map_err(invalid)?;
    let total_staging: u64 = preloads.iter().map(|(_, d)| d.len() as u64).sum();
    if total_staging > spec.memory.size_words as u64 / 2 {
        return Err(invalid(format!(
            "staging data ({total_staging} words) does not fit the staging half of memory"
        )));
    }

    let (fold, tech_geom): (Vec<String>, Option<_>) = match &spec.mapping {
        Mapping::AllFixed => (vec![], None),
        Mapping::Drcf {
            candidates,
            technology,
            geometry,
            config_path,
            scheduler,
            overlap_load_exec,
        } => (
            candidates.clone(),
            Some((
                technology.clone(),
                *geometry,
                config_path.clone(),
                scheduler.clone(),
                *overlap_load_exec,
            )),
        ),
    };
    for c in &fold {
        if !workload.accels.iter().any(|a| &a.name == c) {
            return Err(invalid(format!(
                "candidate '{c}' is not a workload accelerator"
            )));
        }
    }

    let mut sim = Simulator::new();
    if let Some(cap) = spec.trace_capacity {
        sim.enable_observe(cap);
    }
    let cpu_id = 0;
    let bus_id = 1;
    let mem_id = 2;

    // Decode map.
    let mut map = AddressMap::new();
    map.add(
        spec.memory.base,
        spec.memory.base + spec.memory.size_words as u64 - 1,
        mem_id,
    )
    .map_err(invalid)?;
    let drcf_planned = if fold.is_empty() { None } else { Some(3usize) };
    let mut next_id = if drcf_planned.is_some() { 4 } else { 3 };
    // next_id walks past the standalone accelerators; the DMA (if any)
    // takes the id after them — reserve its decode entry at the end.
    let mut standalone_plan = Vec::new();
    for (a, b) in workload.accels.iter().zip(&bindings) {
        let high = b.base + 3 + a.window_words as u64 - 1;
        if fold.contains(&a.name) {
            // One decode entry per folded context: a non-contiguous fold
            // must not swallow the address holes between its members.
            // `fold` is non-empty here, so a DRCF is planned at id 3.
            map.add(b.base, high, drcf_planned.unwrap_or(3))
                .map_err(invalid)?;
        } else {
            map.add(b.base, high, next_id).map_err(invalid)?;
            standalone_plan.push((a.name.clone(), next_id));
            next_id += 1;
        }
    }
    // DMA registers (the DMA component is instantiated last, at next_id).
    if spec.copy_mode == SocCopyMode::Dma {
        map.add(dma_base, dma_base + 3, next_id).map_err(invalid)?;
    }

    // CPU.
    let got = sim.add("cpu", Cpu::new(spec.cpu.clone(), bus_id, program));
    debug_assert_eq!(got, cpu_id);
    let mut system_bus = Bus::new(spec.bus.clone(), map);
    if spec.coalesce_config_traffic
        && spec.memory.poison.is_empty()
        && matches!(
            &spec.mapping,
            Mapping::Drcf {
                config_path: SocConfigPath::SystemBus,
                ..
            }
        )
    {
        // Publishing the memory's deterministic service timing lets the bus
        // accept coalesced configuration trains; without it every offer is
        // rejected and the fabric stays on the per-burst path.
        system_bus.register_slave_timing(mem_id, spec.memory.slave_timing());
    }
    let got = sim.add("system_bus", system_bus);
    debug_assert_eq!(got, bus_id);
    let got = sim.add("memory", Memory::new(spec.memory.clone()));
    debug_assert_eq!(got, mem_id);

    // DRCF.
    let mut drcf_id = None;
    let mut context_params_out = Vec::new();
    let mut power_model = None;
    let mut fabric_clock = spec.accel_clock_mhz;
    let mut area = 0u64;
    if let Some((tech, geometry, config_path, scheduler, overlap)) = tech_geom {
        let folded: Vec<_> = workload
            .accels
            .iter()
            .zip(&bindings)
            .filter(|(a, _)| fold.contains(&a.name))
            .collect();
        let gate_counts: Vec<u64> = folded.iter().map(|(a, _)| a.kind.gate_count()).collect();
        let config_base = spec.memory.base + 0x100;
        let params = plan_contexts(geometry, &tech, &gate_counts, config_base)
            .map_err(|e| invalid(format!("context planning failed: {e}")))?;
        let total_config: u64 = params.iter().map(|p| p.config_size_words).sum();
        if 0x100 + total_config > spec.memory.size_words as u64 {
            return Err(invalid(format!(
                "configuration images ({total_config} words) do not fit the memory"
            )));
        }
        let contexts: Vec<Context> = folded
            .iter()
            .zip(&params)
            .map(|((a, b), p)| {
                Context::new(
                    Box::new(KernelAccelerator::new(
                        &a.name,
                        a.kind.clone(),
                        b.base,
                        a.window_words,
                    )),
                    p.clone(),
                )
            })
            .collect();
        let path = match config_path {
            SocConfigPath::SystemBus => ConfigPath::SystemBus {
                bus: bus_id,
                priority: 3,
                burst: 16,
            },
            SocConfigPath::DirectPort => ConfigPath::DirectPort { memory: mem_id },
            SocConfigPath::FixedRate { words_per_cycle } => ConfigPath::FixedRate {
                words_per_cycle,
                clock_mhz: tech.config_clock_mhz,
            },
        };
        let fabric = Drcf::try_new(
            DrcfConfig {
                clock_mhz: tech.fabric_clock_mhz,
                config_path: path,
                scheduler,
                overlap_load_exec: overlap,
                abort_load_of: spec.abort_load_of.clone(),
                coalesce_config_traffic: spec.coalesce_config_traffic,
            },
            contexts,
        )?;
        let id = sim.add("drcf", fabric);
        debug_assert_eq!(id, 3);
        drcf_id = Some(id);
        context_params_out = params;
        power_model = Some(tech.power);
        fabric_clock = tech.fabric_clock_mhz;
        area += geometry.total_gates;
    }

    // Standalone accelerators.
    let mut standalone = Vec::new();
    for (a, b) in workload.accels.iter().zip(&bindings) {
        if fold.contains(&a.name) {
            continue;
        }
        let id = sim.add(
            &a.name,
            SlaveAdapter::new(
                KernelAccelerator::new(&a.name, a.kind.clone(), b.base, a.window_words),
                spec.accel_clock_mhz,
            ),
        );
        standalone.push((a.name.clone(), id));
        area += a.kind.gate_count();
    }
    debug_assert_eq!(
        standalone.iter().map(|&(_, id)| id).collect::<Vec<_>>(),
        standalone_plan
            .iter()
            .map(|&(_, id)| id)
            .collect::<Vec<_>>()
    );

    // DMA controller (only when the copy mode uses it).
    if spec.copy_mode == SocCopyMode::Dma {
        let id = sim.add(
            "dma",
            drcf_bus::prelude::Dma::new(
                drcf_bus::prelude::DmaConfig {
                    base: dma_base,
                    max_burst: 16,
                    priority: 2,
                },
                bus_id,
            ),
        );
        debug_assert_eq!(id, next_id);
    }

    // Pre-load staging data.
    {
        let mem = sim.get_mut::<Memory>(mem_id);
        for (addr, data) in &preloads {
            mem.load(*addr, data);
        }
    }

    Ok(BuiltSoc {
        sim,
        cpu: cpu_id,
        bus: bus_id,
        memory: mem_id,
        drcf: drcf_id,
        standalone,
        bindings,
        area_gates: area,
        context_params: context_params_out,
        power_model,
        fabric_clock_mhz: fabric_clock,
        snapshot_at: spec.snapshot_at,
        snapshot: None,
    })
}

/// Rebuild the SoC for `workload` under `spec` and restore `snapshot` into
/// it, ready to resume with [`run_soc`].
///
/// The spec must describe the same system the snapshot was taken from
/// (restore validates component names, types, and per-component shape).
/// The rebuilt SoC's own `snapshot_at` is cleared so the resumed run goes
/// straight to completion.
pub fn restore_soc(
    workload: &Workload,
    spec: &SocSpec,
    snapshot: &Snapshot,
) -> SimResult<BuiltSoc> {
    let mut soc = build_soc(workload, spec)?;
    if let Some(diff) = soc.sim.roster_mismatch(snapshot) {
        return Err(SimError::new(
            SimErrorKind::Validation,
            format!(
                "snapshot does not fit the SoC this spec builds — \
                 the workload/spec must match the run that captured it: {diff}"
            ),
        ));
    }
    soc.sim.restore(snapshot)?;
    soc.snapshot_at = None;
    Ok(soc)
}

/// Content fingerprint of a `(workload, spec)` pair — the cache key the
/// snapshot-store layer (`drcf-serve`) files prefix snapshots and sweep
/// records under, so identical scenarios hash identically across
/// processes and clients.
///
/// FNV-1a 64 over the canonical `Debug` rendering of both values: cheap,
/// covers every field, and adding a field changes the key (the safe
/// direction — a stale entry is missed, never wrongly hit). Correctness
/// never rests on this key alone: a store entry is additionally validated
/// against its recorded `state_hash` and [`restore_soc`]'s roster check
/// before anything is restored from it.
pub fn scenario_fingerprint(workload: &Workload, spec: &SocSpec) -> u64 {
    let mut h = Fnv1a::new();
    h.update(format!("{workload:?}").as_bytes());
    h.update(&[0xff]); // unambiguous separator: Debug output never emits 0xff
    h.update(format!("{spec:?}").as_bytes());
    h.finish()
}

/// Run the shared prefix of a sweep exactly once: build the SoC, run it to
/// `at`, and return the snapshot. The tail of the run is discarded — warm
/// forks ([`restore_soc`]) resume it per sweep point.
pub fn snapshot_prefix(
    workload: &Workload,
    spec: &SocSpec,
    at: SimDuration,
) -> SimResult<Snapshot> {
    let mut soc = build_soc(workload, spec)?;
    soc.sim.run_until(SimTime::ZERO + at)?;
    soc.sim.snapshot()
}

/// Run a built SoC to completion and extract the metric record.
///
/// When the SoC was built with [`SocSpec::snapshot_at`], the run pauses at
/// that offset, captures a deterministic snapshot into
/// [`BuiltSoc::snapshot`], and then resumes to completion — the metrics are
/// bit-identical to a straight run.
pub fn run_soc(mut soc: BuiltSoc) -> (RunMetrics, BuiltSoc) {
    let m = run_soc_mut(&mut soc);
    (m, soc)
}

/// By-reference variant of [`run_soc`]: run the SoC to completion in place
/// and return the metric record, leaving the (now finished) SoC usable —
/// warm-fork sweeps keep one live SoC per worker and
/// [`drcf_kernel::kernel::Simulator::rewind`] it back to the fork point
/// between evaluations instead of rebuilding.
pub fn run_soc_mut(soc: &mut BuiltSoc) -> RunMetrics {
    let reason = match soc.snapshot_at {
        Some(at) => soc.sim.run_until(SimTime::ZERO + at).and_then(|_| {
            soc.snapshot = Some(soc.sim.snapshot()?);
            soc.sim.run()
        }),
        None => soc.sim.run(),
    };
    let now = soc.sim.now();
    let mut m = RunMetrics {
        ok: reason == Ok(StopReason::Quiescent),
        error: reason.err().map(|e| e.to_string()),
        area_gates: soc.area_gates,
        ..RunMetrics::default()
    };
    {
        let cpu = soc.sim.get::<Cpu>(soc.cpu);
        m.makespan = cpu.finished_at.unwrap_or(now).since(SimTime::ZERO);
        m.errors = cpu.port.errors;
    }
    {
        let names: Vec<String> = (0..soc.sim.component_count())
            .map(|id| soc.sim.component_name(id).to_string())
            .collect();
        let bus = soc.sim.get::<Bus>(soc.bus);
        m.bus_utilization = bus.stats.utilization(now);
        m.bus_words = bus.stats.words;
        m.bus_contention = bus.stats.contention(|id| {
            names
                .get(id)
                .cloned()
                .unwrap_or_else(|| format!("comp{id}"))
        });
    }
    if let Some(d) = soc.drcf {
        let f = soc.sim.get::<Drcf>(d);
        let names: Vec<&str> = (0..f.context_count()).map(|c| f.context_name(c)).collect();
        m.timeline = ReconfigTimeline::from_stats(&f.stats, &names);
        m.switches = f.stats.switches;
        m.config_words = f.stats.config_words;
        m.reconfig_overhead = f.stats.reconfig_overhead(now);
        m.hit_rate = f.stats.hit_rate();
        if let Some(pm) = &soc.power_model {
            m.fabric_energy_mj =
                energy_of_run(&f.stats, &soc.context_params, pm, soc.fabric_clock_mhz, now)
                    .total_mj();
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{multi_standard, wireless_receiver};

    fn drcf_mapping(candidates: Vec<String>) -> Mapping {
        // Fabric sized to the largest folded kernel (Viterbi, 22K gates):
        // that is the whole point of sharing one reconfigurable block.
        Mapping::Drcf {
            candidates,
            technology: morphosys(),
            geometry: FabricGeometry::new(24_000, 1),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        }
    }

    #[test]
    fn fixed_architecture_runs_wireless_workload() {
        let w = wireless_receiver(2, 32);
        let soc = build_soc(&w, &SocSpec::default()).unwrap();
        assert!(soc.drcf.is_none());
        assert_eq!(soc.standalone.len(), 3);
        let (m, _) = run_soc(soc);
        assert!(m.ok, "{m:?}");
        assert!(m.makespan > SimDuration::ZERO);
        assert_eq!(m.switches, 0);
        assert_eq!(m.errors, 0);
        assert!(m.bus_utilization > 0.0);
    }

    #[test]
    fn drcf_architecture_runs_and_reconfigures() {
        let w = wireless_receiver(2, 32);
        let spec = SocSpec {
            mapping: drcf_mapping(vec!["fir".into(), "fft".into(), "viterbi".into()]),
            ..SocSpec::default()
        };
        let soc = build_soc(&w, &spec).unwrap();
        assert!(soc.drcf.is_some());
        assert!(soc.standalone.is_empty());
        let (m, _) = run_soc(soc);
        assert!(m.ok, "{m:?}");
        assert!(m.switches >= 3, "each kernel loads at least once");
        assert!(m.config_words > 0);
        assert!(m.reconfig_overhead > 0.0);
        assert_eq!(m.errors, 0);
        assert!(m.fabric_energy_mj > 0.0);
    }

    #[test]
    fn drcf_saves_area_but_costs_time() {
        let w = wireless_receiver(2, 32);
        let fixed = run_soc(build_soc(&w, &SocSpec::default()).unwrap()).0;
        let spec = SocSpec {
            mapping: drcf_mapping(vec!["fir".into(), "fft".into(), "viterbi".into()]),
            ..SocSpec::default()
        };
        let folded = run_soc(build_soc(&w, &spec).unwrap()).0;
        assert!(folded.area_gates < fixed.area_gates, "area win");
        assert!(folded.makespan > fixed.makespan, "time-multiplexing cost");
    }

    #[test]
    fn partial_fold_keeps_other_accelerators_standalone() {
        let w = wireless_receiver(1, 32);
        let spec = SocSpec {
            mapping: drcf_mapping(vec!["fir".into(), "fft".into()]),
            ..SocSpec::default()
        };
        let soc = build_soc(&w, &spec).unwrap();
        assert_eq!(soc.standalone.len(), 1);
        assert_eq!(soc.standalone[0].0, "viterbi");
        let (m, _) = run_soc(soc);
        assert!(m.ok);
    }

    #[test]
    fn functional_results_identical_across_mappings() {
        let w = multi_standard(4, 32, 1);
        let read_log = |mapping: Mapping| {
            let spec = SocSpec {
                mapping,
                ..SocSpec::default()
            };
            let soc = build_soc(&w, &spec).unwrap();
            let (m, soc) = run_soc(soc);
            assert!(m.ok);
            soc.sim.get::<Cpu>(0).read_log.clone()
        };
        let fixed = read_log(Mapping::AllFixed);
        let folded = read_log(drcf_mapping(vec![
            "std_a_fir".into(),
            "std_a_fft".into(),
            "std_b_dct".into(),
            "std_b_aes".into(),
        ]));
        assert_eq!(fixed, folded, "bus-visible data must match");
    }

    #[test]
    fn copy_modes_agree_on_readback_data() {
        // The three data-movement strategies must produce identical
        // accelerator results (reads of the accelerator window).
        let w = wireless_receiver(2, 32);
        let window_reads = |mode: SocCopyMode| {
            let spec = SocSpec {
                copy_mode: mode,
                ..SocSpec::default()
            };
            let soc = build_soc(&w, &spec).unwrap();
            let (m, soc) = run_soc(soc);
            assert!(m.ok, "{mode:?}: {m:?}");
            assert_eq!(m.errors, 0, "{mode:?}");
            // Keep only reads of accelerator windows (>= first binding
            // base), excluding staging reads from memory.
            let first_accel = soc.bindings.iter().map(|b| b.base).min().unwrap();
            soc.sim
                .get::<Cpu>(0)
                .read_log
                .iter()
                .filter(|(addr, _)| *addr >= first_accel)
                .map(|(_, d)| d.clone())
                .collect::<Vec<_>>()
        };
        let direct = window_reads(SocCopyMode::CpuDirect);
        let via_mem = window_reads(SocCopyMode::CpuViaMemory);
        let dma = window_reads(SocCopyMode::Dma);
        assert_eq!(direct, via_mem);
        assert_eq!(direct, dma);
    }

    #[test]
    fn dma_mode_actually_uses_the_dma() {
        let w = wireless_receiver(2, 64);
        let spec = SocSpec {
            copy_mode: SocCopyMode::Dma,
            ..SocSpec::default()
        };
        let soc = build_soc(&w, &spec).unwrap();
        let dma_id = soc.sim.component_count() - 1;
        let (m, soc) = run_soc(soc);
        assert!(m.ok);
        let dma = soc.sim.get::<drcf_bus::prelude::Dma>(dma_id);
        assert_eq!(dma.transfers, 6, "one transfer per hardware task");
        assert_eq!(dma.words_moved, 2 * (64 + 64 + 32), "full windows moved");
    }

    #[test]
    fn dma_offload_beats_cpu_relay() {
        // With inputs resident in memory, DMA streaming needs fewer CPU
        // instructions and bus turnarounds than the CPU relay.
        let w = wireless_receiver(3, 64);
        let t = |mode: SocCopyMode| {
            let spec = SocSpec {
                copy_mode: mode,
                ..SocSpec::default()
            };
            let (m, _) = run_soc(build_soc(&w, &spec).unwrap());
            assert!(m.ok);
            m.makespan
        };
        assert!(t(SocCopyMode::Dma) < t(SocCopyMode::CpuViaMemory));
    }

    #[test]
    fn trace_capacity_records_events_and_metrics_carry_reports() {
        let w = wireless_receiver(2, 32);
        let spec = SocSpec {
            mapping: drcf_mapping(vec!["fir".into(), "fft".into(), "viterbi".into()]),
            trace_capacity: Some(1 << 16),
            ..SocSpec::default()
        };
        let soc = build_soc(&w, &spec).unwrap();
        assert!(soc.sim.recorder().is_enabled());
        let (m, soc) = run_soc(soc);
        assert!(m.ok, "{m:?}");
        let events = soc.sim.observe_events();
        assert!(!events.is_empty(), "tracing recorded events");
        // Spans came from all three instrumented layers.
        for cat in [
            TraceCategory::Cpu,
            TraceCategory::Bus,
            TraceCategory::Fabric,
        ] {
            assert!(
                events.iter().any(|e| e.cat == cat),
                "no events in category {cat:?}"
            );
        }
        // The §5.3 timeline rode along on the metrics.
        assert_eq!(m.timeline.rows.len(), 3);
        assert_eq!(m.timeline.switches, m.switches);
        assert!(m.timeline.contexts_loaded >= 3);
        assert!(m.timeline.total_reconfig > SimDuration::ZERO);
        // So did the contention report, with resolved master names.
        assert!(!m.bus_contention.is_empty());
        assert!(
            m.bus_contention.rows.iter().any(|r| r.master == "cpu"),
            "{:?}",
            m.bus_contention.rows
        );
    }

    #[test]
    fn tracing_off_by_default() {
        let w = wireless_receiver(1, 16);
        let soc = build_soc(&w, &SocSpec::default()).unwrap();
        assert!(!soc.sim.recorder().is_enabled());
        let (m, soc) = run_soc(soc);
        assert!(m.ok);
        assert!(soc.sim.observe_events().is_empty());
        assert!(m.timeline.rows.is_empty(), "no fabric, no timeline");
    }

    #[test]
    fn snapshot_mid_run_resumes_bit_identical() {
        let w = wireless_receiver(2, 32);
        let spec = SocSpec {
            mapping: drcf_mapping(vec!["fir".into(), "fft".into(), "viterbi".into()]),
            ..SocSpec::default()
        };
        let (straight, straight_soc) = run_soc(build_soc(&w, &spec).unwrap());
        assert!(straight.ok, "{straight:?}");
        // Pause halfway through the straight makespan — inside the
        // context-switch traffic — and capture a snapshot on the way.
        let at = SimDuration::fs(straight.makespan.as_fs() / 2);
        let snap_spec = SocSpec {
            snapshot_at: Some(at),
            ..spec.clone()
        };
        let (paused, paused_soc) = run_soc(build_soc(&w, &snap_spec).unwrap());
        assert!(paused.ok, "{paused:?}");
        // Pausing to snapshot must not perturb any run observable.
        assert_eq!(paused.makespan, straight.makespan);
        assert_eq!(paused.bus_words, straight.bus_words);
        assert_eq!(paused.switches, straight.switches);
        assert_eq!(paused.config_words, straight.config_words);
        // Resume from the snapshot through the serialized text form.
        let text = paused_soc.snapshot.expect("snapshot captured").to_text();
        let snap = Snapshot::parse(&text).unwrap();
        let (m, resumed_soc) = run_soc(restore_soc(&w, &spec, &snap).unwrap());
        assert!(m.ok, "{m:?}");
        assert_eq!(m.makespan, straight.makespan);
        assert_eq!(m.bus_words, straight.bus_words);
        assert_eq!(m.switches, straight.switches);
        assert_eq!(m.config_words, straight.config_words);
        assert_eq!(
            resumed_soc.sim.get::<Cpu>(0).read_log,
            straight_soc.sim.get::<Cpu>(0).read_log,
            "bus-visible data must match after resume"
        );
        assert_eq!(
            resumed_soc.sim.get::<Drcf>(3).stats,
            straight_soc.sim.get::<Drcf>(3).stats,
            "fabric statistics must match after resume"
        );
    }

    #[test]
    fn restore_rejects_mismatched_spec() {
        let w = wireless_receiver(1, 16);
        let spec = SocSpec {
            snapshot_at: Some(SimDuration::us(1)),
            ..SocSpec::default()
        };
        let (m, soc) = run_soc(build_soc(&w, &spec).unwrap());
        assert!(m.ok);
        let snap = soc.snapshot.expect("snapshot captured");
        // A spec with a different copy mode builds a different component
        // roster; restore must refuse it rather than resume nonsense.
        let other = SocSpec {
            copy_mode: SocCopyMode::Dma,
            snapshot_at: None,
            ..SocSpec::default()
        };
        assert!(restore_soc(&w, &other, &snap).is_err());
    }

    #[test]
    fn unknown_candidate_rejected() {
        let w = wireless_receiver(1, 32);
        let spec = SocSpec {
            mapping: drcf_mapping(vec!["ghost".into()]),
            ..SocSpec::default()
        };
        let Err(err) = build_soc(&w, &spec) else {
            unreachable!("expected build failure")
        };
        assert_eq!(err.kind, SimErrorKind::Validation);
        assert!(err.message.contains("ghost"), "{}", err.message);
    }
}
