//! Workload library.
//!
//! The ADRIATIC project targeted reconfigurable wireless terminals; the
//! paper's motivation (field upgrades, multi-standard operation, feature
//! growth) is exercised here with three representative workloads:
//!
//! * a **wireless receiver** frame pipeline (FIR channel filter → FFT
//!   demodulation → Viterbi decoding),
//! * a **video pipeline** (DCT → motion estimation → AES link encryption),
//! * a **multi-standard terminal** alternating between two standards whose
//!   kernel sets differ — the reconfiguration-churn stress case.
//!
//! Each builder returns the task graph plus the accelerator set it needs;
//! `builder::build_soc` assigns addresses and instantiates hardware.

use crate::accelerator::KernelKind;
use crate::tasks::{TaskGraph, TaskKind};

/// An accelerator requirement of a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelReq {
    /// Instance name referenced by tasks.
    pub name: String,
    /// Kernel.
    pub kind: KernelKind,
    /// Data window size in words.
    pub window_words: usize,
}

/// A workload: its task graph and the hardware it assumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Descriptive name.
    pub name: String,
    /// The application.
    pub graph: TaskGraph,
    /// Required accelerators.
    pub accels: Vec<AccelReq>,
}

fn hw(accel: &str, words: usize, seed: u64) -> TaskKind {
    TaskKind::Hardware {
        accel: accel.into(),
        input_words: words,
        seed,
    }
}

/// Wireless receiver: per frame, SW sync → FIR → FFT → Viterbi → SW MAC.
pub fn wireless_receiver(frames: usize, samples: usize) -> Workload {
    let mut g = TaskGraph::new();
    let mut prev_mac = None;
    for f in 0..frames {
        let seed = 1000 + f as u64;
        let deps0 = prev_mac.map(|t| vec![t]).unwrap_or_default();
        let sync = g.add(
            &format!("sync{f}"),
            TaskKind::Software { cycles: 2_000 },
            deps0,
        );
        let fir = g.add(&format!("fir{f}"), hw("fir", samples, seed), vec![sync]);
        let fft = g.add(&format!("fft{f}"), hw("fft", samples, seed + 1), vec![fir]);
        let vit = g.add(
            &format!("viterbi{f}"),
            hw("viterbi", samples / 2, seed + 2),
            vec![fft],
        );
        let mac = g.add(
            &format!("mac{f}"),
            TaskKind::Software { cycles: 4_000 },
            vec![vit],
        );
        prev_mac = Some(mac);
    }
    Workload {
        name: format!("wireless_receiver[{frames}x{samples}]"),
        graph: g,
        accels: vec![
            AccelReq {
                name: "fir".into(),
                kind: KernelKind::Fir {
                    taps: vec![3, -5, 9, 14, 9, -5, 3, 1],
                },
                window_words: samples.max(16),
            },
            AccelReq {
                name: "fft".into(),
                kind: KernelKind::Fft {
                    points: samples.next_power_of_two(),
                },
                window_words: samples.max(16),
            },
            AccelReq {
                name: "viterbi".into(),
                kind: KernelKind::Viterbi,
                window_words: (samples / 2).max(16),
            },
        ],
    }
}

/// Video pipeline: per frame, SW capture → DCT → motion estimation → AES.
pub fn video_pipeline(frames: usize, block_words: usize) -> Workload {
    let mut g = TaskGraph::new();
    let mut prev = None;
    for f in 0..frames {
        let seed = 5000 + f as u64;
        let deps0 = prev.map(|t| vec![t]).unwrap_or_default();
        let cap = g.add(
            &format!("capture{f}"),
            TaskKind::Software { cycles: 3_000 },
            deps0,
        );
        let dct = g.add(&format!("dct{f}"), hw("dct", block_words, seed), vec![cap]);
        let me = g.add(
            &format!("motion{f}"),
            hw("motion_est", block_words, seed + 1),
            vec![cap],
        );
        let aes = g.add(
            &format!("aes{f}"),
            hw("aes", block_words, seed + 2),
            vec![dct, me],
        );
        prev = Some(aes);
    }
    Workload {
        name: format!("video_pipeline[{frames}x{block_words}]"),
        graph: g,
        accels: vec![
            AccelReq {
                name: "dct".into(),
                kind: KernelKind::Dct,
                window_words: block_words.max(16),
            },
            AccelReq {
                name: "motion_est".into(),
                kind: KernelKind::MotionEst { search_points: 16 },
                window_words: block_words.max(16),
            },
            AccelReq {
                name: "aes".into(),
                kind: KernelKind::Aes { rounds: 10 },
                window_words: block_words.max(16),
            },
        ],
    }
}

/// Multi-standard terminal: alternates standard A (FIR+FFT) and standard B
/// (DCT+AES) every `switch_every` frames — adjacent frames of different
/// standards force context churn on a folded fabric.
pub fn multi_standard(frames: usize, samples: usize, switch_every: usize) -> Workload {
    assert!(switch_every > 0);
    let mut g = TaskGraph::new();
    let mut prev = None;
    for f in 0..frames {
        let seed = 9000 + f as u64;
        let deps0: Vec<_> = prev.map(|t| vec![t]).unwrap_or_default();
        let standard_a = (f / switch_every).is_multiple_of(2);
        let pre = g.add(
            &format!("pre{f}"),
            TaskKind::Software { cycles: 1_500 },
            deps0,
        );
        let last = if standard_a {
            let t1 = g.add(
                &format!("a_fir{f}"),
                hw("std_a_fir", samples, seed),
                vec![pre],
            );
            g.add(
                &format!("a_fft{f}"),
                hw("std_a_fft", samples, seed + 1),
                vec![t1],
            )
        } else {
            let t1 = g.add(
                &format!("b_dct{f}"),
                hw("std_b_dct", samples, seed),
                vec![pre],
            );
            g.add(
                &format!("b_aes{f}"),
                hw("std_b_aes", samples, seed + 1),
                vec![t1],
            )
        };
        prev = Some(last);
    }
    Workload {
        name: format!("multi_standard[{frames}x{samples}/{switch_every}]"),
        graph: g,
        accels: vec![
            AccelReq {
                name: "std_a_fir".into(),
                kind: KernelKind::Fir {
                    taps: vec![1, 4, 6, 4, 1],
                },
                window_words: samples.max(16),
            },
            AccelReq {
                name: "std_a_fft".into(),
                kind: KernelKind::Fft {
                    points: samples.next_power_of_two(),
                },
                window_words: samples.max(16),
            },
            AccelReq {
                name: "std_b_dct".into(),
                kind: KernelKind::Dct,
                window_words: samples.max(16),
            },
            AccelReq {
                name: "std_b_aes".into(),
                kind: KernelKind::Aes { rounds: 12 },
                window_words: samples.max(16),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wireless_receiver_shape() {
        let w = wireless_receiver(3, 64);
        assert_eq!(w.graph.tasks.len(), 3 * 5);
        assert!(w.graph.topo_order().is_ok());
        assert_eq!(w.accels.len(), 3);
        assert_eq!(
            w.graph.hardware_blocks(),
            vec!["fir".to_string(), "fft".to_string(), "viterbi".to_string()]
        );
    }

    #[test]
    fn video_pipeline_has_parallel_branches() {
        let w = video_pipeline(2, 64);
        assert!(w.graph.topo_order().is_ok());
        // DCT and motion estimation share a dependency (capture) but not on
        // each other: both depend only on the capture task.
        let dct = w.graph.tasks.iter().find(|t| t.name == "dct0").unwrap();
        let me = w.graph.tasks.iter().find(|t| t.name == "motion0").unwrap();
        assert_eq!(dct.deps, me.deps);
    }

    #[test]
    fn multi_standard_alternates_blocks() {
        let w = multi_standard(4, 32, 1);
        assert!(w.graph.topo_order().is_ok());
        let blocks = w.graph.hardware_blocks();
        assert!(blocks.contains(&"std_a_fir".to_string()));
        assert!(blocks.contains(&"std_b_aes".to_string()));
        // Frame 0 uses standard A, frame 1 standard B.
        assert!(w.graph.tasks.iter().any(|t| t.name == "a_fir0"));
        assert!(w.graph.tasks.iter().any(|t| t.name == "b_dct1"));
        assert!(!w.graph.tasks.iter().any(|t| t.name == "a_fir1"));
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(wireless_receiver(2, 32), wireless_receiver(2, 32));
        assert_eq!(video_pipeline(2, 32), video_pipeline(2, 32));
        assert_eq!(multi_standard(2, 32, 1), multi_standard(2, 32, 1));
    }
}
