//! Abstract processor model.
//!
//! The CPU executes a linear program of timed computation, bus accesses and
//! status polling — the "software functionality" boxes of the paper's
//! Fig. 1 architectures. It is deliberately instruction-set-agnostic: the
//! system-level flow only needs the bus traffic and timing software
//! generates, not its semantics.

use drcf_bus::prelude::*;
use drcf_bus::snapshot::{time_json, time_of, words_json, words_of};
use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

/// One CPU program step.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Busy-compute locally for the given number of CPU cycles.
    Compute(u64),
    /// Burst-read `burst` words from `addr`; data lands in the read log.
    Read {
        /// Start address.
        addr: Addr,
        /// Words.
        burst: usize,
    },
    /// Burst-write literal data to `addr`.
    Write {
        /// Start address.
        addr: Addr,
        /// Payload.
        data: Vec<Word>,
    },
    /// Read `addr` until it equals `expect`, waiting `interval_cycles`
    /// between attempts (device status polling).
    Poll {
        /// Polled address.
        addr: Addr,
        /// Value that terminates the poll.
        expect: Word,
        /// CPU cycles between polls.
        interval_cycles: u64,
    },
    /// Sleep until a DMA completion notification ([`DmaDone`]) arrives —
    /// interrupt-style synchronization with an offloaded transfer started
    /// by writing `ctrl::START_IRQ` to the DMA's CTRL register.
    WaitDmaIrq,
}

/// CPU parameters.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Core clock, MHz.
    pub clock_mhz: u64,
    /// Bus priority of CPU transactions.
    pub priority: u8,
    /// Fixed issue cost per program step, CPU cycles (fetch/decode/loop
    /// overhead).
    pub issue_cycles: u64,
    /// Additional CPU cycles per word marshalled by `Read`/`Write` steps
    /// (load + store + pointer increment + loop branch of software data
    /// movement — the cost DMA offload removes).
    pub marshal_cycles_per_word: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            clock_mhz: 300, // the paper's PowerPC 405 runs at 300+ MHz
            priority: 1,
            issue_cycles: 2,
            marshal_cycles_per_word: 4,
        }
    }
}

/// Execution statistics of one CPU.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Instructions retired.
    pub retired: u64,
    /// Time spent in `Compute` steps.
    pub compute_time: SimDuration,
    /// Poll attempts issued.
    pub polls: u64,
}

const TAG_COMPUTE_DONE: u64 = 1;
const TAG_POLL_AGAIN: u64 = 2;
const TAG_ISSUE_DONE: u64 = 3;

enum CpuState {
    Ready,
    /// Paying the issue/marshalling cost of the instruction at `pc`.
    Issuing,
    Computing,
    WaitingBus,
    Polling {
        addr: Addr,
        expect: Word,
        interval_cycles: u64,
    },
    /// Sleeping until a DMA completion message arrives.
    WaitingIrq,
    Finished,
}

/// The processor component.
pub struct Cpu {
    cfg: CpuConfig,
    /// Master port to the system bus.
    pub port: MasterPort,
    program: Vec<Instr>,
    pc: usize,
    state: CpuState,
    /// Data returned by `Read` steps, in program order.
    pub read_log: Vec<(Addr, Vec<Word>)>,
    /// When the program finished.
    pub finished_at: Option<SimTime>,
    /// DMA completion notifications received before the matching
    /// `WaitDmaIrq` executed.
    pending_irqs: u32,
    /// Statistics.
    pub stats: CpuStats,
}

impl Cpu {
    /// New CPU mastering `bus`, running `program`.
    pub fn new(cfg: CpuConfig, bus: ComponentId, program: Vec<Instr>) -> Self {
        let priority = cfg.priority;
        Cpu {
            cfg,
            port: MasterPort::new(bus, priority),
            program,
            pc: 0,
            state: CpuState::Ready,
            read_log: Vec::new(),
            finished_at: None,
            pending_irqs: 0,
            stats: CpuStats::default(),
        }
    }

    /// True once the whole program has retired.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, CpuState::Finished)
    }

    /// Current core clock, MHz.
    pub fn clock_mhz(&self) -> u64 {
        self.cfg.clock_mhz
    }

    /// Retune the core clock on a *live* CPU: every cycle count converted
    /// to time from here on uses the new frequency. This is the what-if
    /// knob sweep services vary per warm fork without rebuilding the SoC —
    /// the clock is static configuration, not snapshot state, so a rewind
    /// leaves it alone and each fork must set it explicitly.
    pub fn set_clock_mhz(&mut self, mhz: u64) {
        self.cfg.clock_mhz = mhz.max(1);
    }

    fn cycles(&self, c: u64) -> SimDuration {
        SimDuration::cycles_at_mhz(c, self.cfg.clock_mhz)
    }

    fn step(&mut self, api: &mut Api<'_>) {
        api.trace_counter(TraceCategory::Cpu, "retired", self.stats.retired);
        let Some(instr) = self.program.get(self.pc) else {
            self.state = CpuState::Finished;
            self.finished_at = Some(api.now());
            api.obligation_end();
            return;
        };
        // Issue cost: fixed dispatch plus per-word marshalling for bus
        // data movement.
        let words = match instr {
            Instr::Read { burst, .. } => *burst as u64,
            Instr::Write { data, .. } => data.len() as u64,
            _ => 0,
        };
        let cost = self.cfg.issue_cycles + self.cfg.marshal_cycles_per_word * words;
        if cost > 0 {
            self.state = CpuState::Issuing;
            let d = self.cycles(cost);
            api.timer_in(d, TAG_ISSUE_DONE);
            return;
        }
        self.exec_current(api);
    }

    fn exec_current(&mut self, api: &mut Api<'_>) {
        let Some(instr) = self.program.get(self.pc) else {
            unreachable!("exec_current beyond program end");
        };
        match instr.clone() {
            Instr::Compute(cycles) => {
                self.pc += 1;
                self.stats.retired += 1;
                let d = self.cycles(cycles);
                self.stats.compute_time += d;
                self.state = CpuState::Computing;
                api.trace_begin(TraceCategory::Cpu, "compute", cycles);
                api.timer_in(d, TAG_COMPUTE_DONE);
            }
            Instr::Read { addr, burst } => {
                self.pc += 1;
                self.stats.retired += 1;
                self.state = CpuState::WaitingBus;
                api.trace_begin(TraceCategory::Cpu, "bus_access", addr);
                self.port.read(api, addr, burst);
            }
            Instr::Write { addr, data } => {
                self.pc += 1;
                self.stats.retired += 1;
                self.state = CpuState::WaitingBus;
                api.trace_begin(TraceCategory::Cpu, "bus_access", addr);
                self.port.write(api, addr, data);
            }
            Instr::Poll {
                addr,
                expect,
                interval_cycles,
            } => {
                // Retired when it completes, not per attempt.
                self.state = CpuState::Polling {
                    addr,
                    expect,
                    interval_cycles,
                };
                self.stats.polls += 1;
                api.trace_instant(TraceCategory::Cpu, "poll", addr);
                self.port.read(api, addr, 1);
            }
            Instr::WaitDmaIrq => {
                if self.pending_irqs > 0 {
                    self.pending_irqs -= 1;
                    self.pc += 1;
                    self.stats.retired += 1;
                    self.state = CpuState::Ready;
                    self.step(api);
                } else {
                    self.state = CpuState::WaitingIrq;
                }
            }
        }
    }

    fn on_response(&mut self, api: &mut Api<'_>, resp: BusResponse) {
        match &self.state {
            CpuState::WaitingBus => {
                api.trace_end(TraceCategory::Cpu, "bus_access", resp.addr);
                if !resp.is_ok() {
                    api.raise(
                        SimErrorKind::BusError,
                        format!(
                            "CPU transaction failed at {:#x}: {:?}",
                            resp.addr, resp.status
                        ),
                    );
                }
                if resp.op == BusOp::Read {
                    self.read_log.push((resp.addr, resp.data));
                }
                self.state = CpuState::Ready;
                self.step(api);
            }
            CpuState::Polling { expect, .. } => {
                let done = resp.is_ok() && resp.data.first() == Some(expect);
                if done {
                    self.pc += 1;
                    self.stats.retired += 1;
                    self.state = CpuState::Ready;
                    self.step(api);
                } else if !resp.is_ok() {
                    // An error response is a fault, not "not ready yet":
                    // retrying would poll a dead device forever and hang
                    // the simulation. Halt the program instead; the typed
                    // error makes the run fail while the rest of the
                    // system drains.
                    api.raise(
                        SimErrorKind::BusError,
                        format!(
                            "CPU poll at {:#x} failed ({:?}); halting program",
                            resp.addr, resp.status
                        ),
                    );
                    self.state = CpuState::Finished;
                    api.obligation_end();
                } else {
                    let CpuState::Polling {
                        interval_cycles, ..
                    } = self.state
                    else {
                        unreachable!()
                    };
                    let d = self.cycles(interval_cycles.max(1));
                    api.timer_in(d, TAG_POLL_AGAIN);
                }
            }
            _ => {}
        }
    }
}

impl Cpu {
    fn state_json(&self) -> Json {
        match &self.state {
            CpuState::Ready => Json::obj().with("kind", "ready".into()),
            CpuState::Issuing => Json::obj().with("kind", "issuing".into()),
            CpuState::Computing => Json::obj().with("kind", "computing".into()),
            CpuState::WaitingBus => Json::obj().with("kind", "waiting_bus".into()),
            CpuState::Polling {
                addr,
                expect,
                interval_cycles,
            } => Json::obj()
                .with("kind", "polling".into())
                .with("addr", ju64(*addr))
                .with("expect", ju64(*expect))
                .with("interval_cycles", ju64(*interval_cycles)),
            CpuState::WaitingIrq => Json::obj().with("kind", "waiting_irq".into()),
            CpuState::Finished => Json::obj().with("kind", "finished".into()),
        }
    }

    fn restore_cpu_state(&mut self, state: &Json) -> SimResult<()> {
        let j = snap::field(state, "state")?;
        self.state = match snap::str_field(j, "kind")? {
            "ready" => CpuState::Ready,
            "issuing" => CpuState::Issuing,
            "computing" => CpuState::Computing,
            "waiting_bus" => CpuState::WaitingBus,
            "polling" => CpuState::Polling {
                addr: snap::u64_field(j, "addr")?,
                expect: snap::u64_field(j, "expect")?,
                interval_cycles: snap::u64_field(j, "interval_cycles")?,
            },
            "waiting_irq" => CpuState::WaitingIrq,
            "finished" => CpuState::Finished,
            other => return Err(snap::err(format!("unknown CPU state `{other}`"))),
        };
        Ok(())
    }

    fn read_log_entry(e: &Json) -> SimResult<(Addr, Vec<Word>)> {
        let pair = e
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| snap::err("malformed read-log entry"))?;
        let addr = drcf_kernel::json::ju64_of(&pair[0])
            .ok_or_else(|| snap::err("read-log address is not a u64"))?;
        let data = words_of(&pair[1]).ok_or_else(|| snap::err("malformed read-log data"))?;
        Ok((addr, data))
    }

    /// Everything but the read log — shared by [`Component::restore`] and
    /// [`Component::restore_live`].
    fn restore_frame(&mut self, state: &Json) -> SimResult<()> {
        self.port.restore_json(snap::field(state, "port")?)?;
        self.pc = snap::usize_field(state, "pc")?;
        self.restore_cpu_state(state)?;
        self.finished_at = match snap::field(state, "finished_at")? {
            Json::Null => None,
            j => Some(time_of(j).ok_or_else(|| snap::err("bad finish time"))?),
        };
        self.pending_irqs = u32::try_from(snap::u64_field(state, "pending_irqs")?)
            .map_err(|_| snap::err("pending_irqs out of range"))?;
        self.stats.retired = snap::u64_field(state, "retired")?;
        self.stats.compute_time = SimDuration::fs(snap::u64_field(state, "compute_time")?);
        self.stats.polls = snap::u64_field(state, "polls")?;
        Ok(())
    }
}

impl Component for Cpu {
    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("port", self.port.snapshot_json())
            .with("pc", ju64(self.pc as u64))
            .with("state", self.state_json())
            .with(
                "read_log",
                Json::Arr(
                    self.read_log
                        .iter()
                        .map(|(addr, data)| Json::Arr(vec![ju64(*addr), words_json(data)]))
                        .collect(),
                ),
            )
            .with(
                "finished_at",
                self.finished_at.map_or(Json::Null, time_json),
            )
            .with("pending_irqs", ju64(self.pending_irqs as u64))
            .with("retired", ju64(self.stats.retired))
            .with("compute_time", ju64(self.stats.compute_time.as_fs()))
            .with("polls", ju64(self.stats.polls)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.restore_frame(state)?;
        self.read_log.clear();
        for e in snap::arr_field(state, "read_log")? {
            self.read_log.push(Self::read_log_entry(e)?);
        }
        Ok(())
    }

    fn restore_live(&mut self, state: &Json) -> SimResult<()> {
        self.restore_frame(state)?;
        // The read log is grow-only along a run, and a live restore's
        // document lies on the same timeline as the live state (lineage
        // contract), so the shared prefix is already in place: truncate to
        // an ancestor's length, or parse only a descendant's new suffix —
        // O(difference) instead of O(log length).
        let log = snap::arr_field(state, "read_log")?;
        if log.len() <= self.read_log.len() {
            self.read_log.truncate(log.len());
        } else {
            for e in &log[self.read_log.len()..] {
                self.read_log.push(Self::read_log_entry(e)?);
            }
        }
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => {
                api.obligation_begin();
                self.step(api);
            }
            MsgKind::Timer(TAG_COMPUTE_DONE) => {
                api.trace_end(TraceCategory::Cpu, "compute", 0);
                self.state = CpuState::Ready;
                self.step(api);
            }
            MsgKind::Timer(TAG_ISSUE_DONE) => {
                debug_assert!(matches!(self.state, CpuState::Issuing));
                self.exec_current(api);
            }
            MsgKind::Timer(TAG_POLL_AGAIN) => {
                if let CpuState::Polling { addr, .. } = self.state {
                    self.stats.polls += 1;
                    api.trace_instant(TraceCategory::Cpu, "poll", addr);
                    self.port.read(api, addr, 1);
                }
            }
            _ => {
                let msg = match self.port.take_response(api, msg) {
                    Ok(resp) => {
                        self.on_response(api, resp);
                        return;
                    }
                    Err(m) => m,
                };
                if msg.user_ref::<DmaDone>().is_some() {
                    if matches!(self.state, CpuState::WaitingIrq) {
                        self.pc += 1;
                        self.stats.retired += 1;
                        self.state = CpuState::Ready;
                        self.step(api);
                    } else {
                        self.pending_irqs += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_bus::bus::{Bus, BusConfig};
    use drcf_bus::map::AddressMap;
    use drcf_bus::memory::{Memory, MemoryConfig};

    fn system(program: Vec<Instr>) -> (Simulator, ComponentId) {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        map.add(0x0, 0xFFF, 2).unwrap();
        let cpu = sim.add("cpu", Cpu::new(CpuConfig::default(), 1, program));
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "mem",
            Memory::new(MemoryConfig {
                size_words: 0x1000,
                ..MemoryConfig::default()
            }),
        );
        (sim, cpu)
    }

    #[test]
    fn program_runs_to_completion() {
        let (mut sim, cpu) = system(vec![
            Instr::Compute(100),
            Instr::Write {
                addr: 0x10,
                data: vec![1, 2, 3],
            },
            Instr::Read {
                addr: 0x10,
                burst: 3,
            },
        ]);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let c = sim.get::<Cpu>(cpu);
        assert!(c.is_finished());
        assert_eq!(c.stats.retired, 3);
        assert_eq!(c.read_log.len(), 1);
        assert_eq!(c.read_log[0].1, vec![1, 2, 3]);
        assert!(c.finished_at.is_some());
        // 100 cycles at 300 MHz = 333.33 ns of compute.
        assert_eq!(c.stats.compute_time, SimDuration::cycles_at_mhz(100, 300));
    }

    #[test]
    fn poll_waits_for_value() {
        // Poll a location that a second master (here: preloaded memory)
        // already satisfies vs one that is satisfied later. We preload and
        // poll — single attempt.
        let (mut sim, cpu) = system(vec![
            Instr::Write {
                addr: 0x20,
                data: vec![7],
            },
            Instr::Poll {
                addr: 0x20,
                expect: 7,
                interval_cycles: 10,
            },
        ]);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let c = sim.get::<Cpu>(cpu);
        assert!(c.is_finished());
        assert_eq!(c.stats.polls, 1);
    }

    #[test]
    fn poll_on_error_response_halts_instead_of_hanging() {
        // Polling an unmapped address gets a decode error back: the CPU
        // must abandon the poll (a dead device never becomes ready) and
        // the run must fail with a typed bus error.
        let (mut sim, cpu) = system(vec![Instr::Poll {
            addr: 0xDEAD_0000,
            expect: 1,
            interval_cycles: 10,
        }]);
        let err = sim.run().expect_err("failed poll must fail the run");
        assert_eq!(err.kind, SimErrorKind::BusError, "{err}");
        assert!(err.to_string().contains("halting program"), "{err}");
        let c = sim.get::<Cpu>(cpu);
        assert_eq!(c.stats.polls, 1, "no retries against a dead device");
        assert!(c.finished_at.is_none(), "the program did not complete");
    }

    #[test]
    fn poll_retries_until_satisfied() {
        // A helper component flips the flag after 2us.
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        map.add(0x0, 0xFFF, 2).unwrap();
        let cpu = sim.add(
            "cpu",
            Cpu::new(
                CpuConfig::default(),
                1,
                vec![Instr::Poll {
                    addr: 0x30,
                    expect: 1,
                    interval_cycles: 50,
                }],
            ),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "mem",
            Memory::new(MemoryConfig {
                size_words: 0x1000,
                ..MemoryConfig::default()
            }),
        );
        sim.add(
            "flipper",
            FnComponent::new(|api, msg| match msg.kind {
                MsgKind::Start => {
                    api.obligation_begin();
                    api.timer_in(SimDuration::us(2), 0);
                }
                MsgKind::Timer(_) => {
                    // Write directly into the memory via a one-off port.
                    let mut port = MasterPort::new(1, 5);
                    port.write(api, 0x30, vec![1]);
                    // This throwaway port leaks its obligation bookkeeping,
                    // so balance it manually.
                    api.obligation_end(); // for the port's own begin
                    api.obligation_end(); // for ours at Start
                }
                _ => {}
            }),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let c = sim.get::<Cpu>(cpu);
        assert!(c.is_finished());
        assert!(c.stats.polls > 5, "polled {} times", c.stats.polls);
        assert!(c.finished_at.unwrap() >= SimTime::ZERO + SimDuration::us(2));
    }

    #[test]
    fn empty_program_finishes_immediately() {
        let (mut sim, cpu) = system(vec![]);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert!(sim.get::<Cpu>(cpu).is_finished());
        assert_eq!(sim.get::<Cpu>(cpu).stats.retired, 0);
    }
}
