//! Sharded multi-fabric SoC model.
//!
//! The paper's architectures (Fig. 1) are single-fabric: one CPU, one bus,
//! one DRCF. Scaling the methodology to many reconfigurable fabrics — one
//! per radio standard, say — multiplies simulation work linearly while the
//! single-threaded kernel still occupies one core. This module maps a
//! multi-fabric topology onto the kernel's sharded executor
//! ([`drcf_kernel::shard`]): each fabric tile is a logical process with
//! its own `Simulator`, tiles exchange traffic over bridge-latency links
//! (the conservative lookahead comes from
//! [`BridgeConfig::min_latency`](drcf_bus::prelude::BridgeConfig)), and
//! results are bit-identical across shard counts by construction.
//!
//! [`ShardedSocSpec`] is deliberately parametric rather than a fixed
//! workload: tile count, per-tick work, emission cadence, link latency and
//! a fault window are all knobs, which is what the DSE layer and the
//! `sharded_soc` bench sweep over. The `DRCF_SHARDS` environment variable
//! overrides the shard count at run time (CI uses it for a 2-shard smoke
//! pass over the whole suite).

use std::sync::Arc;

use drcf_bus::prelude::BridgeConfig;
use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::u64_field;

use crate::builder::RunMetrics;
use crate::partition::{partition_topology, Part, SocGraph};

/// Environment variable overriding [`ShardedSocSpec::shards`] at run time.
pub const SHARDS_ENV: &str = "DRCF_SHARDS";

/// Parse the [`SHARDS_ENV`] override. Unset means no override; a positive
/// integer overrides the shard count; anything else is a typed
/// configuration error — a malformed `DRCF_SHARDS=two` must not silently
/// fall back to the spec's default.
pub fn shards_env_override() -> SimResult<Option<usize>> {
    match std::env::var(SHARDS_ENV) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(SimError::new(
            SimErrorKind::Validation,
            format!("{SHARDS_ENV} is not valid unicode"),
        )),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(SimError::new(
                SimErrorKind::Validation,
                format!("{SHARDS_ENV}={v:?} is not a positive shard count"),
            )),
        },
    }
}

/// One reconfigurable fabric tile, modeled as a self-clocked component:
/// every clock tick it performs `work` units of local computation and
/// `fanout` delta-cycle dispatches (standing in for the context scheduler
/// and accelerator activity inside the tile), and every `emit_every`
/// ticks it emits a transaction to the next tile over the bridge link.
/// Packets arriving inside the fault window are dropped, modeling the
/// transient configuration faults of the paper's §5.4 discussion.
///
/// The tile is snapshot-capable, so per-slice `state_hash()` covers it.
pub struct FabricTile {
    id: u64,
    egress: Vec<ComponentId>,
    period: SimDuration,
    work: u64,
    fanout: u64,
    emit_every: u64,
    fault: Option<(SimTime, SimTime)>,
    ticks: u64,
    received: u64,
    dropped: u64,
    checksum: u64,
}

impl FabricTile {
    fn mix(&mut self, v: u64) {
        self.checksum = self
            .checksum
            .rotate_left(13)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(v);
    }
}

const TAG_TICK: u64 = 0;
const TAG_WORK: u64 = 1;

impl Component for FabricTile {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => api.timer_in(self.period, TAG_TICK),
            MsgKind::Timer(TAG_TICK) => {
                self.ticks += 1;
                for u in 0..self.work {
                    self.mix(self.ticks ^ (u << 32));
                }
                let me = api.me();
                for _ in 0..self.fanout {
                    api.send(me, WorkPulse, Delay::Delta);
                }
                if self.emit_every > 0 && self.ticks.is_multiple_of(self.emit_every) {
                    for &e in &self.egress {
                        api.send(
                            e,
                            LinkMsg {
                                tag: self.ticks,
                                words: vec![self.id, self.checksum & 0xffff_ffff],
                            },
                            Delay::Delta,
                        );
                    }
                }
                api.timer_in(self.period, TAG_TICK);
            }
            MsgKind::Timer(_) => {}
            _ => {
                let msg = match msg.user::<WorkPulse>() {
                    Ok(_) => {
                        self.mix(TAG_WORK);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok(p) = msg.user::<LinkPacket>() {
                    let now = api.now();
                    if let Some((s, e)) = self.fault {
                        if now >= s && now < e {
                            self.dropped += 1;
                            return;
                        }
                    }
                    self.received += 1;
                    self.mix(p.seq);
                    self.mix(p.msg.tag);
                    for w in &p.msg.words {
                        self.mix(*w);
                    }
                }
            }
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("ticks", ju64(self.ticks))
            .with("received", ju64(self.received))
            .with("dropped", ju64(self.dropped))
            .with("checksum", ju64(self.checksum)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.ticks = u64_field(state, "ticks")?;
        self.received = u64_field(state, "received")?;
        self.dropped = u64_field(state, "dropped")?;
        self.checksum = u64_field(state, "checksum")?;
        Ok(())
    }
}

/// Intra-tile delta-cycle work marker.
struct WorkPulse;

/// A parametric multi-fabric topology: `tiles` fabric tiles in a ring,
/// each pair joined by a bridge-latency link.
#[derive(Debug, Clone)]
pub struct ShardedSocSpec {
    /// Fabric tiles (logical processes).
    pub tiles: usize,
    /// Worker shards; overridden by the `DRCF_SHARDS` env var at run time.
    pub shards: usize,
    /// Tile clock, MHz.
    pub clock_mhz: u64,
    /// Arithmetic work units per tick.
    pub work: u64,
    /// Delta-cycle dispatches per tick (kernel load).
    pub fanout: u64,
    /// Ticks between cross-tile emissions.
    pub emit_every: u64,
    /// Cross-tile link latency — the conservative lookahead. Defaults to
    /// the forwarding latency of a 100-cycle bridge clocked at 50 MHz.
    pub link_latency: SimDuration,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Packets arriving in this window are dropped by the receiving tile.
    pub fault_window: Option<(SimTime, SimTime)>,
    /// Record a per-tile state hash at every synchronization window.
    pub hash_slices: bool,
    /// Enable each LP's event recorder with this ring-buffer capacity so
    /// the run can be merged into one cross-LP trace document
    /// ([`drcf_dse::trace::chrome_trace_sharded`] — named by path here to
    /// avoid a dependency cycle). `None` leaves tracing off.
    pub trace_capacity: Option<usize>,
}

impl Default for ShardedSocSpec {
    fn default() -> Self {
        let bridge = BridgeConfig {
            forward_cycles: 100,
            return_cycles: 100,
            clock_mhz: 50,
            priority: 1,
        };
        ShardedSocSpec {
            tiles: 4,
            shards: 1,
            clock_mhz: 100,
            work: 8,
            fanout: 4,
            emit_every: 4,
            link_latency: bridge.min_latency(),
            horizon: SimDuration::us(200),
            fault_window: None,
            hash_slices: false,
            trace_capacity: None,
        }
    }
}

impl ShardedSocSpec {
    /// The shard count actually used by [`run`](Self::run): the
    /// `DRCF_SHARDS` env var when set (a malformed value is a typed
    /// error — see [`shards_env_override`]), else `self.shards`.
    pub fn effective_shards(&self) -> SimResult<usize> {
        Ok(shards_env_override()?.unwrap_or(self.shards))
    }

    /// Express the ring as a partitionable [`SocGraph`]: one bus-less
    /// segment per tile, joined by bridge-latency streams. All topology
    /// construction lives in [`crate::partition`]; this spec is a preset.
    pub fn graph(&self) -> SocGraph {
        let mut g = SocGraph::new();
        let period = SimDuration::cycles_at_mhz(1, self.clock_mhz);
        for i in 0..self.tiles {
            let seg = g.add_segment(&format!("tile{i}"), None);
            let (work, fanout, emit_every, fault) =
                (self.work, self.fanout, self.emit_every, self.fault_window);
            g.add_part(
                seg,
                Part::new(&format!("fabric{i}"), move |sim, ctx| {
                    Ok(sim.add(
                        &format!("fabric{i}"),
                        FabricTile {
                            id: i as u64,
                            egress: ctx.stream_egress(),
                            period,
                            work,
                            fanout,
                            emit_every,
                            fault,
                            ticks: 0,
                            received: 0,
                            dropped: 0,
                            checksum: 0,
                        },
                    ))
                })
                .with_probe(|sim, id| {
                    let t = sim.get::<FabricTile>(id);
                    Ok(Json::obj()
                        .with("ticks", ju64(t.ticks))
                        .with("received", ju64(t.received))
                        .with("dropped", ju64(t.dropped))
                        .with("checksum", ju64(t.checksum)))
                }),
            );
        }
        if self.tiles > 1 {
            for i in 0..self.tiles {
                g.add_stream(
                    &format!("bridge{i}"),
                    (i, 0),
                    ((i + 1) % self.tiles, 0),
                    self.link_latency,
                );
            }
        }
        g
    }

    /// Build the shard topology — a ring of [`FabricTile`] LPs — through
    /// the general partitioner.
    pub fn topology(&self) -> SimResult<ShardTopology> {
        let (topo, _) = partition_topology(&Arc::new(self.graph()))?;
        Ok(topo)
    }

    /// Run with the effective shard count (env-overridable).
    pub fn run(&self) -> SimResult<ShardedSocRun> {
        self.run_with_shards(self.effective_shards()?)
    }

    /// Run with an explicit shard count, ignoring `DRCF_SHARDS` — this is
    /// how oracle comparisons pin the single-threaded reference.
    pub fn run_with_shards(&self, shards: usize) -> SimResult<ShardedSocRun> {
        let mut cfg = ShardConfig::to(SimTime::ZERO + self.horizon)
            .shards(shards)
            .hash_slices(self.hash_slices);
        if let Some(cap) = self.trace_capacity {
            cfg = cfg.trace(cap);
        }
        let report = run_sharded(self.topology()?, &cfg)?;
        let metrics = self.metrics_of(&report);
        Ok(ShardedSocRun { report, metrics })
    }

    /// Distill a [`ShardRunReport`] into the workspace's common
    /// [`RunMetrics`] currency so DSE objectives can consume sharded runs.
    /// Only the fields a tile topology actually produces are populated;
    /// fabric-scheduler metrics stay at their defaults.
    fn metrics_of(&self, report: &ShardRunReport) -> RunMetrics {
        let bus_words: u64 = report.lps.iter().map(|lp| tile_stat(lp, "received")).sum();
        RunMetrics {
            makespan: self.horizon,
            bus_words,
            ok: true,
            ..RunMetrics::default()
        }
    }
}

/// Sum a [`FabricTile`] counter across the tile parts of an LP's probe
/// (the partitioner nests part probes under `"parts"`, keyed by name).
pub fn tile_stat(lp: &LpReport, key: &str) -> u64 {
    let Some(parts) = lp.probe.get("parts").and_then(Json::as_obj) else {
        return 0;
    };
    parts
        .iter()
        .map(|(_, p)| p.get(key).and_then(drcf_kernel::json::ju64_of).unwrap_or(0))
        .sum()
}

/// A completed sharded run: the full per-LP report plus the distilled
/// [`RunMetrics`].
#[derive(Debug, Clone)]
pub struct ShardedSocRun {
    /// Per-tile reports, merge statistics, wall-clock time.
    pub report: ShardRunReport,
    /// The DSE-facing summary.
    pub metrics: RunMetrics,
}

impl ShardedSocRun {
    /// Total kernel events dispatched across all tiles.
    pub fn events(&self) -> u64 {
        self.report.total_dispatched()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn small() -> ShardedSocSpec {
        ShardedSocSpec {
            tiles: 4,
            horizon: SimDuration::us(40),
            hash_slices: true,
            ..ShardedSocSpec::default()
        }
    }

    #[test]
    fn shard_counts_agree_with_oracle() {
        let spec = small();
        let oracle = spec.run_with_shards(1).expect("oracle");
        assert!(oracle.events() > 1_000, "events: {}", oracle.events());
        assert!(oracle.metrics.bus_words > 0);
        for shards in [2usize, 4] {
            let par = spec.run_with_shards(shards).expect("parallel");
            assert!(
                oracle.report.same_outcome(&par.report),
                "diverged at {:?}",
                oracle.report.first_divergence(&par.report)
            );
            assert_eq!(oracle.metrics, par.metrics, "RunMetrics bit-identical");
        }
    }

    #[test]
    fn fault_window_changes_results_deterministically() {
        let mut spec = small();
        spec.fault_window = Some((
            SimTime::ZERO + SimDuration::us(5),
            SimTime::ZERO + SimDuration::us(15),
        ));
        let a = spec.run_with_shards(1).expect("run a");
        let b = spec.run_with_shards(4).expect("run b");
        assert!(a.report.same_outcome(&b.report));
        let dropped: u64 = a.report.lps.iter().map(|lp| tile_stat(lp, "dropped")).sum();
        assert!(dropped > 0, "fault window must drop packets");
        let clean = small().run_with_shards(1).expect("clean");
        assert_ne!(
            clean.report.lps[0].state_hash, a.report.lps[0].state_hash,
            "faults must perturb tile state"
        );
    }

    #[test]
    fn env_var_overrides_shard_count() {
        // The var is process-global and may be set by the harness itself
        // (CI runs the whole suite under DRCF_SHARDS=2), so save and
        // restore the ambient value around the assertions.
        let spec = small();
        let saved = std::env::var(SHARDS_ENV).ok();
        std::env::remove_var(SHARDS_ENV);
        assert_eq!(spec.effective_shards().unwrap(), spec.shards);
        std::env::set_var(SHARDS_ENV, "3");
        assert_eq!(spec.effective_shards().unwrap(), 3);
        // A malformed override is a typed config error, not a silent
        // fallback to the spec default.
        std::env::set_var(SHARDS_ENV, "not-a-number");
        let err = spec.effective_shards().unwrap_err();
        assert_eq!(err.kind, SimErrorKind::Validation);
        assert!(
            err.to_string().contains(SHARDS_ENV),
            "error must name the variable: {err}"
        );
        std::env::set_var(SHARDS_ENV, "0");
        assert!(spec.effective_shards().is_err(), "zero shards is malformed");
        match saved {
            Some(v) => std::env::set_var(SHARDS_ENV, v),
            None => std::env::remove_var(SHARDS_ENV),
        }
    }

    #[test]
    fn single_tile_runs_without_links() {
        let spec = ShardedSocSpec {
            tiles: 1,
            horizon: SimDuration::us(10),
            ..ShardedSocSpec::default()
        };
        let r = spec.run_with_shards(1).expect("run");
        assert_eq!(r.report.messages, 0);
        assert!(r.events() > 0);
    }
}
