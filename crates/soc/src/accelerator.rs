//! Hardware accelerator library.
//!
//! Timed functional models of the DSP/multimedia/crypto kernels the
//! ADRIATIC application space (wireless terminals) motivates: FIR, FFT,
//! Viterbi, AES, DCT and motion estimation. Each is a [`BusSlaveModel`]
//! with a small register map, so the same object serves as a standalone
//! accelerator (Fig. 1a), a DRCF context (Fig. 1b), or an elaborated IR
//! module.
//!
//! Register map (word offsets from the block base):
//!
//! | offset | register | behavior |
//! |--------|----------|----------|
//! | 0      | CTRL     | write 1: run the kernel over the data window |
//! | 1      | STATUS   | 0 = idle, 2 = done |
//! | 2      | LEN      | number of valid input words |
//! | 3..    | DATA     | input/output window (in-place) |
//!
//! The CTRL write's access time *is* the kernel's compute time, so folding
//! the model into a DRCF automatically time-multiplexes computation on the
//! fabric.

use drcf_bus::prelude::{Addr, BusOp, BusSlaveModel, Word};
use drcf_bus::snapshot::{words_json, words_of};
use drcf_kernel::json::{ju64, ju64_of, Json};

/// STATUS register values.
pub mod status {
    /// Nothing computed yet.
    pub const IDLE: u64 = 0;
    /// Last kernel run completed.
    pub const DONE: u64 = 2;
}

/// Register offsets.
pub mod regs {
    /// Control register.
    pub const CTRL: u64 = 0;
    /// Status register.
    pub const STATUS: u64 = 1;
    /// Input length register.
    pub const LEN: u64 = 2;
    /// Start of the data window.
    pub const DATA: u64 = 3;
}

/// The kernel an accelerator implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelKind {
    /// Finite impulse response filter with the given taps.
    Fir {
        /// Filter coefficients.
        taps: Vec<i64>,
    },
    /// Decimation-free transform modeled as an N-point mixing network.
    Fft {
        /// Transform size (power of two).
        points: usize,
    },
    /// Convolutional decoder (constraint length fixed at 9, WCDMA-style).
    Viterbi,
    /// Block cipher rounds.
    Aes {
        /// Number of rounds.
        rounds: u32,
    },
    /// 8×8 integer DCT over the window.
    Dct,
    /// Sum-of-absolute-differences motion estimation over macroblocks.
    MotionEst {
        /// Search positions evaluated per macroblock.
        search_points: u32,
    },
}

impl KernelKind {
    /// Registry key for elaboration factories.
    pub fn key(&self) -> &'static str {
        match self {
            KernelKind::Fir { .. } => "fir",
            KernelKind::Fft { .. } => "fft",
            KernelKind::Viterbi => "viterbi",
            KernelKind::Aes { .. } => "aes",
            KernelKind::Dct => "dct",
            KernelKind::MotionEst { .. } => "motion_est",
        }
    }

    /// Compute cycles for a run over `len` input words (hardware-style
    /// pipelined estimates).
    pub fn compute_cycles(&self, len: u64) -> u64 {
        match self {
            KernelKind::Fir { taps } => len * taps.len() as u64 / 4 + 8,
            KernelKind::Fft { points } => {
                let p = (*points as u64).max(2);
                let stages = 64 - p.leading_zeros() as u64;
                p * stages / 4 + 16
            }
            KernelKind::Viterbi => len * 16 + 32,
            KernelKind::Aes { rounds } => len * *rounds as u64 / 2 + 8,
            KernelKind::Dct => len.div_ceil(64) * 80 + 8,
            KernelKind::MotionEst { search_points } => {
                len.div_ceil(256) * *search_points as u64 * 16 + 16
            }
        }
    }

    /// Area estimate in equivalent gates.
    pub fn gate_count(&self) -> u64 {
        match self {
            KernelKind::Fir { taps } => 4_000 + 800 * taps.len() as u64,
            KernelKind::Fft { points } => 12_000 + 4 * *points as u64,
            KernelKind::Viterbi => 22_000,
            KernelKind::Aes { rounds } => 16_000 + 300 * *rounds as u64,
            KernelKind::Dct => 14_000,
            KernelKind::MotionEst { search_points } => 18_000 + 20 * *search_points as u64,
        }
    }

    /// Run the kernel functionally, in place over the window.
    fn run(&self, window: &mut [Word], len: usize) {
        let len = len.min(window.len());
        match self {
            KernelKind::Fir { taps } => {
                let input: Vec<i64> = window[..len].iter().map(|&w| w as i64).collect();
                for i in 0..len {
                    let mut acc = 0i64;
                    for (k, &t) in taps.iter().enumerate() {
                        if i >= k {
                            acc = acc.wrapping_add(t.wrapping_mul(input[i - k]));
                        }
                    }
                    window[i] = acc as Word;
                }
            }
            KernelKind::Fft { points } => {
                // Deterministic mixing network standing in for the real
                // butterflies: bit-reverse permutation + pairwise mixes.
                let n = len.min(*points);
                let bits = (usize::BITS - n.next_power_of_two().leading_zeros() - 1) as usize;
                for i in 0..n {
                    let j = reverse_bits(i, bits);
                    if j > i && j < n {
                        window.swap(i, j);
                    }
                }
                let mut stride = 1;
                while stride < n {
                    for i in (0..n - stride).step_by(stride * 2) {
                        let a = window[i];
                        let b = window[i + stride];
                        window[i] = a.wrapping_add(b);
                        window[i + stride] = a.wrapping_sub(b);
                    }
                    stride *= 2;
                }
            }
            KernelKind::Viterbi => {
                // Path-metric style accumulation with survivor selection.
                let mut metric: Word = 0;
                for w in window[..len].iter_mut() {
                    let m0 = metric.wrapping_add(*w & 0xFF);
                    let m1 = metric.wrapping_add((!*w) & 0xFF);
                    metric = m0.min(m1);
                    *w = metric;
                }
            }
            KernelKind::Aes { rounds } => {
                for w in window[..len].iter_mut() {
                    let mut v = *w;
                    for r in 0..*rounds as u64 {
                        v = v.rotate_left(7) ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r + 1));
                    }
                    *w = v;
                }
            }
            KernelKind::Dct => {
                // Integer "DCT-like" transform per 8-word row: running
                // weighted sums (deterministic, invertible enough for
                // checking).
                for chunk in window[..len].chunks_mut(8) {
                    let src: Vec<Word> = chunk.to_vec();
                    for (k, out) in chunk.iter_mut().enumerate() {
                        let mut acc: Word = 0;
                        for (n, &x) in src.iter().enumerate() {
                            let c = ((2 * n + 1) * k % 16) as u64 + 1;
                            acc = acc.wrapping_add(x.wrapping_mul(c));
                        }
                        *out = acc;
                    }
                }
            }
            KernelKind::MotionEst { search_points } => {
                // SAD against a shifted copy; write best offset + score.
                let sp = (*search_points as usize).max(1);
                for chunk in window[..len].chunks_mut(16) {
                    let src: Vec<Word> = chunk.to_vec();
                    let mut best = (0u64, u64::MAX);
                    for s in 0..sp.min(src.len()) {
                        let sad: u64 = src
                            .iter()
                            .zip(src.iter().cycle().skip(s))
                            .map(|(&a, &b)| a.abs_diff(b))
                            .fold(0, |acc, d| acc.wrapping_add(d));
                        if sad < best.1 {
                            best = (s as u64, sad);
                        }
                    }
                    chunk[0] = best.0;
                    if chunk.len() > 1 {
                        chunk[1] = best.1;
                    }
                }
            }
        }
    }
}

fn reverse_bits(v: usize, bits: usize) -> usize {
    if bits == 0 {
        return v;
    }
    v.reverse_bits() >> (usize::BITS as usize - bits)
}

/// A kernel accelerator: registers + data window + compute timing.
pub struct KernelAccelerator {
    name: String,
    kind: KernelKind,
    base: Addr,
    window_words: usize,
    ctrl: Word,
    status: Word,
    len: Word,
    window: Vec<Word>,
    /// Kernel invocations completed.
    pub runs: u64,
    /// Total compute cycles consumed.
    pub compute_cycles: u64,
    /// Deterministic mutation counter: bumped on every accepted register or
    /// window write, serialized next to the state so delta-aware container
    /// restores (the DRCF's per-context skip) can tell untouched contexts
    /// from changed ones.
    mut_epoch: u64,
}

impl KernelAccelerator {
    /// New accelerator at `base` with a data window of `window_words`.
    pub fn new(name: &str, kind: KernelKind, base: Addr, window_words: usize) -> Self {
        assert!(window_words > 0, "window must be nonempty");
        KernelAccelerator {
            name: name.to_string(),
            kind,
            base,
            window_words,
            ctrl: 0,
            status: status::IDLE,
            len: 0,
            window: vec![0; window_words],
            runs: 0,
            compute_cycles: 0,
            mut_epoch: 0,
        }
    }

    /// The kernel this block implements.
    pub fn kind(&self) -> &KernelKind {
        &self.kind
    }

    /// Words the register map occupies (registers + window).
    pub fn footprint_words(&self) -> u64 {
        regs::DATA + self.window_words as u64
    }
}

impl BusSlaveModel for KernelAccelerator {
    fn low_addr(&self) -> Addr {
        self.base
    }

    fn high_addr(&self) -> Addr {
        self.base + self.footprint_words() - 1
    }

    fn read(&mut self, addr: Addr) -> Result<Word, ()> {
        let off = addr.checked_sub(self.base).ok_or(())?;
        match off {
            x if x == regs::CTRL => Ok(self.ctrl),
            x if x == regs::STATUS => Ok(self.status),
            x if x == regs::LEN => Ok(self.len),
            x if x >= regs::DATA && x < self.footprint_words() => {
                Ok(self.window[(x - regs::DATA) as usize])
            }
            _ => Err(()),
        }
    }

    fn write(&mut self, addr: Addr, data: Word) -> Result<(), ()> {
        let off = addr.checked_sub(self.base).ok_or(())?;
        let accepted = match off {
            x if x == regs::CTRL => {
                self.ctrl = data;
                if data != 0 {
                    let len = (self.len as usize).min(self.window_words);
                    self.kind.run(&mut self.window, len);
                    self.runs += 1;
                    self.compute_cycles += self.kind.compute_cycles(len as u64);
                    self.status = status::DONE;
                }
                Ok(())
            }
            x if x == regs::STATUS => {
                self.status = data;
                Ok(())
            }
            x if x == regs::LEN => {
                self.len = data;
                Ok(())
            }
            x if x >= regs::DATA && x < self.footprint_words() => {
                self.window[(x - regs::DATA) as usize] = data;
                Ok(())
            }
            _ => Err(()),
        };
        if accepted.is_ok() {
            self.mut_epoch += 1;
        }
        accepted
    }

    fn access_cycles(&self, op: BusOp, addr: Addr, burst: usize) -> u64 {
        let off = addr.wrapping_sub(self.base);
        if op == BusOp::Write && off == regs::CTRL {
            // The CTRL kick costs the full kernel execution.
            self.kind
                .compute_cycles(self.len.min(self.window_words as u64))
        } else {
            burst as u64
        }
    }

    fn model_name(&self) -> &str {
        &self.name
    }

    fn snapshot_state(&self) -> Result<Json, String> {
        Ok(Json::obj()
            .with("ctrl", ju64(self.ctrl))
            .with("status", ju64(self.status))
            .with("len", ju64(self.len))
            .with("window", words_json(&self.window))
            .with("runs", ju64(self.runs))
            .with("compute_cycles", ju64(self.compute_cycles))
            .with("epoch", ju64(self.mut_epoch)))
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), String> {
        let field = |key: &str| {
            state
                .get(key)
                .and_then(ju64_of)
                .ok_or_else(|| format!("accelerator '{}': bad field `{key}`", self.name))
        };
        self.ctrl = field("ctrl")?;
        self.status = field("status")?;
        self.len = field("len")?;
        let window = state
            .get("window")
            .and_then(words_of)
            .filter(|w| w.len() == self.window_words)
            .ok_or_else(|| format!("accelerator '{}': bad data window", self.name))?;
        self.window = window;
        self.runs = field("runs")?;
        self.compute_cycles = field("compute_cycles")?;
        self.mut_epoch = field("epoch")?;
        Ok(())
    }

    fn change_epoch(&self) -> Option<u64> {
        Some(self.mut_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(kind: KernelKind) -> KernelAccelerator {
        KernelAccelerator::new("acc", kind, 0x1000, 64)
    }

    #[test]
    fn register_map_roundtrip() {
        let mut a = acc(KernelKind::Viterbi);
        assert_eq!(a.low_addr(), 0x1000);
        assert_eq!(a.high_addr(), 0x1000 + 3 + 64 - 1);
        a.write(0x1000 + regs::LEN, 5).unwrap();
        assert_eq!(a.read(0x1000 + regs::LEN), Ok(5));
        a.write(0x1000 + regs::DATA + 2, 99).unwrap();
        assert_eq!(a.read(0x1000 + regs::DATA + 2), Ok(99));
        assert!(a.read(0x0FFF).is_err());
        assert!(a.write(a.high_addr() + 1, 0).is_err());
    }

    #[test]
    fn ctrl_kick_runs_kernel_and_sets_done() {
        let mut a = acc(KernelKind::Aes { rounds: 4 });
        for i in 0..4u64 {
            a.write(0x1000 + regs::DATA + i, 100 + i).unwrap();
        }
        a.write(0x1000 + regs::LEN, 4).unwrap();
        assert_eq!(a.read(0x1000 + regs::STATUS), Ok(status::IDLE));
        a.write(0x1000 + regs::CTRL, 1).unwrap();
        assert_eq!(a.read(0x1000 + regs::STATUS), Ok(status::DONE));
        assert_eq!(a.runs, 1);
        // AES actually scrambled the data.
        let out = a.read(0x1000 + regs::DATA).unwrap();
        assert_ne!(out, 100);
    }

    #[test]
    fn fir_computes_convolution() {
        let mut a = KernelAccelerator::new("fir", KernelKind::Fir { taps: vec![1, 2] }, 0, 8);
        // Input [1, 1, 1]; taps [1,2] -> y0=1, y1=1+2=3, y2=1+2=3.
        for i in 0..3u64 {
            a.write(regs::DATA + i, 1).unwrap();
        }
        a.write(regs::LEN, 3).unwrap();
        a.write(regs::CTRL, 1).unwrap();
        assert_eq!(a.read(regs::DATA), Ok(1));
        assert_eq!(a.read(regs::DATA + 1), Ok(3));
        assert_eq!(a.read(regs::DATA + 2), Ok(3));
    }

    #[test]
    fn kernels_are_deterministic() {
        for kind in [
            KernelKind::Fir {
                taps: vec![3, -1, 2],
            },
            KernelKind::Fft { points: 16 },
            KernelKind::Viterbi,
            KernelKind::Aes { rounds: 10 },
            KernelKind::Dct,
            KernelKind::MotionEst { search_points: 8 },
        ] {
            let run = |kind: &KernelKind| {
                let mut a = KernelAccelerator::new("k", kind.clone(), 0, 32);
                for i in 0..32u64 {
                    a.write(regs::DATA + i, i * 37 + 5).unwrap();
                }
                a.write(regs::LEN, 32).unwrap();
                a.write(regs::CTRL, 1).unwrap();
                (0..32u64)
                    .map(|i| a.read(regs::DATA + i).unwrap())
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(&kind), run(&kind), "{kind:?}");
        }
    }

    #[test]
    fn ctrl_write_is_expensive_data_writes_are_not() {
        let mut a = acc(KernelKind::Viterbi);
        a.write(0x1000 + regs::LEN, 32).unwrap();
        let kick = a.access_cycles(BusOp::Write, 0x1000 + regs::CTRL, 1);
        let data = a.access_cycles(BusOp::Write, 0x1000 + regs::DATA, 1);
        assert_eq!(kick, KernelKind::Viterbi.compute_cycles(32));
        assert_eq!(data, 1);
        assert!(kick > 100 * data);
    }

    #[test]
    fn compute_cycles_grow_with_input() {
        for kind in [
            KernelKind::Fir { taps: vec![1; 16] },
            KernelKind::Viterbi,
            KernelKind::Aes { rounds: 10 },
            KernelKind::Dct,
        ] {
            assert!(
                kind.compute_cycles(256) > kind.compute_cycles(16),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn gate_counts_are_plausible() {
        for kind in [
            KernelKind::Fir { taps: vec![1; 16] },
            KernelKind::Fft { points: 64 },
            KernelKind::Viterbi,
            KernelKind::Aes { rounds: 10 },
            KernelKind::Dct,
            KernelKind::MotionEst { search_points: 16 },
        ] {
            let g = kind.gate_count();
            assert!((1_000..200_000).contains(&g), "{kind:?}: {g}");
        }
    }

    #[test]
    fn kernel_keys_are_unique() {
        let keys = [
            KernelKind::Fir { taps: vec![] }.key(),
            KernelKind::Fft { points: 8 }.key(),
            KernelKind::Viterbi.key(),
            KernelKind::Aes { rounds: 1 }.key(),
            KernelKind::Dct.key(),
            KernelKind::MotionEst { search_points: 1 }.key(),
        ];
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }
}
