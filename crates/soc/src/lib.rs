//! # drcf-soc — SoC component library and architecture builders
//!
//! The system-level building blocks around the fabric: an abstract
//! processor ([`cpu`]), a library of timed DSP/crypto/multimedia
//! accelerator models ([`accelerator`]), application task graphs and their
//! compilation to bus traffic ([`tasks`]), the ADRIATIC-flavored workloads
//! ([`workloads`]), builders for the two Fig. 1 architectures
//! ([`builder`]), and the profiling front end of the partitioning phase
//! ([`profile`]).

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod accelerator;

/// DMA register offsets (re-exported from `drcf_bus::dma` for the task
/// compiler's DMA copy mode).
pub use drcf_bus::dma::regs as dma_regs;
/// DMA status codes.
pub use drcf_bus::dma::status as dma_status;
pub mod builder;
pub mod cpu;
pub mod partition;
pub mod profile;
pub mod sharded;
pub mod tasks;
pub mod workloads;

/// Commonly used items.
pub mod prelude {
    pub use crate::accelerator::{regs, status, KernelAccelerator, KernelKind};
    pub use crate::builder::{
        assign_bindings, build_soc, restore_soc, run_soc, run_soc_mut, scenario_fingerprint,
        snapshot_prefix, BuiltSoc, Mapping, RunMetrics, SocConfigPath, SocCopyMode, SocSpec,
    };
    pub use crate::cpu::{Cpu, CpuConfig, CpuStats, Instr};
    pub use crate::partition::{
        partition_topology, plan_partition, run_partitioned, BridgeSpec, BridgeTraffic,
        CriticalLinkReport, LinkKind, MergedBridge, Part, PartCtx, PartitionPlan, PartitionedRun,
        PlannedLink, Segment, SocGraph, StreamSpec,
    };
    pub use crate::profile::{asap_profile, estimate_task_cycles, measured_busy_fractions};
    pub use crate::sharded::{
        shards_env_override, tile_stat, FabricTile, ShardedSocRun, ShardedSocSpec, SHARDS_ENV,
    };
    pub use crate::tasks::{
        compile, compile_with, task_input, AccelBinding, CompileOptions, CopyMode, Task, TaskGraph,
        TaskId, TaskKind,
    };
    pub use crate::workloads::{
        multi_standard, video_pipeline, wireless_receiver, AccelReq, Workload,
    };
}
