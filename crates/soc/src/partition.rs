//! Automatic partitioning: cut a bus-bridged SoC into shard LPs.
//!
//! The paper's hierarchical architectures (§4: "there is usually need for
//! more complex architectures") are built from bus *segments* joined by
//! [`BusBridge`](drcf_bus::prelude::BusBridge)s. A bridge declares real
//! forwarding latency in each direction, which makes it a natural cut
//! point for conservative parallel simulation: the shard on one side can
//! run ahead of the other by the bridge's latency without ever receiving
//! a message in its past (DESIGN.md §12–§13).
//!
//! This module turns a declarative [`SocGraph`] — segments, the parts on
//! each segment, bridges between segments and raw [`StreamSpec`] channels
//! — into a [`ShardTopology`]:
//!
//! - **cut rule**: every bus segment becomes one LP; each bridge whose
//!   forward *and* return lookahead are positive is cut into a
//!   [`BridgeUpstream`]/[`BridgeDownstream`] stub pair talking over a
//!   request/response link pair; a bridge with a zero lookahead in either
//!   direction cannot be cut, so its two segments are merged into one LP
//!   (recorded in [`PartitionPlan::local`] with a typed reason) and the
//!   ordinary in-process [`BusBridge`] is instantiated instead;
//! - **determinism**: per-LP component ids are laid out by a pure
//!   function of the graph ([`PartitionPlan`] order), and every cut
//!   message travels through the kernel's deterministic merge, so the
//!   same graph produces bit-identical [`ShardRunReport`]s at any shard
//!   count — shards=1 *is* the single-LP oracle.
//!
//! [`crate::sharded::ShardedSocSpec`] is a thin preset over this module:
//! its ring of fabric tiles is expressed as bus-less segments joined by
//! streams.

use std::sync::Arc;

use drcf_bus::prelude::{
    Addr, AddressMap, BridgeConfig, BridgeDownstream, BridgeUpstream, Bus, BusBridge, BusConfig,
    SlaveTiming,
};
use drcf_kernel::json::{ju64, ju64_of, Json};
use drcf_kernel::prelude::*;

use crate::builder::RunMetrics;

/// Builder closure for one part: adds exactly one component to the LP's
/// simulator and returns its id. The [`PartCtx`] carries the segment's
/// bus id and the transmit handles for the part's outgoing streams.
pub type PartBuild = Arc<dyn Fn(&mut Simulator, &PartCtx) -> SimResult<ComponentId> + Send + Sync>;

/// Probe closure for one part: summarizes the finished component as JSON
/// for the LP report.
pub type PartProbe = Arc<dyn Fn(&mut Simulator, ComponentId) -> SimResult<Json> + Send + Sync>;

/// Wiring handed to a [`PartBuild`] closure.
pub struct PartCtx {
    bus: Option<ComponentId>,
    streams: Vec<LinkTx>,
}

impl PartCtx {
    /// The segment's bus component id. Errors on a bus-less segment so
    /// misconfigured graphs fail with a typed message instead of wiring a
    /// master port to a bogus id.
    pub fn bus(&self) -> SimResult<ComponentId> {
        self.bus
            .ok_or_else(|| cfg_err("part requires a bus but its segment has none"))
    }

    /// Transmit handles for this part's outgoing streams, in stream
    /// declaration order.
    pub fn stream_txs(&self) -> &[LinkTx] {
        &self.streams
    }

    /// Egress component ids of the outgoing streams (for models that
    /// address egress components directly).
    pub fn stream_egress(&self) -> Vec<ComponentId> {
        self.streams.iter().map(LinkTx::egress).collect()
    }
}

/// One component on a bus segment.
#[derive(Clone)]
pub struct Part {
    /// Component name (also the key of its probe JSON in the LP report).
    pub name: String,
    /// Address ranges this part claims as a bus slave (may be empty for
    /// pure masters).
    pub claims: Vec<(Addr, Addr)>,
    /// Relative load weight for shard balancing.
    pub weight: u64,
    /// Deterministic service timing, registered with the segment bus so
    /// coalesced configuration trains can be scheduled analytically.
    pub timing: Option<SlaveTiming>,
    /// Constructs the component.
    pub build: PartBuild,
    /// Optional result probe.
    pub probe: Option<PartProbe>,
}

impl Part {
    /// A part with the given name and builder; claims, weight, timing and
    /// probe can be layered on with the `with_*` methods.
    pub fn new(
        name: &str,
        build: impl Fn(&mut Simulator, &PartCtx) -> SimResult<ComponentId> + Send + Sync + 'static,
    ) -> Part {
        Part {
            name: name.to_string(),
            claims: Vec::new(),
            weight: 1,
            timing: None,
            build: Arc::new(build),
            probe: None,
        }
    }

    /// Claim an address range as a bus slave.
    pub fn with_claim(mut self, low: Addr, high: Addr) -> Part {
        self.claims.push((low, high));
        self
    }

    /// Set the load weight.
    pub fn with_weight(mut self, weight: u64) -> Part {
        self.weight = weight;
        self
    }

    /// Register deterministic slave timing with the segment bus.
    pub fn with_timing(mut self, timing: SlaveTiming) -> Part {
        self.timing = Some(timing);
        self
    }

    /// Attach a result probe.
    pub fn with_probe(
        mut self,
        probe: impl Fn(&mut Simulator, ComponentId) -> SimResult<Json> + Send + Sync + 'static,
    ) -> Part {
        self.probe = Some(Arc::new(probe));
        self
    }
}

/// One bus segment: an optional bus plus the parts on it. A segment
/// without a bus hosts self-driven components (fabric tiles, stream
/// endpoints) that talk only over streams.
pub struct Segment {
    /// Segment name (LP names and bus component names derive from it).
    pub name: String,
    /// Bus configuration; `None` for a bus-less segment.
    pub bus: Option<BusConfig>,
    /// Parts in construction order.
    pub parts: Vec<Part>,
}

/// A bus-to-bus bridge between two segments: slave window on the
/// upstream bus, master on the downstream bus.
pub struct BridgeSpec {
    /// Bridge name (stub component names and link names derive from it).
    pub name: String,
    /// Timing and priority.
    pub cfg: BridgeConfig,
    /// Segment whose bus the bridge is a slave on.
    pub upstream: usize,
    /// Segment whose bus the bridge masters.
    pub downstream: usize,
    /// Address window claimed on the upstream bus.
    pub window: (Addr, Addr),
}

/// A raw directed channel between two parts, cut at a declared latency.
/// Streams model non-bus traffic (tile-to-tile packets); unlike bridges
/// they cannot fall back to an in-process component, so a zero latency is
/// a typed refusal.
pub struct StreamSpec {
    /// Channel name (the kernel link name).
    pub name: String,
    /// Producing `(segment, part)`.
    pub from: (usize, usize),
    /// Consuming `(segment, part)`.
    pub to: (usize, usize),
    /// Minimum transport latency — the lookahead. Must be positive.
    pub latency: SimDuration,
    /// Optional bounded per-window capacity override.
    pub capacity: Option<usize>,
}

/// A declarative multi-segment SoC: the input of the partitioner.
#[derive(Default)]
pub struct SocGraph {
    /// Bus segments.
    pub segments: Vec<Segment>,
    /// Bridges between segments.
    pub bridges: Vec<BridgeSpec>,
    /// Raw streams between parts.
    pub streams: Vec<StreamSpec>,
}

impl SocGraph {
    /// Empty graph.
    pub fn new() -> SocGraph {
        SocGraph::default()
    }

    /// Add a segment; returns its index.
    pub fn add_segment(&mut self, name: &str, bus: Option<BusConfig>) -> usize {
        self.segments.push(Segment {
            name: name.to_string(),
            bus,
            parts: Vec::new(),
        });
        self.segments.len() - 1
    }

    /// Add a part to a segment; returns `(segment, part)` for stream
    /// endpoints. Out-of-range segments are caught by [`plan_partition`].
    pub fn add_part(&mut self, segment: usize, part: Part) -> (usize, usize) {
        if let Some(seg) = self.segments.get_mut(segment) {
            seg.parts.push(part);
            (segment, seg.parts.len() - 1)
        } else {
            (segment, usize::MAX)
        }
    }

    /// Add a bridge; returns its index.
    pub fn add_bridge(
        &mut self,
        name: &str,
        cfg: BridgeConfig,
        upstream: usize,
        downstream: usize,
        window: (Addr, Addr),
    ) -> usize {
        self.bridges.push(BridgeSpec {
            name: name.to_string(),
            cfg,
            upstream,
            downstream,
            window,
        });
        self.bridges.len() - 1
    }

    /// Add a stream; returns its index.
    pub fn add_stream(
        &mut self,
        name: &str,
        from: (usize, usize),
        to: (usize, usize),
        latency: SimDuration,
    ) -> usize {
        self.streams.push(StreamSpec {
            name: name.to_string(),
            from,
            to,
            latency,
            capacity: None,
        });
        self.streams.len() - 1
    }

    fn validate(&self) -> SimResult<()> {
        if self.segments.is_empty() {
            return Err(cfg_err("graph has no segments"));
        }
        for b in &self.bridges {
            let up = self
                .segments
                .get(b.upstream)
                .ok_or_else(|| cfg_err(format!("bridge {:?}: no upstream segment", b.name)))?;
            let down = self
                .segments
                .get(b.downstream)
                .ok_or_else(|| cfg_err(format!("bridge {:?}: no downstream segment", b.name)))?;
            if b.upstream == b.downstream {
                return Err(cfg_err(format!(
                    "bridge {:?} connects segment {:?} to itself",
                    b.name, up.name
                )));
            }
            if up.bus.is_none() || down.bus.is_none() {
                return Err(cfg_err(format!(
                    "bridge {:?} requires buses on both segments",
                    b.name
                )));
            }
            if b.window.0 > b.window.1 {
                return Err(cfg_err(format!("bridge {:?}: inverted window", b.name)));
            }
        }
        for s in &self.streams {
            for &(seg, part) in [&s.from, &s.to] {
                if self
                    .segments
                    .get(seg)
                    .is_none_or(|sg| part >= sg.parts.len())
                {
                    return Err(cfg_err(format!(
                        "stream {:?} references missing part ({seg}, {part})",
                        s.name
                    )));
                }
            }
            if s.latency == SimDuration::ZERO {
                return Err(cfg_err(format!(
                    "stream {:?} has zero latency: streams carry no fallback component, declare \
                     a positive transport latency or model the channel as a bridge",
                    s.name
                )));
            }
        }
        Ok(())
    }
}

/// A bridge kept inside one LP instead of being cut, and why.
#[derive(Debug, Clone)]
pub struct MergedBridge {
    /// Bridge index in [`SocGraph::bridges`].
    pub bridge: usize,
    /// Typed reason for the fallback.
    pub reason: String,
}

/// What a planned kernel link carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Forwarded requests of a cut bridge (upstream → downstream).
    BridgeRequest(usize),
    /// Returned responses of a cut bridge (downstream → upstream).
    BridgeResponse(usize),
    /// A raw stream.
    Stream(usize),
}

/// One kernel link the partitioner will declare, in declaration order.
#[derive(Debug, Clone)]
pub struct PlannedLink {
    /// Link name.
    pub name: String,
    /// Source LP.
    pub from_lp: usize,
    /// Destination LP.
    pub to_lp: usize,
    /// Conservative lookahead.
    pub latency: SimDuration,
    /// What the link carries.
    pub kind: LinkKind,
    /// Bounded per-window capacity override.
    pub capacity: Option<usize>,
}

/// The cut: which segments share an LP, which bridges were cut, and the
/// exact link table — a pure function of the [`SocGraph`].
#[derive(Debug, Clone, Default)]
pub struct PartitionPlan {
    /// LP index of every segment.
    pub lp_of_segment: Vec<usize>,
    /// Segments of every LP, ascending.
    pub groups: Vec<Vec<usize>>,
    /// Bridges cut into stub pairs, ascending bridge index.
    pub cut: Vec<usize>,
    /// Bridges kept in-process, with typed reasons.
    pub local: Vec<MergedBridge>,
    /// Kernel links in declaration order.
    pub links: Vec<PlannedLink>,
    /// Per bridge: `(request link, response link)` when cut.
    pub bridge_links: Vec<Option<(usize, usize)>>,
    /// Per stream: its link index.
    pub stream_links: Vec<usize>,
}

impl PartitionPlan {
    /// Number of LPs.
    pub fn lp_count(&self) -> usize {
        self.groups.len()
    }
}

fn cfg_err(msg: impl Into<String>) -> SimError {
    SimError::new(SimErrorKind::Validation, msg)
}

fn find(parent: &mut [usize], i: usize) -> usize {
    let mut r = i;
    while parent[r] != r {
        r = parent[r];
    }
    let mut c = i;
    while parent[c] != c {
        let next = parent[c];
        parent[c] = r;
        c = next;
    }
    r
}

/// Compute the cut for a graph: merge segments joined by un-cuttable
/// bridges, number the LPs, and lay out the link table. Fails with a
/// typed [`SimErrorKind::Validation`] error on malformed graphs
/// (dangling indices, inverted windows, zero-latency streams).
pub fn plan_partition(graph: &SocGraph) -> SimResult<PartitionPlan> {
    graph.validate()?;
    let n = graph.segments.len();
    let mut parent: Vec<usize> = (0..n).collect();
    // Typed merge reasons, indexed by bridge.
    let mut merge_reason: Vec<Option<String>> = vec![None; graph.bridges.len()];
    for (b, spec) in graph.bridges.iter().enumerate() {
        let reason = if spec.cfg.min_latency() == SimDuration::ZERO {
            Some("zero forward lookahead (forward_cycles at clock_mhz rounds to zero)")
        } else if spec.cfg.return_latency() == SimDuration::ZERO {
            Some("zero return lookahead (return_cycles at clock_mhz rounds to zero)")
        } else {
            None
        };
        if let Some(r) = reason {
            merge_reason[b] = Some(r.to_string());
            let (ru, rd) = (
                find(&mut parent, spec.upstream),
                find(&mut parent, spec.downstream),
            );
            parent[ru.max(rd)] = ru.min(rd);
        }
    }
    // Number LPs by first appearance so segment 0 is always in LP 0.
    let mut lp_of_root: Vec<Option<usize>> = vec![None; n];
    let mut lp_of_segment = vec![0usize; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (s, slot) in lp_of_segment.iter_mut().enumerate() {
        let r = find(&mut parent, s);
        let lp = match lp_of_root[r] {
            Some(lp) => lp,
            None => {
                let lp = groups.len();
                lp_of_root[r] = Some(lp);
                groups.push(Vec::new());
                lp
            }
        };
        *slot = lp;
        groups[lp].push(s);
    }
    // Classify bridges and lay out links: bridge request/response pairs
    // first (bridge order), then streams (stream order).
    let mut cut = Vec::new();
    let mut local = Vec::new();
    let mut links = Vec::new();
    let mut bridge_links = vec![None; graph.bridges.len()];
    for (b, spec) in graph.bridges.iter().enumerate() {
        let (up_lp, down_lp) = (lp_of_segment[spec.upstream], lp_of_segment[spec.downstream]);
        if up_lp == down_lp {
            let reason = merge_reason[b].clone().unwrap_or_else(|| {
                "endpoints already share an LP (merged through another bridge)".to_string()
            });
            local.push(MergedBridge { bridge: b, reason });
            continue;
        }
        let req = links.len();
        links.push(PlannedLink {
            name: format!("{}:req", spec.name),
            from_lp: up_lp,
            to_lp: down_lp,
            latency: spec.cfg.min_latency(),
            kind: LinkKind::BridgeRequest(b),
            capacity: None,
        });
        let rsp = links.len();
        links.push(PlannedLink {
            name: format!("{}:rsp", spec.name),
            from_lp: down_lp,
            to_lp: up_lp,
            latency: spec.cfg.return_latency(),
            kind: LinkKind::BridgeResponse(b),
            capacity: None,
        });
        bridge_links[b] = Some((req, rsp));
        cut.push(b);
    }
    let mut stream_links = Vec::with_capacity(graph.streams.len());
    for (s, spec) in graph.streams.iter().enumerate() {
        stream_links.push(links.len());
        links.push(PlannedLink {
            name: spec.name.clone(),
            from_lp: lp_of_segment[spec.from.0],
            to_lp: lp_of_segment[spec.to.0],
            latency: spec.latency,
            kind: LinkKind::Stream(s),
            capacity: spec.capacity,
        });
    }
    Ok(PartitionPlan {
        lp_of_segment,
        groups,
        cut,
        local,
        links,
        bridge_links,
        stream_links,
    })
}

/// Analytic component-id layout of one LP: egress components occupy the
/// first ids (one per outgoing link, in link declaration order), then per
/// segment (ascending) the bus followed by its parts, then upstream
/// stubs, downstream stubs and in-process bridges (each in bridge order).
/// The build closure asserts this layout as it constructs the LP, so a
/// drifting id is a hard error rather than silent mis-wiring.
struct LpLayout {
    bus_of_segment: Vec<Option<ComponentId>>,
    part_id: Vec<Vec<ComponentId>>,
    up_stub: Vec<Option<ComponentId>>,
    down_stub: Vec<Option<ComponentId>>,
    local_bridge: Vec<Option<ComponentId>>,
}

fn lp_layout(graph: &SocGraph, plan: &PartitionPlan, lp: usize) -> LpLayout {
    let mut next = plan.links.iter().filter(|l| l.from_lp == lp).count();
    let mut lay = LpLayout {
        bus_of_segment: vec![None; graph.segments.len()],
        part_id: graph
            .segments
            .iter()
            .map(|s| vec![0; s.parts.len()])
            .collect(),
        up_stub: vec![None; graph.bridges.len()],
        down_stub: vec![None; graph.bridges.len()],
        local_bridge: vec![None; graph.bridges.len()],
    };
    for &seg in &plan.groups[lp] {
        if graph.segments[seg].bus.is_some() {
            lay.bus_of_segment[seg] = Some(next);
            next += 1;
        }
        for p in 0..graph.segments[seg].parts.len() {
            lay.part_id[seg][p] = next;
            next += 1;
        }
    }
    for &b in &plan.cut {
        if plan.lp_of_segment[graph.bridges[b].upstream] == lp {
            lay.up_stub[b] = Some(next);
            next += 1;
        }
    }
    for &b in &plan.cut {
        if plan.lp_of_segment[graph.bridges[b].downstream] == lp {
            lay.down_stub[b] = Some(next);
            next += 1;
        }
    }
    for m in &plan.local {
        if plan.lp_of_segment[graph.bridges[m.bridge].upstream] == lp {
            lay.local_bridge[m.bridge] = Some(next);
            next += 1;
        }
    }
    lay
}

fn ensure_id(actual: ComponentId, expect: ComponentId, what: &str) -> SimResult<()> {
    if actual == expect {
        Ok(())
    } else {
        Err(SimError::new(
            SimErrorKind::Internal,
            format!("partition layout drift: {what} landed at id {actual}, expected {expect}"),
        ))
    }
}

fn build_lp(
    graph: &SocGraph,
    plan: &PartitionPlan,
    lp: usize,
    sim: &mut Simulator,
    io: &mut LpIo,
) -> SimResult<()> {
    let lay = lp_layout(graph, plan, lp);
    for &seg in &plan.groups[lp] {
        let segment = &graph.segments[seg];
        if let Some(bus_cfg) = &segment.bus {
            let mut map = AddressMap::new();
            for (p, part) in segment.parts.iter().enumerate() {
                for &(low, high) in &part.claims {
                    map.add(low, high, lay.part_id[seg][p]).map_err(|e| {
                        cfg_err(format!(
                            "segment {:?}, part {:?}: {e}",
                            segment.name, part.name
                        ))
                    })?;
                }
            }
            for (b, spec) in graph.bridges.iter().enumerate() {
                if spec.upstream != seg {
                    continue;
                }
                let slave = lay.up_stub[b].or(lay.local_bridge[b]).ok_or_else(|| {
                    cfg_err(format!("bridge {:?} has no home in LP {lp}", spec.name))
                })?;
                map.add(spec.window.0, spec.window.1, slave)
                    .map_err(|e| cfg_err(format!("bridge {:?} window: {e}", spec.name)))?;
            }
            let mut bus = Bus::new(bus_cfg.clone(), map);
            for (p, part) in segment.parts.iter().enumerate() {
                if let Some(t) = part.timing {
                    bus.register_slave_timing(lay.part_id[seg][p], t);
                }
            }
            let id = sim.add(&format!("{}:bus", segment.name), bus);
            let expect = lay.bus_of_segment[seg]
                .ok_or_else(|| cfg_err("bus layout missing for bus segment"))?;
            ensure_id(id, expect, &format!("{}:bus", segment.name))?;
        }
        for (p, part) in segment.parts.iter().enumerate() {
            let streams: SimResult<Vec<LinkTx>> = graph
                .streams
                .iter()
                .enumerate()
                .filter(|(_, s)| s.from == (seg, p))
                .map(|(s, _)| io.tx(plan.stream_links[s]))
                .collect();
            let ctx = PartCtx {
                bus: lay.bus_of_segment[seg],
                streams: streams?,
            };
            let id = (part.build)(sim, &ctx)?;
            ensure_id(id, lay.part_id[seg][p], &part.name)?;
        }
    }
    for &b in &plan.cut {
        let Some(expect) = lay.up_stub[b] else {
            continue;
        };
        let spec = &graph.bridges[b];
        let (req, rsp) = plan.bridge_links[b]
            .ok_or_else(|| cfg_err(format!("cut bridge {:?} has no links", spec.name)))?;
        let mut stub = BridgeUpstream::new();
        stub.attach_tx(io.tx(req)?);
        let id = sim.add(&format!("{}:up", spec.name), stub);
        ensure_id(id, expect, &format!("{}:up", spec.name))?;
        io.set_ingress(rsp, id)?;
    }
    for &b in &plan.cut {
        let Some(expect) = lay.down_stub[b] else {
            continue;
        };
        let spec = &graph.bridges[b];
        let (req, rsp) = plan.bridge_links[b]
            .ok_or_else(|| cfg_err(format!("cut bridge {:?} has no links", spec.name)))?;
        let bus = lay.bus_of_segment[spec.downstream].ok_or_else(|| {
            cfg_err(format!(
                "bridge {:?}: downstream segment has no bus",
                spec.name
            ))
        })?;
        let mut stub = BridgeDownstream::new(&spec.cfg, bus);
        stub.attach_tx(io.tx(rsp)?);
        let id = sim.add(&format!("{}:down", spec.name), stub);
        ensure_id(id, expect, &format!("{}:down", spec.name))?;
        io.set_ingress(req, id)?;
    }
    for m in &plan.local {
        let Some(expect) = lay.local_bridge[m.bridge] else {
            continue;
        };
        let spec = &graph.bridges[m.bridge];
        let bus = lay.bus_of_segment[spec.downstream].ok_or_else(|| {
            cfg_err(format!(
                "bridge {:?}: downstream segment has no bus",
                spec.name
            ))
        })?;
        let id = sim.add(&spec.name, BusBridge::new(spec.cfg.clone(), bus));
        ensure_id(id, expect, &spec.name)?;
    }
    for (s, spec) in graph.streams.iter().enumerate() {
        let (seg, p) = spec.to;
        if plan.lp_of_segment[seg] != lp {
            continue;
        }
        io.set_ingress(plan.stream_links[s], lay.part_id[seg][p])?;
    }
    Ok(())
}

fn probe_lp(
    graph: &SocGraph,
    plan: &PartitionPlan,
    lp: usize,
    sim: &mut Simulator,
) -> SimResult<Json> {
    let lay = lp_layout(graph, plan, lp);
    let mut segments = Json::obj();
    let mut parts = Json::obj();
    let mut bridges = Json::obj();
    for &seg in &plan.groups[lp] {
        let segment = &graph.segments[seg];
        if let Some(bus_id) = lay.bus_of_segment[seg] {
            let stats = &sim.get::<Bus>(bus_id).stats;
            let grants: u64 = stats.grants.iter().map(|&(_, g)| g).sum();
            segments = segments.with(
                &segment.name,
                Json::obj()
                    .with("words", ju64(stats.words))
                    .with("requests", ju64(stats.requests))
                    .with("responses", ju64(stats.responses))
                    .with("grants", ju64(grants))
                    .with("decode_errors", ju64(stats.decode_errors))
                    .with("injected_faults", ju64(stats.injected_faults)),
            );
        }
        for (p, part) in segment.parts.iter().enumerate() {
            if let Some(probe) = &part.probe {
                parts = parts.with(&part.name, probe(sim, lay.part_id[seg][p])?);
            }
        }
    }
    for &b in &plan.cut {
        if let Some(id) = lay.up_stub[b] {
            let stub = sim.get::<BridgeUpstream>(id);
            bridges = bridges.with(
                &graph.bridges[b].name,
                Json::obj()
                    .with("forwarded", ju64(stub.forwarded))
                    .with("returned", ju64(stub.returned))
                    .with("forwarded_words", ju64(stub.forwarded_words))
                    .with("returned_words", ju64(stub.returned_words)),
            );
        }
        if let Some(id) = lay.down_stub[b] {
            let stub = sim.get::<BridgeDownstream>(id);
            bridges = bridges.with(
                &format!("{}:down", graph.bridges[b].name),
                Json::obj()
                    .with("replayed", ju64(stub.replayed))
                    .with("returned", ju64(stub.returned))
                    .with("replayed_words", ju64(stub.replayed_words))
                    .with("returned_words", ju64(stub.returned_words)),
            );
        }
    }
    for m in &plan.local {
        if let Some(id) = lay.local_bridge[m.bridge] {
            let bridge = sim.get::<BusBridge>(id);
            bridges = bridges.with(
                &graph.bridges[m.bridge].name,
                Json::obj()
                    .with("forwarded", ju64(bridge.forwarded))
                    .with("returned", ju64(bridge.returned)),
            );
        }
    }
    Ok(Json::obj()
        .with("segments", segments)
        .with("parts", parts)
        .with("bridges", bridges))
}

/// Cut a graph into a runnable [`ShardTopology`] plus the plan that
/// produced it. LP names join the member segments' names with `+`.
pub fn partition_topology(graph: &Arc<SocGraph>) -> SimResult<(ShardTopology, PartitionPlan)> {
    let plan = plan_partition(graph)?;
    let mut topo = ShardTopology::new();
    for (lp, segs) in plan.groups.iter().enumerate() {
        let name = segs
            .iter()
            .map(|&s| graph.segments[s].name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        let (g, p) = (Arc::clone(graph), plan.clone());
        let idx = topo.add_lp(&name, move |sim, io| build_lp(&g, &p, lp, sim, io));
        let (g, p) = (Arc::clone(graph), plan.clone());
        topo.set_probe(idx, move |sim| probe_lp(&g, &p, lp, sim));
        let weight: u64 = segs
            .iter()
            .flat_map(|&s| graph.segments[s].parts.iter().map(|part| part.weight))
            .sum();
        topo.set_weight(idx, weight.max(1));
    }
    for link in &plan.links {
        let idx = topo.add_link(&link.name, link.from_lp, link.to_lp, link.latency);
        if let Some(cap) = link.capacity {
            topo.set_link_capacity(idx, cap);
        }
    }
    Ok((topo, plan))
}

/// A completed partitioned run.
#[derive(Debug, Clone)]
pub struct PartitionedRun {
    /// Per-LP reports, merge statistics, wall-clock time.
    pub report: ShardRunReport,
    /// The DSE-facing summary (bus words and errors aggregated from every
    /// segment's probe).
    pub metrics: RunMetrics,
    /// The cut that produced the topology.
    pub plan: PartitionPlan,
}

impl PartitionedRun {
    /// Total kernel events dispatched across all LPs.
    pub fn events(&self) -> u64 {
        self.report.total_dispatched()
    }

    /// Distill the critical-link report: per cut bridge, how often each of
    /// its two links' lookahead bound an LP horizon (from the run profile)
    /// and the per-direction traffic its stubs counted (from the probes).
    pub fn critical_links(&self) -> CriticalLinkReport {
        let prof = &self.report.profile;
        let stalled_windows: u64 = prof.links.iter().map(|l| l.bound_windows).sum();
        let mut bridges = Vec::new();
        for (b, links) in self.plan.bridge_links.iter().enumerate() {
            let Some((req, rsp)) = *links else { continue };
            let (Some(req_l), Some(rsp_l)) = (prof.links.get(req), prof.links.get(rsp)) else {
                continue;
            };
            let name = req_l
                .name
                .strip_suffix(":req")
                .unwrap_or(&req_l.name)
                .to_string();
            // The upstream stub lives in exactly one LP; its counters see
            // both directions (requests shipped, responses received).
            let mut traffic = BridgeTraffic {
                bridge: b,
                name: name.clone(),
                forward_lookahead_fs: req_l.min_latency_fs,
                return_lookahead_fs: rsp_l.min_latency_fs,
                forwarded: 0,
                forwarded_words: 0,
                returned: 0,
                returned_words: 0,
                req_bound_windows: req_l.bound_windows,
                rsp_bound_windows: rsp_l.bound_windows,
            };
            for lp in &self.report.lps {
                let Some(stub) = lp.probe.get("bridges").and_then(|bs| bs.get(&name)) else {
                    continue;
                };
                traffic.forwarded += stub.get("forwarded").and_then(ju64_of).unwrap_or(0);
                traffic.forwarded_words +=
                    stub.get("forwarded_words").and_then(ju64_of).unwrap_or(0);
                traffic.returned += stub.get("returned").and_then(ju64_of).unwrap_or(0);
                traffic.returned_words += stub.get("returned_words").and_then(ju64_of).unwrap_or(0);
            }
            bridges.push(traffic);
        }
        bridges.sort_by(|a, b| {
            b.bound_windows()
                .cmp(&a.bound_windows())
                .then(a.bridge.cmp(&b.bridge))
        });
        let streams = prof
            .links
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                matches!(
                    self.plan.links.get(i).map(|l| l.kind),
                    Some(LinkKind::Stream(_))
                )
            })
            .map(|(_, l)| l.clone())
            .collect();
        CriticalLinkReport {
            bridges,
            streams,
            rounds: self.report.rounds,
            stalled_windows,
        }
    }

    /// The parallel-efficiency report of the run (per-LP busy/blocked
    /// fractions and load imbalance versus the declared [`Part::weight`]s).
    pub fn efficiency(&self) -> EfficiencyReport {
        self.report.profile.efficiency()
    }
}

/// Per-direction traffic and lookahead of one cut bridge, joined from the
/// run profile (which link bound horizons) and the stub probes (message
/// and word counts).
#[derive(Debug, Clone, PartialEq)]
pub struct BridgeTraffic {
    /// Bridge index in [`SocGraph::bridges`].
    pub bridge: usize,
    /// Bridge name.
    pub name: String,
    /// Request-link lookahead (forward latency), femtoseconds.
    pub forward_lookahead_fs: u64,
    /// Response-link lookahead (return latency), femtoseconds.
    pub return_lookahead_fs: u64,
    /// Requests forwarded across the cut (upstream → downstream).
    pub forwarded: u64,
    /// Payload words those requests carried.
    pub forwarded_words: u64,
    /// Responses returned across the cut (downstream → upstream).
    pub returned: u64,
    /// Payload words those responses carried.
    pub returned_words: u64,
    /// Windows in which the request link's lookahead bound a horizon.
    pub req_bound_windows: u64,
    /// Windows in which the response link's lookahead bound a horizon.
    pub rsp_bound_windows: u64,
}

impl BridgeTraffic {
    /// Total windows either direction of this bridge was the bottleneck.
    pub fn bound_windows(&self) -> u64 {
        self.req_bound_windows + self.rsp_bound_windows
    }
}

/// Which cut's lookahead limits the achievable speedup: cut bridges
/// sorted most-binding first, plus stream links with their profile
/// counters, against the run's total round count.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalLinkReport {
    /// Cut bridges, descending by [`BridgeTraffic::bound_windows`] (ties
    /// by bridge index).
    pub bridges: Vec<BridgeTraffic>,
    /// Stream links with their profile counters (in stream order).
    pub streams: Vec<LinkProfile>,
    /// Synchronization rounds in the run.
    pub rounds: u64,
    /// Total link-bound windows across all links — how often any cut's
    /// lookahead (rather than the window cap or end horizon) was the
    /// limit.
    pub stalled_windows: u64,
}

impl CriticalLinkReport {
    /// The bridge that bound horizons most often, if any did.
    pub fn bounding(&self) -> Option<&BridgeTraffic> {
        self.bridges.first().filter(|b| b.bound_windows() > 0)
    }

    /// JSON rendering (bench artifacts and history records).
    pub fn json(&self) -> Json {
        let bridges = self
            .bridges
            .iter()
            .map(|b| {
                Json::obj()
                    .with("bridge", ju64(b.bridge as u64))
                    .with("name", Json::from(b.name.as_str()))
                    .with("forward_lookahead_fs", ju64(b.forward_lookahead_fs))
                    .with("return_lookahead_fs", ju64(b.return_lookahead_fs))
                    .with("forwarded", ju64(b.forwarded))
                    .with("forwarded_words", ju64(b.forwarded_words))
                    .with("returned", ju64(b.returned))
                    .with("returned_words", ju64(b.returned_words))
                    .with("req_bound_windows", ju64(b.req_bound_windows))
                    .with("rsp_bound_windows", ju64(b.rsp_bound_windows))
            })
            .collect();
        let streams = self
            .streams
            .iter()
            .map(|l| {
                Json::obj()
                    .with("name", Json::from(l.name.as_str()))
                    .with("min_latency_fs", ju64(l.min_latency_fs))
                    .with("messages", ju64(l.messages))
                    .with("peak_window_messages", ju64(l.peak_window_messages))
                    .with("bound_windows", ju64(l.bound_windows))
            })
            .collect();
        Json::obj()
            .with("rounds", ju64(self.rounds))
            .with("stalled_windows", ju64(self.stalled_windows))
            .with("bridges", Json::Arr(bridges))
            .with("streams", Json::Arr(streams))
    }

    /// Human-readable rendering for the experiments CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let ns = |fs: u64| fs as f64 / 1e6;
        let mut out = String::new();
        match self.bounding() {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "critical link: bridge {:?} bound {} LP-windows over {} rounds \
                     (fwd lookahead {:.0} ns, rsp {:.0} ns)",
                    b.name,
                    b.bound_windows(),
                    self.rounds,
                    ns(b.forward_lookahead_fs),
                    ns(b.return_lookahead_fs),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "critical link: none — no cut bridge bound a horizon in {} rounds",
                    self.rounds
                );
            }
        }
        for b in &self.bridges {
            let _ = writeln!(
                out,
                "  bridge {:12} fwd {:6} msgs / {:8} words  rsp {:6} msgs / {:8} words  \
                 bound {:4} windows (req {}, rsp {})",
                b.name,
                b.forwarded,
                b.forwarded_words,
                b.returned,
                b.returned_words,
                b.bound_windows(),
                b.req_bound_windows,
                b.rsp_bound_windows,
            );
        }
        for l in &self.streams {
            let _ = writeln!(
                out,
                "  stream {:12} {:6} msgs (peak {}/window)  lookahead {:.0} ns  bound {:4} windows",
                l.name,
                l.messages,
                l.peak_window_messages,
                ns(l.min_latency_fs),
                l.bound_windows,
            );
        }
        out
    }
}

/// Partition `graph`, run it under `cfg`, and distill [`RunMetrics`] from
/// the per-segment bus probes. `cfg.shards == 1` is the single-LP oracle;
/// any other count is bit-identical to it by construction.
pub fn run_partitioned(graph: &Arc<SocGraph>, cfg: &ShardConfig) -> SimResult<PartitionedRun> {
    let (topo, plan) = partition_topology(graph)?;
    let report = drcf_kernel::prelude::run_sharded(topo, cfg)?;
    let mut bus_words = 0u64;
    let mut errors = 0u64;
    for lp in &report.lps {
        if let Some(segs) = lp.probe.get("segments").map(json_entries) {
            for (_, seg) in segs {
                bus_words += seg.get("words").and_then(ju64_of).unwrap_or(0);
                errors += seg.get("decode_errors").and_then(ju64_of).unwrap_or(0);
                errors += seg.get("injected_faults").and_then(ju64_of).unwrap_or(0);
            }
        }
    }
    let metrics = RunMetrics {
        makespan: SimDuration::fs(cfg.end.as_fs()),
        bus_words,
        errors,
        ok: true,
        ..RunMetrics::default()
    };
    Ok(PartitionedRun {
        report,
        metrics,
        plan,
    })
}

fn json_entries(j: &Json) -> Vec<(String, Json)> {
    j.as_obj().map(<[_]>::to_vec).unwrap_or_default()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use drcf_bus::prelude::{BusOp, MasterPort, Memory, MemoryConfig, Word};
    use drcf_kernel::snapshot::{self as snap, Snapshotable};

    /// Scripted bus master: issues the next access when the previous one
    /// answers. Snapshot-capable so per-slice state hashing covers it.
    struct Pinger {
        port: MasterPort,
        script: Vec<(BusOp, Addr, Word)>,
        pc: usize,
        reads: Vec<Word>,
        ok_replies: u64,
    }

    impl Pinger {
        fn next(&mut self, api: &mut Api<'_>) {
            if let Some(&(op, addr, v)) = self.script.get(self.pc) {
                self.pc += 1;
                match op {
                    BusOp::Read => {
                        self.port.read(api, addr, 1);
                    }
                    BusOp::Write => {
                        self.port.write(api, addr, vec![v]);
                    }
                }
            }
        }
    }

    impl Component for Pinger {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match &msg.kind {
                MsgKind::Start => self.next(api),
                _ => {
                    if let Ok(r) = self.port.take_response(api, msg) {
                        if r.is_ok() {
                            self.ok_replies += 1;
                        }
                        if r.op == BusOp::Read && r.is_ok() {
                            self.reads.push(r.data[0]);
                        }
                        self.next(api);
                    }
                }
            }
        }

        fn snapshot(&mut self) -> SimResult<Json> {
            Ok(Json::obj()
                .with("port", self.port.snapshot_json())
                .with("pc", ju64(self.pc as u64))
                .with(
                    "reads",
                    Json::Arr(self.reads.iter().map(|&w| ju64(w)).collect()),
                )
                .with("ok_replies", ju64(self.ok_replies)))
        }

        fn restore(&mut self, state: &Json) -> SimResult<()> {
            self.port.restore_json(snap::field(state, "port")?)?;
            self.pc = snap::usize_field(state, "pc")?;
            self.reads = snap::arr_field(state, "reads")?
                .iter()
                .filter_map(ju64_of)
                .collect();
            self.ok_replies = snap::u64_field(state, "ok_replies")?;
            Ok(())
        }
    }

    fn pinger_part(name: &str, script: Vec<(BusOp, Addr, Word)>) -> Part {
        let owned = name.to_string();
        Part::new(name, move |sim, ctx| {
            let bus = ctx.bus()?;
            Ok(sim.add(
                &owned,
                Pinger {
                    port: MasterPort::new(bus, 1),
                    script: script.clone(),
                    pc: 0,
                    reads: Vec::new(),
                    ok_replies: 0,
                },
            ))
        })
        .with_probe(|sim, id| {
            let p = sim.get::<Pinger>(id);
            Ok(Json::obj().with("ok_replies", ju64(p.ok_replies)).with(
                "reads",
                Json::Arr(p.reads.iter().map(|&w| ju64(w)).collect()),
            ))
        })
        .with_weight(4)
    }

    fn mem_part(name: &str, base: Addr, words: usize) -> Part {
        let cfg = MemoryConfig {
            base,
            size_words: words,
            ..MemoryConfig::default()
        };
        let timing = cfg.slave_timing();
        let owned = name.to_string();
        Part::new(name, move |sim, _ctx| {
            Ok(sim.add(
                &owned,
                Memory::new(MemoryConfig {
                    base,
                    size_words: words,
                    ..MemoryConfig::default()
                }),
            ))
        })
        .with_claim(base, base + words as Addr - 1)
        .with_timing(timing)
    }

    /// Two bus segments joined by one bridge; the upstream master reaches
    /// the downstream memory through the bridge window.
    fn bridged_graph(cfg: BridgeConfig) -> SocGraph {
        let mut g = SocGraph::new();
        let cpu = g.add_segment("cpu", Some(Default::default()));
        let periph = g.add_segment("periph", Some(Default::default()));
        g.add_part(
            cpu,
            pinger_part(
                "pinger",
                vec![
                    (BusOp::Write, 0x1_0040, 777),
                    (BusOp::Read, 0x1_0040, 0),
                    (BusOp::Write, 0x1_0041, 9),
                    (BusOp::Read, 0x1_0041, 0),
                ],
            ),
        );
        g.add_part(cpu, mem_part("local_mem", 0x0000, 0x100));
        g.add_part(periph, mem_part("remote_mem", 0x1_0000, 0x1000));
        g.add_bridge("bridge", cfg, cpu, periph, (0x1_0000, 0x1_FFFF));
        g
    }

    fn run(graph: &Arc<SocGraph>, shards: usize) -> PartitionedRun {
        let cfg = ShardConfig::to(SimTime::ZERO + SimDuration::us(4))
            .shards(shards)
            .hash_slices(true);
        run_partitioned(graph, &cfg).expect("partitioned run")
    }

    fn pinger_reads(r: &PartitionedRun) -> Vec<u64> {
        r.report
            .lps
            .iter()
            .find_map(|lp| {
                lp.probe
                    .get("parts")
                    .and_then(|p| p.get("pinger"))
                    .and_then(|p| p.get("reads"))
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().filter_map(ju64_of).collect())
            })
            .unwrap_or_default()
    }

    #[test]
    fn bridge_cut_is_bit_identical_to_single_lp_oracle() {
        let graph = Arc::new(bridged_graph(BridgeConfig::default()));
        let plan = plan_partition(&graph).expect("plan");
        assert_eq!(plan.lp_count(), 2, "one LP per segment");
        assert_eq!(plan.cut, vec![0]);
        assert!(plan.local.is_empty());
        assert_eq!(plan.links.len(), 2, "request + response links");
        let oracle = run(&graph, 1);
        assert_eq!(oracle.report.shards, 1);
        assert_eq!(
            pinger_reads(&oracle),
            vec![777, 9],
            "writes must read back through the cut bridge"
        );
        assert!(oracle.metrics.bus_words > 0);
        let par = run(&graph, 2);
        assert!(
            oracle.report.same_outcome(&par.report),
            "diverged at {:?}",
            oracle.report.first_divergence(&par.report)
        );
        assert_eq!(oracle.metrics, par.metrics);
    }

    #[test]
    fn zero_latency_bridge_falls_back_to_one_lp_with_typed_reason() {
        // 2 GHz-class bridge clock: one cycle rounds to zero femtoseconds,
        // so the bridge carries no usable lookahead and cannot be cut.
        let cfg = BridgeConfig {
            forward_cycles: 1,
            clock_mhz: 2_000_000_000,
            ..BridgeConfig::default()
        };
        assert_eq!(cfg.min_latency(), SimDuration::ZERO);
        let graph = Arc::new(bridged_graph(cfg));
        let plan = plan_partition(&graph).expect("plan");
        assert_eq!(plan.lp_count(), 1, "segments merged into one LP");
        assert!(plan.cut.is_empty());
        assert_eq!(plan.local.len(), 1);
        assert!(
            plan.local[0].reason.contains("zero forward lookahead"),
            "reason: {}",
            plan.local[0].reason
        );
        // The merged system still runs (with the in-process BusBridge) and
        // still reads back its writes.
        let r = run(&graph, 2);
        assert_eq!(r.report.shards, 1, "a single LP clamps to one shard");
        assert_eq!(pinger_reads(&r), vec![777, 9]);
    }

    #[test]
    fn zero_return_lookahead_also_merges() {
        let cfg = BridgeConfig {
            return_cycles: 0,
            ..BridgeConfig::default()
        };
        assert_eq!(cfg.return_latency(), SimDuration::ZERO);
        let plan = plan_partition(&bridged_graph(cfg)).expect("plan");
        assert_eq!(plan.lp_count(), 1);
        assert!(plan.local[0].reason.contains("zero return lookahead"));
    }

    #[test]
    fn bridge_cycle_cuts_both_directions() {
        let mut g = SocGraph::new();
        let a = g.add_segment("a", Some(Default::default()));
        let b = g.add_segment("b", Some(Default::default()));
        g.add_part(
            a,
            pinger_part(
                "pinger",
                vec![(BusOp::Write, 0x1_0000, 41), (BusOp::Read, 0x1_0000, 0)],
            ),
        );
        g.add_part(a, mem_part("mem_a", 0x0000, 0x100));
        // The reverse pinger lives on b and reaches a's memory through the
        // reverse bridge.
        g.add_part(
            b,
            pinger_part(
                "rev_pinger",
                vec![(BusOp::Write, 0x0010, 42), (BusOp::Read, 0x0010, 0)],
            ),
        );
        g.add_part(b, mem_part("mem_b", 0x1_0000, 0x100));
        g.add_bridge(
            "a_to_b",
            BridgeConfig::default(),
            a,
            b,
            (0x1_0000, 0x1_FFFF),
        );
        g.add_bridge("b_to_a", BridgeConfig::default(), b, a, (0x0000, 0x0FFF));
        let graph = Arc::new(g);
        let plan = plan_partition(&graph).expect("plan");
        assert_eq!(plan.lp_count(), 2);
        assert_eq!(plan.cut, vec![0, 1], "both directions cut");
        assert_eq!(plan.links.len(), 4);
        let oracle = run(&graph, 1);
        let par = run(&graph, 2);
        assert!(
            oracle.report.same_outcome(&par.report),
            "diverged at {:?}",
            oracle.report.first_divergence(&par.report)
        );
        // Each pinger read back what it wrote across its bridge.
        let reads: Vec<Vec<u64>> = oracle
            .report
            .lps
            .iter()
            .flat_map(|lp| {
                ["pinger", "rev_pinger"].into_iter().filter_map(|name| {
                    lp.probe
                        .get("parts")
                        .and_then(|p| p.get(name))
                        .and_then(|p| p.get("reads"))
                        .and_then(Json::as_arr)
                        .map(|a| a.iter().filter_map(ju64_of).collect())
                })
            })
            .collect();
        assert_eq!(reads, vec![vec![41], vec![42]]);
    }

    #[test]
    fn no_bridge_graph_is_one_inline_lp() {
        let mut g = SocGraph::new();
        let seg = g.add_segment("solo", Some(Default::default()));
        g.add_part(
            seg,
            pinger_part(
                "pinger",
                vec![(BusOp::Write, 0x10, 5), (BusOp::Read, 0x10, 0)],
            ),
        );
        g.add_part(seg, mem_part("mem", 0x0000, 0x100));
        let graph = Arc::new(g);
        let plan = plan_partition(&graph).expect("plan");
        assert_eq!(plan.lp_count(), 1);
        assert!(plan.links.is_empty());
        // Asking for 4 shards clamps to the single LP: the inline oracle
        // path, one round, no cross-shard messages.
        let r = run(&graph, 4);
        assert_eq!(r.report.shards, 1);
        assert_eq!(r.report.messages, 0);
        assert_eq!(pinger_reads(&r), vec![5]);
    }

    #[test]
    fn zero_latency_stream_is_a_typed_refusal() {
        let mut g = SocGraph::new();
        let s0 = g.add_segment("t0", None);
        let s1 = g.add_segment("t1", None);
        let p0 = g.add_part(
            s0,
            Part::new("n0", |sim, _| Ok(sim.add("n0", NullComponent))),
        );
        let p1 = g.add_part(
            s1,
            Part::new("n1", |sim, _| Ok(sim.add("n1", NullComponent))),
        );
        g.add_stream("wire", p0, p1, SimDuration::ZERO);
        let err = plan_partition(&g).expect_err("zero-latency stream");
        assert_eq!(err.kind, SimErrorKind::Validation);
        assert!(err.message.contains("zero latency"), "{}", err.message);
    }

    #[test]
    fn critical_link_report_names_the_bounding_bridge_with_traffic() {
        let graph = Arc::new(bridged_graph(BridgeConfig::default()));
        // A window cap far above the bridge's ~20 ns lookahead keeps the
        // cut links the strictly-binding horizon term.
        let cfg = ShardConfig::to(SimTime::ZERO + SimDuration::us(4))
            .shards(2)
            .hash_slices(true)
            .window(SimDuration::us(1));
        let r = run_partitioned(&graph, &cfg).expect("partitioned run");
        let cl = r.critical_links();
        assert_eq!(cl.rounds, r.report.rounds);
        assert_eq!(cl.bridges.len(), 1);
        assert!(cl.streams.is_empty());
        let b = &cl.bridges[0];
        assert_eq!(b.name, "bridge");
        assert_eq!(b.bridge, 0);
        // The 4-op script forwards 4 requests and returns 4 responses.
        assert_eq!(b.forwarded, 4);
        assert_eq!(b.returned, 4);
        // Two writes of one word ([op, addr, burst, prio, w]) and two
        // reads ([op, addr, burst, prio]) forward; every response is
        // [status, op, addr] plus the read payload.
        assert_eq!(b.forwarded_words, 2 * 5 + 2 * 4);
        assert_eq!(b.returned_words, 4 * 3 + 2);
        assert_eq!(
            b.forward_lookahead_fs,
            BridgeConfig::default().min_latency().as_fs()
        );
        assert_eq!(
            b.return_lookahead_fs,
            BridgeConfig::default().return_latency().as_fs()
        );
        // The short default window keeps the cut's lookahead binding.
        let bounding = cl.bounding().expect("a bridge bound some horizon");
        assert_eq!(bounding.name, "bridge");
        assert_eq!(
            cl.stalled_windows,
            b.req_bound_windows + b.rsp_bound_windows
        );
        // Rendering names the bridge and its traffic for the CLI.
        let text = cl.render();
        assert!(text.contains("critical link: bridge \"bridge\""), "{text}");
        assert!(text.contains("fwd      4 msgs"), "{text}");
        // JSON carries the same counts for BENCH_history records.
        let j = cl.json();
        let jb = &j.get("bridges").and_then(Json::as_arr).expect("bridges")[0];
        assert_eq!(jb.get("forwarded").and_then(ju64_of), Some(4));
        assert_eq!(jb.get("returned_words").and_then(ju64_of), Some(14));
    }

    #[test]
    fn critical_link_report_sorts_bridges_most_binding_first() {
        // Hand-built run: two cut bridges whose profile counters disagree
        // about who bound more windows; the report must sort descending
        // and break ties by bridge index.
        let mk_link = |i: usize, name: &str, bound: u64| LinkProfile {
            link: i,
            name: name.to_string(),
            from: 0,
            to: 1,
            min_latency_fs: 1_000_000,
            messages: 10,
            peak_window_messages: 2,
            bound_windows: bound,
        };
        let mk_planned = |name: &str, kind: LinkKind| PlannedLink {
            name: name.to_string(),
            from_lp: 0,
            to_lp: 1,
            latency: SimDuration::ns(1),
            kind,
            capacity: None,
        };
        let profile = ShardProfile {
            links: vec![
                mk_link(0, "a:req", 1),
                mk_link(1, "a:rsp", 2),
                mk_link(2, "b:req", 4),
                mk_link(3, "b:rsp", 0),
                mk_link(4, "wire", 3),
            ],
            rounds: 20,
            ..ShardProfile::default()
        };
        let report = ShardRunReport {
            rounds: 20,
            profile,
            ..ShardRunReport::default()
        };
        let plan = PartitionPlan {
            links: vec![
                mk_planned("a:req", LinkKind::BridgeRequest(0)),
                mk_planned("a:rsp", LinkKind::BridgeResponse(0)),
                mk_planned("b:req", LinkKind::BridgeRequest(1)),
                mk_planned("b:rsp", LinkKind::BridgeResponse(1)),
                mk_planned("wire", LinkKind::Stream(0)),
            ],
            bridge_links: vec![Some((0, 1)), Some((2, 3))],
            cut: vec![0, 1],
            ..PartitionPlan::default()
        };
        let run = PartitionedRun {
            report,
            metrics: RunMetrics::default(),
            plan,
        };
        let cl = run.critical_links();
        assert_eq!(cl.bridges.len(), 2);
        // b bound 4 windows, a bound 3: b first despite higher index.
        assert_eq!(cl.bridges[0].name, "b");
        assert_eq!(cl.bridges[0].bound_windows(), 4);
        assert_eq!(cl.bridges[1].name, "a");
        assert_eq!(cl.streams.len(), 1);
        assert_eq!(cl.streams[0].name, "wire");
        assert_eq!(cl.stalled_windows, 1 + 2 + 4 + 3);
        assert_eq!(cl.bounding().map(|b| b.bridge), Some(1));
    }

    #[test]
    fn efficiency_report_comes_from_the_run_profile() {
        let graph = Arc::new(bridged_graph(BridgeConfig::default()));
        let r = run(&graph, 2);
        let eff = r.efficiency();
        assert_eq!(eff.lps.len(), 2);
        // Segment LPs are named after their segments; weights come from
        // the declared parts (pinger has weight 4, memories default 1).
        assert_eq!(eff.lps[0].name, "cpu");
        assert_eq!(eff.lps[0].weight, 5);
        assert_eq!(eff.lps[1].name, "periph");
        assert_eq!(eff.lps[1].weight, 1);
        for lp in &eff.lps {
            assert!(lp.busy_fraction >= 0.0 && lp.busy_fraction <= 1.0);
            assert!((lp.busy_fraction + lp.blocked_fraction - 1.0).abs() < 1e-9);
        }
        assert!(eff.parallel_efficiency > 0.0 && eff.parallel_efficiency <= 1.0);
        assert!(eff.load_imbalance >= 1.0);
    }

    #[test]
    fn malformed_graphs_fail_with_typed_errors() {
        // Dangling bridge segment.
        let mut g = SocGraph::new();
        g.add_segment("only", Some(Default::default()));
        g.add_bridge("b", BridgeConfig::default(), 0, 7, (0, 10));
        assert_eq!(
            plan_partition(&g).expect_err("dangling").kind,
            SimErrorKind::Validation
        );
        // Bridge between bus-less segments.
        let mut g = SocGraph::new();
        g.add_segment("x", None);
        g.add_segment("y", None);
        g.add_bridge("b", BridgeConfig::default(), 0, 1, (0, 10));
        let err = plan_partition(&g).expect_err("no buses");
        assert!(err.message.contains("requires buses"), "{}", err.message);
        // Self-bridge.
        let mut g = SocGraph::new();
        g.add_segment("x", Some(Default::default()));
        g.add_bridge("b", BridgeConfig::default(), 0, 0, (0, 10));
        assert!(plan_partition(&g).is_err());
        // Empty graph.
        assert!(plan_partition(&SocGraph::new()).is_err());
    }
}
