//! Profiling — the flow's partitioning input.
//!
//! The paper (§5, design flow): "The compiler tools and profiling
//! information may be used to determine which parts of an application are
//! most suitable for implementing with dynamically reconfigurable
//! hardware. This is done in the partitioning phase of the design flow."
//!
//! Two profilers are provided:
//!
//! * [`asap_profile`] — analytic: an ASAP schedule of the task graph under
//!   unlimited parallelism (each block still serializes its own tasks),
//!   yielding per-block busy fractions **and pairwise temporal overlap**.
//!   This is the spec-level profiling the partitioning rules consume.
//! * [`measured_busy_fractions`] — measured: post-simulation busy
//!   fractions of standalone accelerators.

use drcf_bus::prelude::SlaveAdapter;
use drcf_kernel::prelude::{SimDuration, SimError, SimErrorKind, SimResult, SimTime};
use drcf_transform::prelude::{BlockProfile, ProfileData};

use crate::accelerator::KernelAccelerator;
use crate::builder::BuiltSoc;
use crate::tasks::{TaskGraph, TaskKind};
use crate::workloads::Workload;

/// Cycle estimate of one task for the analytic schedule, including data
/// transfer (2 bus cycles per word, in and out) for hardware tasks.
pub fn estimate_task_cycles(graph: &TaskGraph, id: usize, workload: &Workload) -> u64 {
    match &graph.tasks[id].kind {
        TaskKind::Software { cycles } => *cycles,
        TaskKind::Hardware {
            accel, input_words, ..
        } => {
            let kind = workload
                .accels
                .iter()
                .find(|a| &a.name == accel)
                .map(|a| &a.kind);
            let compute = kind
                .map(|k| k.compute_cycles(*input_words as u64))
                .unwrap_or(*input_words as u64);
            compute + 4 * *input_words as u64
        }
    }
}

/// One block's busy windows in the analytic schedule.
#[derive(Debug, Clone, Default)]
pub struct BlockWindows {
    /// Block (accelerator) name.
    pub name: String,
    /// Busy intervals in schedule cycles, non-overlapping, sorted.
    pub windows: Vec<(u64, u64)>,
}

impl BlockWindows {
    /// Total busy cycles.
    pub fn busy(&self) -> u64 {
        self.windows.iter().map(|&(s, e)| e - s).sum()
    }

    /// Overlapping cycles with another block.
    pub fn overlap_with(&self, other: &BlockWindows) -> u64 {
        let mut total = 0;
        for &(s0, e0) in &self.windows {
            for &(s1, e1) in &other.windows {
                let lo = s0.max(s1);
                let hi = e0.min(e1);
                if hi > lo {
                    total += hi - lo;
                }
            }
        }
        total
    }
}

/// ASAP-schedule the workload and derive per-block profiles.
///
/// Software tasks run on an unbounded CPU pool (they never constrain
/// hardware concurrency); each hardware block serializes its own tasks.
///
/// Library workload graphs are acyclic by construction; a hand-built
/// cyclic graph is reported as a validation error rather than a panic.
pub fn asap_profile(workload: &Workload) -> SimResult<(ProfileData, u64)> {
    let graph = &workload.graph;
    let order = graph.topo_order().map_err(|e| {
        SimError::new(
            SimErrorKind::Validation,
            format!("cannot profile a cyclic task graph: {e}"),
        )
    })?;
    let mut finish = vec![0u64; graph.tasks.len()];
    let mut block_free: Vec<(String, u64)> = Vec::new();
    let mut windows: Vec<BlockWindows> = workload
        .accels
        .iter()
        .map(|a| BlockWindows {
            name: a.name.clone(),
            windows: vec![],
        })
        .collect();

    let mut makespan = 0u64;
    for id in order {
        let ready = graph.tasks[id]
            .deps
            .iter()
            .map(|&d| finish[d])
            .max()
            .unwrap_or(0);
        let dur = estimate_task_cycles(graph, id, workload);
        let start = match &graph.tasks[id].kind {
            TaskKind::Software { .. } => ready,
            TaskKind::Hardware { accel, .. } => {
                let free = block_free
                    .iter()
                    .find(|(n, _)| n == accel)
                    .map(|&(_, t)| t)
                    .unwrap_or(0);
                ready.max(free)
            }
        };
        let end = start + dur;
        finish[id] = end;
        makespan = makespan.max(end);
        if let TaskKind::Hardware { accel, .. } = &graph.tasks[id].kind {
            if let Some(e) = block_free.iter_mut().find(|(n, _)| n == accel) {
                e.1 = end;
            } else {
                block_free.push((accel.clone(), end));
            }
            if let Some(w) = windows.iter_mut().find(|w| &w.name == accel) {
                w.windows.push((start, end));
            }
        }
    }

    let makespan = makespan.max(1);
    // `windows` was built by mapping over `accels`, so the two line up.
    let blocks = workload
        .accels
        .iter()
        .zip(&windows)
        .map(|(a, w)| BlockProfile {
            instance: a.name.clone(),
            busy_fraction: w.busy() as f64 / makespan as f64,
            gate_count: a.kind.gate_count(),
            change_prone: false,
        })
        .collect();
    let mut overlap = Vec::new();
    for i in 0..windows.len() {
        for j in (i + 1)..windows.len() {
            let o = windows[i].overlap_with(&windows[j]);
            overlap.push((
                windows[i].name.clone(),
                windows[j].name.clone(),
                o as f64 / makespan as f64,
            ));
        }
    }
    Ok((ProfileData { blocks, overlap }, makespan))
}

/// Measured busy fractions of standalone accelerators after a run.
pub fn measured_busy_fractions(soc: &BuiltSoc, now: SimTime) -> Vec<(String, f64)> {
    let elapsed = now.since(SimTime::ZERO);
    soc.standalone
        .iter()
        .map(|(name, id)| {
            let adapter = soc.sim.get::<SlaveAdapter<KernelAccelerator>>(*id);
            let busy: SimDuration = adapter.busy_time;
            (name.clone(), busy.fraction_of(elapsed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_soc, run_soc, SocSpec};
    use crate::workloads::{video_pipeline, wireless_receiver};

    #[test]
    fn serial_pipeline_has_near_zero_overlap() {
        let w = wireless_receiver(3, 64);
        let (profile, makespan) = asap_profile(&w).unwrap();
        assert!(makespan > 0);
        assert_eq!(profile.blocks.len(), 3);
        for (a, b, f) in &profile.overlap {
            assert!(
                *f < 1e-9,
                "serial chain blocks {a}/{b} must not overlap, got {f}"
            );
        }
        for b in &profile.blocks {
            assert!(b.busy_fraction > 0.0 && b.busy_fraction < 1.0, "{b:?}");
        }
    }

    #[test]
    fn parallel_branches_show_overlap() {
        // video pipeline: DCT and motion estimation depend on the same
        // capture task and can run in parallel.
        let w = video_pipeline(3, 64);
        let (profile, _) = asap_profile(&w).unwrap();
        let dct_me = profile.overlap_of("dct", "motion_est");
        assert!(dct_me > 0.0, "parallel branches must overlap");
        let dct_aes = profile.overlap_of("dct", "aes");
        assert!(dct_aes < 1e-9, "dependent stages must not overlap");
    }

    #[test]
    fn busy_fractions_sum_to_at_most_schedule() {
        let w = video_pipeline(2, 32);
        let (profile, _) = asap_profile(&w).unwrap();
        for b in &profile.blocks {
            assert!(b.busy_fraction <= 1.0);
        }
    }

    #[test]
    fn measured_profile_matches_standalone_blocks() {
        let w = wireless_receiver(1, 32);
        let soc = build_soc(&w, &SocSpec::default()).unwrap();
        let (m, soc) = run_soc(soc);
        assert!(m.ok);
        let now = soc.sim.now();
        let measured = measured_busy_fractions(&soc, now);
        assert_eq!(measured.len(), 3);
        for (name, f) in &measured {
            assert!(*f > 0.0 && *f <= 1.0, "{name}: {f}");
        }
    }
}
