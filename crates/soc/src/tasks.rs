//! Application task graphs and their compilation to CPU programs.
//!
//! The executable specification of the ADRIATIC flow (Fig. 3) is an
//! application decomposed into dependent tasks, each mapped to software or
//! to a hardware block. Compiling a mapped graph produces the bus-level
//! control program the CPU model executes: write inputs, kick the block,
//! poll its status, read results.

use drcf_bus::prelude::Addr;

use crate::accelerator::{regs, status};
use crate::cpu::Instr;

/// Task identifier within one graph.
pub type TaskId = usize;

/// What a task is mapped to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskKind {
    /// Runs on the CPU for the given number of CPU cycles.
    Software {
        /// CPU cycles.
        cycles: u64,
    },
    /// Runs on a named hardware block.
    Hardware {
        /// Accelerator instance name (resolved through bindings).
        accel: String,
        /// Input words transferred to the block.
        input_words: usize,
        /// Seed for deterministic input generation.
        seed: u64,
    },
}

/// One task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Human-readable name.
    pub name: String,
    /// Mapping.
    pub kind: TaskKind,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
}

/// A dependency graph of tasks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    /// Tasks; ids are indices.
    pub tasks: Vec<Task>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a task; returns its id.
    pub fn add(&mut self, name: &str, kind: TaskKind, deps: Vec<TaskId>) -> TaskId {
        for &d in &deps {
            assert!(d < self.tasks.len(), "dependency {d} does not exist yet");
        }
        self.tasks.push(Task {
            name: name.to_string(),
            kind,
            deps,
        });
        self.tasks.len() - 1
    }

    /// Topological order (Kahn); error when the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, String> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                if d >= n {
                    return Err(format!("dependency {d} out of range"));
                }
            }
            indeg[i] = t.deps.len();
        }
        let mut ready: Vec<TaskId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut cursor = 0;
        while cursor < ready.len() {
            let t = ready[cursor];
            cursor += 1;
            order.push(t);
            for (j, task) in self.tasks.iter().enumerate() {
                if task.deps.contains(&t) {
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        ready.push(j);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err("task graph has a cycle".into())
        }
    }

    /// Names of the distinct hardware blocks the graph uses.
    pub fn hardware_blocks(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for t in &self.tasks {
            if let TaskKind::Hardware { accel, .. } = &t.kind {
                if !out.contains(accel) {
                    out.push(accel.clone());
                }
            }
        }
        out
    }
}

/// Where a named accelerator lives on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelBinding {
    /// Instance name used by tasks.
    pub name: String,
    /// Base address of its register map.
    pub base: Addr,
    /// Data-window capacity in words.
    pub window_words: usize,
}

/// Deterministic input block for a hardware task.
pub fn task_input(seed: u64, words: usize) -> Vec<u64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..words)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 0xFFFF
        })
        .collect()
}

/// Burst size used when streaming data windows.
pub const DATA_BURST: usize = 16;

/// How hardware-task input/output windows move between memory and the
/// accelerators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyMode {
    /// The CPU generates input data in registers and burst-writes it
    /// straight into the accelerator window (the original model).
    CpuDirect,
    /// Input blocks live in system memory (pre-loaded at build time); the
    /// CPU burst-reads them and burst-writes the accelerator window.
    CpuViaMemory {
        /// Staging buffer base address in memory.
        staging_base: Addr,
    },
    /// Input blocks live in system memory; a DMA controller streams them
    /// into the accelerator window while the CPU only programs registers
    /// and polls completion (Fig. 1's DMA, put to work).
    Dma {
        /// DMA register block base.
        dma_base: Addr,
        /// Staging buffer base address in memory.
        staging_base: Addr,
    },
}

/// Compilation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// STATUS poll interval, CPU cycles.
    pub poll_interval_cycles: u64,
    /// Data-movement strategy.
    pub copy: CopyMode,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            poll_interval_cycles: 50,
            copy: CopyMode::CpuDirect,
        }
    }
}

/// Compile a mapped task graph into a CPU program (CPU-direct data
/// movement; see [`compile_with`] for the other strategies).
pub fn compile(
    graph: &TaskGraph,
    bindings: &[AccelBinding],
    poll_interval_cycles: u64,
) -> Result<Vec<Instr>, String> {
    compile_with(
        graph,
        bindings,
        &CompileOptions {
            poll_interval_cycles,
            copy: CopyMode::CpuDirect,
        },
    )
    .map(|(prog, _)| prog)
}

/// A compiled program plus the `(address, data)` memory pre-loads the
/// chosen [`CopyMode`] requires.
pub type CompiledProgram = (Vec<Instr>, Vec<(Addr, Vec<u64>)>);

/// Compile a mapped task graph into a CPU program plus the memory
/// pre-loads the chosen [`CopyMode`] requires.
///
/// Hardware tasks expand to: move the input window in (per the copy mode),
/// set LEN, kick CTRL, poll STATUS for DONE, reset STATUS, read the window
/// back. Staging buffers are packed per task from `staging_base` so every
/// task's input has a distinct, pre-loadable home.
pub fn compile_with(
    graph: &TaskGraph,
    bindings: &[AccelBinding],
    opts: &CompileOptions,
) -> Result<CompiledProgram, String> {
    let order = graph.topo_order()?;
    let mut prog = Vec::new();
    let mut preloads = Vec::new();
    let mut staging_cursor = match &opts.copy {
        CopyMode::CpuDirect => 0,
        CopyMode::CpuViaMemory { staging_base } => *staging_base,
        CopyMode::Dma { staging_base, .. } => *staging_base,
    };
    for id in order {
        match &graph.tasks[id].kind {
            TaskKind::Software { cycles } => prog.push(Instr::Compute(*cycles)),
            TaskKind::Hardware {
                accel,
                input_words,
                seed,
            } => {
                let b = bindings
                    .iter()
                    .find(|b| &b.name == accel)
                    .ok_or_else(|| format!("no binding for accelerator '{accel}'"))?;
                let words = (*input_words).min(b.window_words);
                let data = task_input(*seed, words);

                match &opts.copy {
                    CopyMode::CpuDirect => {
                        for (ci, chunk) in data.chunks(DATA_BURST).enumerate() {
                            prog.push(Instr::Write {
                                addr: b.base + regs::DATA + (ci * DATA_BURST) as u64,
                                data: chunk.to_vec(),
                            });
                        }
                    }
                    CopyMode::CpuViaMemory { .. } => {
                        let staging = staging_cursor;
                        staging_cursor += words as u64;
                        preloads.push((staging, data.clone()));
                        // Read each burst from memory, then write it on.
                        for ci in 0..words.div_ceil(DATA_BURST) {
                            let start = (ci * DATA_BURST) as u64;
                            let burst = DATA_BURST.min(words - ci * DATA_BURST);
                            prog.push(Instr::Read {
                                addr: staging + start,
                                burst,
                            });
                            prog.push(Instr::Write {
                                addr: b.base + regs::DATA + start,
                                data: data[ci * DATA_BURST..ci * DATA_BURST + burst].to_vec(),
                            });
                        }
                    }
                    CopyMode::Dma { dma_base, .. } => {
                        let staging = staging_cursor;
                        staging_cursor += words as u64;
                        preloads.push((staging, data.clone()));
                        // Program SRC/DST/LEN, kick, poll DONE.
                        prog.push(Instr::Write {
                            addr: dma_base + crate::dma_regs::SRC,
                            data: vec![staging],
                        });
                        prog.push(Instr::Write {
                            addr: dma_base + crate::dma_regs::DST,
                            data: vec![b.base + regs::DATA],
                        });
                        prog.push(Instr::Write {
                            addr: dma_base + crate::dma_regs::LEN,
                            data: vec![words as u64],
                        });
                        prog.push(Instr::Write {
                            addr: dma_base + crate::dma_regs::CTRL,
                            data: vec![drcf_bus::dma::ctrl::START_IRQ],
                        });
                        prog.push(Instr::WaitDmaIrq);
                    }
                }

                prog.push(Instr::Write {
                    addr: b.base + regs::LEN,
                    data: vec![words as u64],
                });
                prog.push(Instr::Write {
                    addr: b.base + regs::CTRL,
                    data: vec![1],
                });
                prog.push(Instr::Poll {
                    addr: b.base + regs::STATUS,
                    expect: status::DONE,
                    interval_cycles: opts.poll_interval_cycles,
                });
                // Reset status for the next invocation and read back.
                prog.push(Instr::Write {
                    addr: b.base + regs::STATUS,
                    data: vec![status::IDLE],
                });
                for ci in 0..words.div_ceil(DATA_BURST) {
                    let start = ci * DATA_BURST;
                    let burst = DATA_BURST.min(words - start);
                    prog.push(Instr::Read {
                        addr: b.base + regs::DATA + start as u64,
                        burst,
                    });
                }
            }
        }
    }
    Ok((prog, preloads))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw(accel: &str, words: usize) -> TaskKind {
        TaskKind::Hardware {
            accel: accel.into(),
            input_words: words,
            seed: 42,
        }
    }

    #[test]
    fn topo_order_respects_deps() {
        let mut g = TaskGraph::new();
        let a = g.add("a", TaskKind::Software { cycles: 10 }, vec![]);
        let b = g.add("b", TaskKind::Software { cycles: 10 }, vec![a]);
        let c = g.add("c", TaskKind::Software { cycles: 10 }, vec![a]);
        let d = g.add("d", TaskKind::Software { cycles: 10 }, vec![b, c]);
        let order = g.topo_order().unwrap();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        let a = g.add("a", TaskKind::Software { cycles: 1 }, vec![]);
        let _b = g.add("b", TaskKind::Software { cycles: 1 }, vec![a]);
        // Introduce a cycle manually.
        g.tasks[0].deps.push(1);
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn hardware_blocks_deduplicated_in_order() {
        let mut g = TaskGraph::new();
        g.add("t0", hw("fir", 8), vec![]);
        g.add("t1", hw("fft", 8), vec![]);
        g.add("t2", hw("fir", 8), vec![]);
        assert_eq!(
            g.hardware_blocks(),
            vec!["fir".to_string(), "fft".to_string()]
        );
    }

    #[test]
    fn task_input_is_deterministic_and_seed_sensitive() {
        assert_eq!(task_input(1, 8), task_input(1, 8));
        assert_ne!(task_input(1, 8), task_input(2, 8));
        assert_eq!(task_input(1, 8).len(), 8);
    }

    #[test]
    fn compile_expands_hardware_tasks() {
        let mut g = TaskGraph::new();
        g.add("pre", TaskKind::Software { cycles: 100 }, vec![]);
        g.add("filter", hw("fir", 20), vec![0]);
        let bindings = vec![AccelBinding {
            name: "fir".into(),
            base: 0x2000,
            window_words: 64,
        }];
        let prog = compile(&g, &bindings, 20).unwrap();
        // 1 compute + 2 data bursts (16 + 4) + LEN + CTRL + poll + status
        // reset + 2 readbacks = 9.
        assert_eq!(prog.len(), 9);
        assert!(matches!(prog[0], Instr::Compute(100)));
        assert!(matches!(
            prog[3],
            Instr::Write { addr, ref data } if addr == 0x2000 + regs::LEN && data == &vec![20]
        ));
        assert!(matches!(prog[5], Instr::Poll { expect, .. } if expect == status::DONE));
    }

    #[test]
    fn compile_missing_binding_errors() {
        let mut g = TaskGraph::new();
        g.add("t", hw("ghost", 4), vec![]);
        assert!(compile(&g, &[], 10).unwrap_err().contains("ghost"));
    }

    #[test]
    fn oversized_input_clamped_to_window() {
        let mut g = TaskGraph::new();
        g.add("t", hw("fir", 1000), vec![]);
        let bindings = vec![AccelBinding {
            name: "fir".into(),
            base: 0,
            window_words: 32,
        }];
        let prog = compile(&g, &bindings, 10).unwrap();
        let total_written: usize = prog
            .iter()
            .filter_map(|i| match i {
                Instr::Write { addr, data } if *addr >= regs::DATA && *addr < 100 => {
                    Some(data.len())
                }
                _ => None,
            })
            .sum();
        assert_eq!(total_written, 32);
    }
}
