//! Store-backed sweep serving: the cache-or-simulate core and the socket
//! server wrapping it.
//!
//! [`process_sweep`] is the whole service without the socket: look the
//! scenario up in the [`SnapshotStore`], restore the longest stored prefix
//! at or before the fork, extend and persist the chain if the fork is
//! beyond the tip, then answer every point either from the durable record
//! log or by warm-fork simulation (streaming each fresh record back to the
//! log as it lands). Any store poisoning — truncated link, bit flip,
//! re-parented delta, unreadable meta — is a typed error that triggers one
//! wipe-and-resimulate repair, so a corrupt store costs time, never a
//! wrong answer.
//!
//! [`SweepServer`] puts that behind a loopback TCP socket: connection
//! threads parse line-delimited JSON requests into a job queue; a worker
//! pool drains it; per-key locks (in-process) and leases (cross-process)
//! collapse concurrent identical requests into one simulation.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use drcf_dse::prelude::{sweep_warm_fork_resume, RunRecord, WarmFork};
use drcf_kernel::prelude::{
    ChainDoc, SimDuration, SimError, SimErrorKind, SimResult, SimTime, Snapshot,
};
use drcf_soc::prelude::{build_soc, restore_soc, run_soc_mut, BuiltSoc, Cpu, SocSpec, Workload};

use crate::protocol::{Reply, Request, SweepReply};
use crate::scenario::SweepRequest;
use crate::store::{SnapshotStore, StoreMeta, REBASE_PERIOD};

/// How often a lease waiter re-checks the store for the holder's results.
const LEASE_POLL: Duration = Duration::from_millis(25);

/// A store error that means "this entry is damaged", as opposed to an I/O
/// or environment failure: the repair is to wipe the entry and re-simulate.
fn is_poisoning(e: &SimError) -> bool {
    matches!(
        e.kind,
        SimErrorKind::SnapshotChain | SimErrorKind::Validation | SimErrorKind::Decode
    )
}

/// Run the scenario prefix cold (no store content) up to `fork`, filing the
/// resulting full snapshot as the chain's next link when it extends the tip.
fn cold_prefix(
    store: &SnapshotStore,
    key: u64,
    meta: &mut StoreMeta,
    w: &Workload,
    spec: &SocSpec,
    fork_ns: u64,
) -> SimResult<Snapshot> {
    let mut soc = build_soc(w, spec)?;
    soc.sim
        .run_until(SimTime::ZERO + SimDuration::ns(fork_ns))?;
    let snap = soc.sim.snapshot()?;
    if meta.links.last().is_none_or(|l| l.time_ns < fork_ns) {
        store.append_link(key, meta, &ChainDoc::Full(snap.clone()), fork_ns)?;
    }
    Ok(snap)
}

/// Produce the full fork snapshot for `(w, spec)` at `fork_ns`, reusing the
/// longest stored chain prefix at or before it and extending the stored
/// chain when the fork lies beyond the tip. Returns the snapshot plus how
/// many stored links were restored (0 = fully cold).
fn prefix_snapshot(
    store: &SnapshotStore,
    key: u64,
    w: &Workload,
    spec: &SocSpec,
    fork_ns: u64,
) -> SimResult<(Snapshot, usize)> {
    let mut meta = store.meta(key)?.unwrap_or_default();
    // Enter at the last full link at-or-before the fork; apply the deltas
    // that follow it. Links strictly increase in time, so this is the
    // longest usable prefix with bounded restore depth (REBASE_PERIOD).
    let usable = meta
        .links
        .iter()
        .take_while(|l| l.time_ns <= fork_ns)
        .count();
    let Some(entry) = meta.links[..usable].iter().rposition(|l| l.full) else {
        let snap = cold_prefix(store, key, &mut meta, w, spec, fork_ns)?;
        return Ok((snap, 0));
    };
    let base = match store.load_link(key, &meta.links[entry])? {
        ChainDoc::Full(s) => s,
        ChainDoc::Delta(_) => {
            return Err(SimError::new(
                SimErrorKind::SnapshotChain,
                "store link indexed as full parses as a delta",
            ))
        }
    };
    let mut soc = restore_soc(w, spec, &base)?;
    let mut deltas_since_full = 0usize;
    for link in &meta.links[entry + 1..usable] {
        match store.load_link(key, link)? {
            ChainDoc::Delta(d) => soc.sim.restore_delta(&d)?,
            ChainDoc::Full(_) => {
                return Err(SimError::new(
                    SimErrorKind::SnapshotChain,
                    "store link indexed as delta parses as a full snapshot",
                ))
            }
        }
        deltas_since_full += 1;
    }
    let restored = usable - entry;
    let tip = meta.links[usable - 1].clone();
    if tip.time_ns == fork_ns {
        // Standing exactly on the tip: materialize the full document.
        return Ok((soc.sim.snapshot()?, restored));
    }
    // Extend: run the gap, then file the extension as a delta off the tip
    // (or a full rebase link once the delta run gets long enough).
    soc.sim
        .run_until(SimTime::ZERO + SimDuration::ns(fork_ns))?;
    let snap = soc.sim.snapshot()?;
    let extends_chain = tip.time_ns == meta.links.last().map_or(0, |l| l.time_ns);
    if extends_chain {
        let doc = if deltas_since_full >= REBASE_PERIOD {
            ChainDoc::Full(snap.clone())
        } else {
            ChainDoc::Delta(soc.sim.snapshot_delta_from(tip.tip)?)
        };
        store.append_link(key, &mut meta, &doc, fork_ns)?;
    }
    Ok((snap, restored))
}

/// Evaluate the sweep's missing points from the fork snapshot, appending
/// each completed record to the durable log before it is reported.
fn run_missing(
    store: &SnapshotStore,
    key: u64,
    req: &SweepRequest,
    w: &Workload,
    spec: &SocSpec,
    fork: &Snapshot,
    done: &[Option<RunRecord>],
) -> Vec<RunRecord> {
    let fork_ns = req.fork_ns;
    sweep_warm_fork_resume(
        &req.points,
        fork,
        WarmFork { delta_chain: 2 },
        || restore_soc(w, spec, fork),
        |&clock: &u64, soc: &mut BuiltSoc| {
            let cpu = soc.cpu;
            soc.sim.get_mut::<Cpu>(cpu).set_clock_mhz(clock);
            let m = run_soc_mut(soc);
            RunRecord::from_metrics(
                "serve",
                vec![
                    ("clock_mhz".into(), clock.to_string()),
                    ("fork_ns".into(), fork_ns.to_string()),
                ],
                &m,
            )
        },
        done,
        &|i, rec| {
            // Best-effort durability: a failed append only costs resumability.
            let _ = store.append_record(key, fork_ns, req.points[i], rec);
        },
    )
}

/// Answer `req` entirely from the record log, if every point is there.
fn cached_reply(
    store: &SnapshotStore,
    key: u64,
    req: &SweepRequest,
) -> SimResult<Option<SweepReply>> {
    let (recovered, _torn) = store.records(key, req.fork_ns)?;
    let records: Option<Vec<RunRecord>> = req
        .points
        .iter()
        .map(|p| recovered.get(p).cloned())
        .collect();
    Ok(records.map(|records| SweepReply {
        key,
        from_cache: records.len(),
        simulated: 0,
        records,
    }))
}

/// Serve one sweep request against the store: the full cache-or-simulate
/// path, usable directly (benches, tests) or from the socket server.
///
/// Concurrency contract: requests for the same key from other threads of
/// this process serialize on the store's key lock, and from other
/// processes on the entry's lease file — so N racing identical requests
/// cost one simulation, and the losers return bit-identical records read
/// from the log the winner wrote.
pub fn process_sweep(store: &SnapshotStore, req: &SweepRequest) -> SimResult<SweepReply> {
    req.validate()?;
    let key = req.key();
    let lock = store.key_lock(key);
    let _guard = match lock.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let lease = loop {
        // Fully answered already (by us, another thread, or another
        // process)? Then no lease and no simulator are needed.
        if let Some(reply) = cached_reply(store, key, req).unwrap_or(None) {
            return Ok(reply);
        }
        match store.try_lease(key)? {
            Some(lease) => break lease,
            None => std::thread::sleep(LEASE_POLL),
        }
    };
    let (w, spec) = req.scenario();
    let attempt = |store: &SnapshotStore| -> SimResult<SweepReply> {
        let (fork, _restored) = prefix_snapshot(store, key, &w, &spec, req.fork_ns)?;
        let (recovered, _torn) = store.records(key, req.fork_ns)?;
        let done: Vec<Option<RunRecord>> = req
            .points
            .iter()
            .map(|p| recovered.get(p).cloned())
            .collect();
        let from_cache = done.iter().flatten().count();
        let records = run_missing(store, key, req, &w, &spec, &fork, &done);
        Ok(SweepReply {
            key,
            from_cache,
            simulated: req.points.len() - from_cache,
            records,
        })
    };
    match attempt(store) {
        Ok(reply) => {
            drop(lease);
            Ok(reply)
        }
        Err(e) if is_poisoning(&e) => {
            // The entry is damaged: wipe it (the lease file goes with the
            // directory, so dropping the guard now is a no-op), re-lease
            // the fresh entry so the repair stays exclusive, and simulate
            // cold. Corruption costs time, never a wrong answer.
            store.wipe(key)?;
            drop(lease);
            let _repair_lease = store.try_lease(key)?;
            attempt(store)
        }
        Err(e) => {
            drop(lease);
            Err(e)
        }
    }
}

/// One queued connection request awaiting a worker.
struct Job {
    req: SweepRequest,
    reply_tx: mpsc::Sender<Reply>,
}

struct Shared {
    store: SnapshotStore,
    queue: Mutex<std::collections::VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, std::collections::VecDeque<Job>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
        // Unblock the acceptor, which is parked in accept().
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running sweep server: acceptor + connection threads feeding a worker
/// pool through a queue, all over one loopback listener whose address is
/// published at `<store root>/serve.addr` for clients to discover.
pub struct SweepServer {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = match shared.available.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        };
        let reply = match process_sweep(&shared.store, &job.req) {
            Ok(r) => Reply::Sweep(r),
            Err(e) => Reply::from_error(&e),
        };
        // The connection may have hung up; the job is still done and stored.
        let _ = job.reply_tx.send(reply);
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match Request::parse(&line) {
            Err(e) => Reply::from_error(&e),
            Ok(Request::Ping) => Reply::Pong,
            Ok(Request::Shutdown) => Reply::Bye,
            Ok(Request::Sweep(req)) => {
                let (tx, rx) = mpsc::channel();
                shared.lock_queue().push_back(Job { req, reply_tx: tx });
                shared.available.notify_one();
                rx.recv().unwrap_or_else(|_| {
                    Reply::from_error(&SimError::new(
                        SimErrorKind::Internal,
                        "server worker pool stopped before answering",
                    ))
                })
            }
        };
        let bye = matches!(reply, Reply::Bye);
        let mut out = reply.to_json().to_string();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            break;
        }
        let _ = writer.flush();
        if bye {
            shared.request_stop();
            break;
        }
    }
}

impl SweepServer {
    /// Bind a loopback listener, publish its address at
    /// `<root>/serve.addr`, and start `workers` sweep workers.
    pub fn start(root: impl AsRef<Path>, workers: usize) -> SimResult<SweepServer> {
        let store = SnapshotStore::open(root.as_ref())?;
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| {
            SimError::new(SimErrorKind::Internal, format!("server bind failed: {e}"))
        })?;
        let addr = listener.local_addr().map_err(|e| {
            SimError::new(SimErrorKind::Internal, format!("server addr failed: {e}"))
        })?;
        std::fs::write(root.as_ref().join("serve.addr"), format!("{addr}\n")).map_err(|e| {
            SimError::new(
                SimErrorKind::Internal,
                format!("writing serve.addr failed: {e}"),
            )
        })?;
        let shared = Arc::new(Shared {
            store,
            queue: Mutex::new(std::collections::VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            addr,
        });
        let workers = workers.max(1);
        let pool: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // Connection threads are cheap and bounded by client
                    // count; they exit on EOF or server stop.
                    std::thread::spawn(move || connection_loop(&shared, stream));
                }
            })
        };
        Ok(SweepServer {
            shared,
            acceptor: Some(acceptor),
            workers: pool,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Direct access to the server's store (manifest writing, tests).
    pub fn store(&self) -> &SnapshotStore {
        &self.shared.store
    }

    /// Has a shutdown request been received (or [`SweepServer::shutdown`]
    /// called)?
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting work and join every thread. In-flight jobs finish
    /// first (workers drain the queue before observing the stop flag); the
    /// store manifest is refreshed on the way out as an inventory artifact.
    pub fn shutdown(mut self) {
        self.shared.request_stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let _ = self.shared.store.write_manifest();
    }

    /// Block until a client asks the server to shut down, then join.
    pub fn serve_forever(self) {
        while !self.stopping() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }
}

impl Drop for SweepServer {
    fn drop(&mut self) {
        self.shared.request_stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
