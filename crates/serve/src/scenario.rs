//! Canonical sweep scenarios and their content-addressed identity.
//!
//! A request names a scenario by *parameters*, not by opaque state: the
//! server realizes `(frames, samples)` into the canonical wireless-receiver
//! workload mapped onto the DRCF fabric, exactly the configuration the
//! `experiments` binary snapshots. Two requests with equal parameters
//! therefore produce byte-equal `(workload, spec)` pairs and hash to the
//! same store key on every process and machine — the precondition for
//! cross-client prefix sharing.

use drcf_kernel::prelude::{SimError, SimErrorKind, SimResult};
use drcf_kernel::{json, json::Json};
use drcf_soc::prelude::{
    scenario_fingerprint, wireless_receiver, Mapping, SocConfigPath, SocSpec, Workload,
};

/// A what-if sweep over the tail CPU clock: simulate the canonical
/// receiver scenario up to `fork_ns`, then fork once per point and finish
/// the run with the CPU retuned to that clock.
///
/// The clock is the one spec knob that is *static configuration rather
/// than snapshot state*: every fork restores the identical prefix
/// (identical state hash), then [`drcf_soc::prelude::Cpu::set_clock_mhz`]
/// retunes the tail — so all points of all requests share one stored
/// prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Frames of the wireless-receiver workload.
    pub frames: usize,
    /// Samples per frame.
    pub samples: usize,
    /// Fork offset in nanoseconds: the shared prefix runs `[0, fork_ns)`.
    pub fork_ns: u64,
    /// Sweep points: tail CPU clock in MHz, one fork per entry.
    pub points: Vec<u64>,
}

impl SweepRequest {
    /// A small, fast default scenario (used by benches and smoke tests).
    pub fn small(fork_ns: u64, points: Vec<u64>) -> SweepRequest {
        SweepRequest {
            frames: 1,
            samples: 16,
            fork_ns,
            points,
        }
    }

    /// Reject malformed requests with a typed validation error before any
    /// store or simulator work happens.
    pub fn validate(&self) -> SimResult<()> {
        let bad = |msg: &str| Err(SimError::new(SimErrorKind::Validation, msg.to_string()));
        if self.frames == 0 {
            return bad("sweep request needs at least one frame");
        }
        if self.samples == 0 {
            return bad("sweep request needs at least one sample per frame");
        }
        if self.fork_ns == 0 {
            return bad("sweep request needs a nonzero fork offset (fork_ns)");
        }
        if self.points.is_empty() {
            return bad("sweep request needs at least one clock point");
        }
        if self.points.contains(&0) {
            return bad("sweep clock points must be nonzero MHz values");
        }
        Ok(())
    }

    /// Realize the request into the canonical workload and SoC spec — the
    /// same construction `experiments --snapshot-out` uses, parameterized.
    pub fn scenario(&self) -> (Workload, SocSpec) {
        let w = wireless_receiver(self.frames, self.samples);
        let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
        let spec = SocSpec {
            mapping: Mapping::Drcf {
                candidates: names.clone(),
                technology: drcf_core::prelude::morphosys(),
                geometry: drcf_dse::prelude::size_fabric(&w, &names, 1.2, 1),
                config_path: SocConfigPath::SystemBus,
                scheduler: drcf_core::prelude::SchedulerConfig::default(),
                overlap_load_exec: false,
            },
            ..SocSpec::default()
        };
        (w, spec)
    }

    /// The content key the store files this scenario under. Deliberately
    /// excludes `fork_ns` and `points`: every fork time and clock point of
    /// the same scenario shares one entry (one prefix chain), and records
    /// are filed per fork inside it.
    pub fn key(&self) -> u64 {
        let (w, spec) = self.scenario();
        scenario_fingerprint(&w, &spec)
    }

    /// Encode as a JSON object (the `sweep` op's payload).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("frames", Json::from(self.frames as u64))
            .with("samples", Json::from(self.samples as u64))
            .with("fork_ns", json::ju64(self.fork_ns))
            .with(
                "points",
                Json::Arr(self.points.iter().map(|&p| json::ju64(p)).collect()),
            )
    }

    /// Decode from the JSON produced by [`SweepRequest::to_json`].
    pub fn from_json(j: &Json) -> SimResult<SweepRequest> {
        let bad = |what: &str| {
            SimError::new(
                SimErrorKind::Validation,
                format!("sweep request is missing or malforms {what}"),
            )
        };
        let int = |k: &str| j.get(k).and_then(json::ju64_of).ok_or_else(|| bad(k));
        let mut points = Vec::new();
        for p in j
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("points"))?
        {
            points.push(json::ju64_of(p).ok_or_else(|| bad("points"))?);
        }
        Ok(SweepRequest {
            frames: int("frames")? as usize,
            samples: int("samples")? as usize,
            fork_ns: int("fork_ns")?,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_requests_share_a_key_across_forks_and_points() {
        let a = SweepRequest::small(4_000, vec![100, 300]);
        let b = SweepRequest::small(9_000, vec![700]);
        assert_eq!(a.key(), b.key(), "fork and points must not split the entry");
        let c = SweepRequest {
            samples: 32,
            ..a.clone()
        };
        assert_ne!(a.key(), c.key(), "different scenario, different entry");
    }

    #[test]
    fn json_round_trip() {
        let r = SweepRequest::small(12_345, vec![150, 300, 600]);
        let back =
            SweepRequest::from_json(&Json::parse(&r.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn validation_rejects_degenerate_requests() {
        for bad in [
            SweepRequest::small(0, vec![100]),
            SweepRequest::small(100, vec![]),
            SweepRequest::small(100, vec![0]),
            SweepRequest {
                frames: 0,
                ..SweepRequest::small(100, vec![100])
            },
        ] {
            let e = bad.validate().unwrap_err();
            assert_eq!(e.kind, drcf_kernel::prelude::SimErrorKind::Validation);
        }
        SweepRequest::small(100, vec![100]).validate().unwrap();
    }
}
