//! Blocking line-JSON client for [`crate::server::SweepServer`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

use drcf_kernel::prelude::{SimError, SimErrorKind, SimResult};

use crate::protocol::{Reply, Request, SweepReply};
use crate::scenario::SweepRequest;

fn net_err(what: &str, e: std::io::Error) -> SimError {
    SimError::new(SimErrorKind::Internal, format!("client {what}: {e}"))
}

/// One connection to a running sweep server. Requests are serialized per
/// connection; open more clients for concurrency.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to an explicit `host:port`.
    pub fn connect(addr: &str) -> SimResult<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| net_err("connect", e))?;
        let writer = stream.try_clone().map_err(|e| net_err("clone stream", e))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect to the server advertised in `<root>/serve.addr` — the
    /// discovery file [`crate::server::SweepServer::start`] publishes.
    pub fn connect_store(root: impl AsRef<Path>) -> SimResult<Client> {
        let path = root.as_ref().join("serve.addr");
        let addr = std::fs::read_to_string(&path).map_err(|e| {
            SimError::new(
                SimErrorKind::Validation,
                format!("no server advertised at {} ({e})", path.display()),
            )
        })?;
        Client::connect(addr.trim())
    }

    fn round_trip(&mut self, req: &Request) -> SimResult<Reply> {
        let mut line = req.to_json().to_string();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| net_err("send", e))?;
        self.writer.flush().map_err(|e| net_err("flush", e))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| net_err("receive", e))?;
        if n == 0 {
            return Err(SimError::new(
                SimErrorKind::Internal,
                "server closed the connection before replying",
            ));
        }
        Reply::parse(reply.trim_end())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> SimResult<()> {
        match self.round_trip(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Submit a sweep and block for the answer. Server-side failures come
    /// back as typed errors re-raised with their original kind label.
    pub fn sweep(&mut self, req: &SweepRequest) -> SimResult<SweepReply> {
        match self.round_trip(&Request::Sweep(req.clone()))? {
            Reply::Sweep(r) => Ok(r),
            other => Err(unexpected("sweep reply", &other)),
        }
    }

    /// Ask the server to exit once in-flight work finishes.
    pub fn shutdown(&mut self) -> SimResult<()> {
        match self.round_trip(&Request::Shutdown)? {
            Reply::Bye => Ok(()),
            other => Err(unexpected("bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> SimError {
    match got {
        Reply::Error { kind, message } => SimError::new(
            SimErrorKind::Internal,
            format!("server error [{kind}]: {message}"),
        ),
        other => SimError::new(
            SimErrorKind::Decode,
            format!("expected {wanted}, got {other:?}"),
        ),
    }
}
