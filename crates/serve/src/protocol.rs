//! Wire protocol: one JSON object per line, one reply line per request.
//!
//! Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"sweep","frames":1,"samples":16,"fork_ns":4000,"points":[150,300]}
//! {"op":"shutdown"}
//! ```
//!
//! Replies:
//!
//! ```text
//! {"ok":true,"op":"pong"}
//! {"ok":true,"op":"sweep","key":...,"from_cache":1,"simulated":1,"records":[...]}
//! {"ok":true,"op":"bye"}
//! {"ok":false,"kind":"validation","message":"..."}
//! ```
//!
//! Errors travel as data, never as dropped connections: a malformed or
//! failing request produces an `ok:false` line carrying the typed
//! [`SimErrorKind`](drcf_kernel::prelude::SimErrorKind) label, and the
//! connection stays usable for the next request.

use drcf_dse::prelude::{records_to_json, RunRecord};
use drcf_kernel::json::{self, Json};
use drcf_kernel::prelude::{SimError, SimErrorKind, SimResult};

use crate::scenario::SweepRequest;

/// A client request, one per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Run (or answer from the store) a clock sweep.
    Sweep(SweepRequest),
    /// Stop the server after replying.
    Shutdown,
}

impl Request {
    /// Encode as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj().with("op", "ping".into()),
            Request::Shutdown => Json::obj().with("op", "shutdown".into()),
            Request::Sweep(r) => {
                let Json::Obj(fields) = r.to_json() else {
                    return Json::obj().with("op", "sweep".into());
                };
                let mut out = vec![("op".to_string(), Json::from("sweep"))];
                out.extend(fields);
                Json::Obj(out)
            }
        }
    }

    /// Parse one request line.
    pub fn parse(line: &str) -> SimResult<Request> {
        let j = Json::parse(line).map_err(|e| {
            SimError::new(
                SimErrorKind::Validation,
                format!("request is not JSON: {e}"),
            )
        })?;
        match j.get("op").and_then(Json::as_str) {
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            Some("sweep") => Ok(Request::Sweep(SweepRequest::from_json(&j)?)),
            Some(other) => Err(SimError::new(
                SimErrorKind::Validation,
                format!("unknown op {other:?} (expected ping, sweep, or shutdown)"),
            )),
            None => Err(SimError::new(
                SimErrorKind::Validation,
                "request has no op field",
            )),
        }
    }
}

/// A completed sweep answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReply {
    /// The store key the scenario hashed to.
    pub key: u64,
    /// Points answered from durable records without simulating.
    pub from_cache: usize,
    /// Points evaluated fresh by this request.
    pub simulated: usize,
    /// One record per requested point, in request order.
    pub records: Vec<RunRecord>,
}

/// A server reply, one per request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Sweep`].
    Sweep(SweepReply),
    /// Answer to [`Request::Shutdown`]; the server exits afterwards.
    Bye,
    /// Any failure, carrying the typed error kind label and message.
    Error {
        /// [`SimErrorKind::label`](drcf_kernel::prelude::SimErrorKind::label) of the failure.
        kind: String,
        /// Human-readable description.
        message: String,
    },
}

impl Reply {
    /// Wrap a typed simulation error.
    pub fn from_error(e: &SimError) -> Reply {
        Reply::Error {
            kind: e.kind.label().to_string(),
            message: e.to_string(),
        }
    }

    /// Encode as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Reply::Pong => Json::obj()
                .with("ok", true.into())
                .with("op", "pong".into()),
            Reply::Bye => Json::obj().with("ok", true.into()).with("op", "bye".into()),
            Reply::Error { kind, message } => Json::obj()
                .with("ok", false.into())
                .with("kind", kind.as_str().into())
                .with("message", message.as_str().into()),
            Reply::Sweep(r) => Json::obj()
                .with("ok", true.into())
                .with("op", "sweep".into())
                .with("key", json::ju64(r.key))
                .with("from_cache", Json::from(r.from_cache as u64))
                .with("simulated", Json::from(r.simulated as u64))
                .with("records", records_to_json(&r.records)),
        }
    }

    /// Parse one reply line.
    pub fn parse(line: &str) -> SimResult<Reply> {
        let bad = |msg: String| SimError::new(SimErrorKind::Decode, msg);
        let j = Json::parse(line).map_err(|e| bad(format!("reply is not JSON: {e}")))?;
        match j.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                return Ok(Reply::Error {
                    kind: j
                        .get("kind")
                        .and_then(Json::as_str)
                        .unwrap_or("internal")
                        .to_string(),
                    message: j
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified server error")
                        .to_string(),
                })
            }
            None => return Err(bad("reply has no ok field".into())),
        }
        match j.get("op").and_then(Json::as_str) {
            Some("pong") => Ok(Reply::Pong),
            Some("bye") => Ok(Reply::Bye),
            Some("sweep") => {
                let mut records = Vec::new();
                for rj in j
                    .get("records")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("sweep reply has no records array".into()))?
                {
                    records.push(
                        RunRecord::from_json(rj)
                            .map_err(|e| bad(format!("sweep reply record: {e}")))?,
                    );
                }
                Ok(Reply::Sweep(SweepReply {
                    key: j
                        .get("key")
                        .and_then(json::ju64_of)
                        .ok_or_else(|| bad("sweep reply has no key".into()))?,
                    from_cache: j
                        .get("from_cache")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("sweep reply has no from_cache".into()))?
                        as usize,
                    simulated: j
                        .get("simulated")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("sweep reply has no simulated".into()))?
                        as usize,
                    records,
                }))
            }
            other => Err(bad(format!("reply has unknown op {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Shutdown,
            Request::Sweep(SweepRequest::small(4_000, vec![100, 600])),
        ] {
            let line = req.to_json().to_string();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let reply = Reply::Sweep(SweepReply {
            key: u64::MAX - 7,
            from_cache: 2,
            simulated: 1,
            records: vec![RunRecord::failed("serve", vec![], "boom")],
        });
        for r in [
            Reply::Pong,
            Reply::Bye,
            reply,
            Reply::Error {
                kind: "validation".into(),
                message: "nope".into(),
            },
        ] {
            let line = r.to_json().to_string();
            assert_eq!(Reply::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(Request::parse("{\"op\":\"dance\"}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Reply::parse("{}").is_err());
    }
}
