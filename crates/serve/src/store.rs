//! Content-addressed on-disk snapshot store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/serve.addr              # "host:port" of the running server, if any
//! <root>/manifest.json           # store-wide inventory (observability artifact)
//! <root>/<key:016x>/             # one entry per (workload, spec) fingerprint
//!     meta.json                  # schema tag + ordered chain-link index
//!     link-000.chain             # full base snapshot at the earliest fork
//!     link-001.chain             # delta (or periodic full rebase) extending it
//!     records-<fork_ns>.jsonl    # completed sweep records for that fork time
//!     lease                      # cross-process writer lease (create_new + pid)
//! ```
//!
//! Trust model: the key routes, the hashes decide. Every link load is
//! validated with [`ChainDoc::parse_validated`] against the tip hash
//! recorded at write time, deltas additionally re-prove their parent hash
//! when applied, and [`drcf_soc::prelude::restore_soc`] checks the roster
//! before any state lands in a simulator. A truncated, bit-flipped, or
//! re-parented entry therefore surfaces as a typed
//! [`SimErrorKind::SnapshotChain`]/`Validation` error — the serving layer
//! wipes the entry and re-simulates cold, so corruption costs time, never
//! correctness.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use drcf_dse::prelude::{record_jsonl_line, records_from_jsonl, RunRecord};
use drcf_kernel::json::{self, Json};
use drcf_kernel::prelude::{ChainDoc, SimError, SimErrorKind, SimResult};

/// Store format tag; bump when the entry layout changes incompatibly.
pub const STORE_SCHEMA: &str = "drcf-store-v1";

/// Write a full rebase link after this many consecutive delta links, so a
/// restore never applies more than `REBASE_PERIOD` deltas — the on-disk
/// analogue of [`drcf_kernel::prelude::SnapshotChain`]'s rebase policy.
pub const REBASE_PERIOD: usize = 4;

/// One chain link as indexed by `meta.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// File name inside the entry directory.
    pub file: String,
    /// Full (restorable entry point) vs delta (extends the previous link).
    pub full: bool,
    /// State hash after this link is applied — validated on every load.
    pub tip: u64,
    /// Requested fork offset this link lands on, in nanoseconds.
    pub time_ns: u64,
}

/// Parsed `meta.json`: the ordered link index of one store entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreMeta {
    /// Chain links in apply order; times strictly increase, entry 0 is full.
    pub links: Vec<ChainLink>,
}

impl StoreMeta {
    fn to_json(&self, key: u64) -> Json {
        Json::obj()
            .with("schema", STORE_SCHEMA.into())
            .with("key", json::ju64(key))
            .with(
                "links",
                Json::Arr(
                    self.links
                        .iter()
                        .map(|l| {
                            Json::obj()
                                .with("file", l.file.as_str().into())
                                .with("full", l.full.into())
                                .with("tip", json::ju64(l.tip))
                                .with("time_ns", json::ju64(l.time_ns))
                        })
                        .collect(),
                ),
            )
    }

    fn from_json(j: &Json) -> SimResult<StoreMeta> {
        let poison = |msg: String| SimError::new(SimErrorKind::SnapshotChain, msg);
        match j.get("schema").and_then(Json::as_str) {
            Some(STORE_SCHEMA) => {}
            other => {
                return Err(poison(format!(
                    "store entry has schema {other:?}, expected {STORE_SCHEMA:?}"
                )))
            }
        }
        let mut links = Vec::new();
        for lj in j
            .get("links")
            .and_then(Json::as_arr)
            .ok_or_else(|| poison("store entry meta has no links array".into()))?
        {
            let field = |k: &str| {
                lj.get(k)
                    .ok_or_else(|| poison(format!("store link is missing {k}")))
            };
            links.push(ChainLink {
                file: field("file")?
                    .as_str()
                    .ok_or_else(|| poison("store link file is not a string".into()))?
                    .to_string(),
                full: field("full")?
                    .as_bool()
                    .ok_or_else(|| poison("store link full flag is not a bool".into()))?,
                tip: json::ju64_of(field("tip")?)
                    .ok_or_else(|| poison("store link tip hash is unreadable".into()))?,
                time_ns: json::ju64_of(field("time_ns")?)
                    .ok_or_else(|| poison("store link time is unreadable".into()))?,
            });
        }
        Ok(StoreMeta { links })
    }
}

/// Held while a process extends or repairs an entry; the file is removed on
/// drop. A process killed mid-write leaves the file behind — waiters break
/// it after [`SnapshotStore::lease_timeout`] of no progress.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
}

impl Drop for Lease {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A content-addressed snapshot + record store rooted at one directory.
///
/// Thread safety: the store hands out per-key in-process locks
/// ([`SnapshotStore::key_lock`]) and cross-process lease files
/// ([`SnapshotStore::try_lease`]); the serving layer holds both for the
/// duration of a cache-miss job, so concurrent requests for one key cost
/// one simulation.
#[derive(Debug)]
pub struct SnapshotStore {
    root: PathBuf,
    lease_timeout: Duration,
    locks: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> SimError {
    SimError::new(
        SimErrorKind::Internal,
        format!("store {what} {} failed: {e}", path.display()),
    )
}

/// Write `text` atomically: temp file in the same directory, then rename.
/// Readers never observe a torn file; a crash leaves only a stale temp.
fn write_atomic(path: &Path, text: &str) -> SimResult<()> {
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(text.as_bytes())
        .map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("rename into", path, e))
}

impl SnapshotStore {
    /// Open (creating if absent) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> SimResult<SnapshotStore> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create root", &root, e))?;
        Ok(SnapshotStore {
            root,
            lease_timeout: Duration::from_secs(30),
            locks: Mutex::new(HashMap::new()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// How long a lease file may sit unmodified before waiters break it
    /// (the holder is presumed dead). Defaults to 30 s.
    pub fn lease_timeout(&self) -> Duration {
        self.lease_timeout
    }

    /// Override the stale-lease timeout (tests use a short one to recover
    /// quickly from deliberately killed writers).
    pub fn set_lease_timeout(&mut self, timeout: Duration) {
        self.lease_timeout = timeout;
    }

    fn entry_dir(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}"))
    }

    /// The in-process lock for `key`. Callers lock it around a whole job so
    /// a second thread racing the same key blocks, then finds the records
    /// already on disk — a pure cache hit.
    pub fn key_lock(&self, key: u64) -> Arc<Mutex<()>> {
        let mut map = match self.locks.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Arc::clone(map.entry(key).or_default())
    }

    /// Load an entry's link index. `Ok(None)` means the entry does not
    /// exist (a clean miss); an unreadable or wrong-schema meta is a typed
    /// poisoning error.
    pub fn meta(&self, key: u64) -> SimResult<Option<StoreMeta>> {
        let path = self.entry_dir(key).join("meta.json");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let j = Json::parse(&text).map_err(|e| {
            SimError::new(
                SimErrorKind::SnapshotChain,
                format!("store entry meta is unreadable: {e}"),
            )
        })?;
        StoreMeta::from_json(&j).map(Some)
    }

    /// Persist an entry's link index (atomically).
    pub fn write_meta(&self, key: u64, meta: &StoreMeta) -> SimResult<()> {
        let dir = self.entry_dir(key);
        fs::create_dir_all(&dir).map_err(|e| io_err("create entry", &dir, e))?;
        write_atomic(
            &dir.join("meta.json"),
            &meta.to_json(key).to_string_pretty(),
        )
    }

    /// Load one chain link and validate it against the tip hash recorded in
    /// the index. Truncation, bit flips, and swapped files all surface here
    /// as typed [`SimErrorKind::SnapshotChain`] errors.
    pub fn load_link(&self, key: u64, link: &ChainLink) -> SimResult<ChainDoc> {
        let path = self.entry_dir(key).join(&link.file);
        let text = fs::read_to_string(&path).map_err(|e| {
            SimError::new(
                SimErrorKind::SnapshotChain,
                format!("store link {} is unreadable: {e}", path.display()),
            )
        })?;
        ChainDoc::parse_validated(&text, link.tip)
    }

    /// Append a link to an entry's chain: write the document, then the
    /// updated index. Callers must hold the key's lease; `meta` is the
    /// index being extended and is updated in place.
    pub fn append_link(
        &self,
        key: u64,
        meta: &mut StoreMeta,
        doc: &ChainDoc,
        time_ns: u64,
    ) -> SimResult<()> {
        let dir = self.entry_dir(key);
        fs::create_dir_all(&dir).map_err(|e| io_err("create entry", &dir, e))?;
        let file = format!("link-{:03}.chain", meta.links.len());
        write_atomic(&dir.join(&file), &doc.to_text())?;
        meta.links.push(ChainLink {
            file,
            full: matches!(doc, ChainDoc::Full(_)),
            tip: doc.tip_hash(),
            time_ns,
        });
        self.write_meta(key, meta)
    }

    /// Recover the completed sweep records for one fork time, keyed by
    /// clock point. Torn trailing lines (from a killed writer) are skipped;
    /// the second value counts them.
    pub fn records(&self, key: u64, fork_ns: u64) -> SimResult<(HashMap<u64, RunRecord>, usize)> {
        let path = self.entry_dir(key).join(format!("records-{fork_ns}.jsonl"));
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((HashMap::new(), 0)),
            Err(e) => return Err(io_err("read", &path, e)),
        };
        let (pairs, skipped) = records_from_jsonl(&text);
        Ok((
            pairs.into_iter().map(|(p, r)| (p as u64, r)).collect(),
            skipped,
        ))
    }

    /// Durably append one completed record for `(fork_ns, clock)`. One
    /// whole line per call via `O_APPEND`, so concurrent appenders (and a
    /// crash at any instant) can tear at most the final line — which
    /// [`SnapshotStore::records`] then skips.
    pub fn append_record(
        &self,
        key: u64,
        fork_ns: u64,
        clock: u64,
        record: &RunRecord,
    ) -> SimResult<()> {
        let dir = self.entry_dir(key);
        fs::create_dir_all(&dir).map_err(|e| io_err("create entry", &dir, e))?;
        let path = dir.join(format!("records-{fork_ns}.jsonl"));
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        f.write_all(record_jsonl_line(clock as usize, record).as_bytes())
            .map_err(|e| io_err("append", &path, e))?;
        f.sync_all().map_err(|e| io_err("sync", &path, e))
    }

    /// Delete an entry wholesale — the repair action for a poisoned entry.
    pub fn wipe(&self, key: u64) -> SimResult<()> {
        match fs::remove_dir_all(self.entry_dir(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("wipe", &self.entry_dir(key), e)),
        }
    }

    /// Try to take the cross-process writer lease for `key`. Returns
    /// `Ok(None)` when another live process holds it (poll again); a lease
    /// older than [`SnapshotStore::lease_timeout`] is broken and retaken.
    pub fn try_lease(&self, key: u64) -> SimResult<Option<Lease>> {
        let dir = self.entry_dir(key);
        fs::create_dir_all(&dir).map_err(|e| io_err("create entry", &dir, e))?;
        let path = dir.join("lease");
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                let _ = f.write_all(format!("{}\n", std::process::id()).as_bytes());
                Ok(Some(Lease { path }))
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let stale = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age > self.lease_timeout);
                if stale {
                    // Holder presumed dead; break the lease and let the
                    // caller retry the create_new race.
                    let _ = fs::remove_file(&path);
                }
                Ok(None)
            }
            Err(e) => Err(io_err("lease", &path, e)),
        }
    }

    /// Inventory every entry: key, link count, chain bytes, record files.
    /// This is the observability artifact CI uploads after the smoke run.
    pub fn manifest(&self) -> SimResult<Json> {
        let mut entries = Vec::new();
        let dir_iter = fs::read_dir(&self.root).map_err(|e| io_err("list", &self.root, e))?;
        let mut names: Vec<String> = dir_iter
            .filter_map(|d| Some(d.ok()?.file_name().to_string_lossy().into_owned()))
            .filter(|n| u64::from_str_radix(n, 16).is_ok() && n.len() == 16)
            .collect();
        names.sort();
        for name in names {
            let Ok(key) = u64::from_str_radix(&name, 16) else {
                continue;
            };
            let meta = self.meta(key).unwrap_or(None).unwrap_or_default();
            let entry_dir = self.entry_dir(key);
            let mut chain_bytes = 0u64;
            for l in &meta.links {
                if let Ok(m) = fs::metadata(entry_dir.join(&l.file)) {
                    chain_bytes += m.len();
                }
            }
            let mut record_files: Vec<String> = fs::read_dir(&entry_dir)
                .map(|it| {
                    it.filter_map(|d| Some(d.ok()?.file_name().to_string_lossy().into_owned()))
                        .filter(|n| n.starts_with("records-"))
                        .collect()
                })
                .unwrap_or_default();
            record_files.sort();
            entries.push(
                Json::obj()
                    .with("key", json::ju64(key))
                    .with("links", Json::from(meta.links.len() as u64))
                    .with("chain_bytes", json::ju64(chain_bytes))
                    .with(
                        "record_files",
                        Json::Arr(record_files.into_iter().map(Json::from).collect()),
                    ),
            );
        }
        Ok(Json::obj()
            .with("schema", STORE_SCHEMA.into())
            .with("entries", Json::Arr(entries)))
    }

    /// Write `manifest.json` at the store root and return its path.
    pub fn write_manifest(&self) -> SimResult<PathBuf> {
        let path = self.root.join("manifest.json");
        write_atomic(&path, &self.manifest()?.to_string_pretty())?;
        Ok(path)
    }
}
