//! # drcf-serve — simulation as a service
//!
//! The paper's methodology sells *reuse*: "the same models are used for
//! architecture exploration and for the transaction-level golden reference"
//! (RAW/IPDPS 2003). This crate pushes reuse across process and client
//! boundaries. A long-running server answers what-if sweep requests over a
//! local socket, backed by a content-addressed on-disk snapshot store: the
//! shared prefix of a scenario is simulated once, filed under the
//! `(workload, spec)` fingerprint, and every later request — from any
//! client, thread, or process — restores it instead of re-running it.
//! Completed sweep points are append-streamed to durable JSONL, so a
//! crashed or killed sweep resumes where it stopped and the merged answer
//! is bit-identical to an uninterrupted run.
//!
//! Layering:
//!
//! - [`scenario`] — the canonical request shape and its `(workload, spec)`
//!   realization + content key.
//! - [`store`] — the on-disk entry format: snapshot-chain links, per-fork
//!   record logs, leases, manifest. Every load is validated against the
//!   hash recorded at write time; corruption is a typed error, never a
//!   wrong answer.
//! - [`server`] — [`server::process_sweep`] (the store-backed sweep, usable
//!   without sockets) and [`server::SweepServer`] (job queue + worker pool
//!   over line-delimited JSON on a loopback TCP socket).
//! - [`protocol`] / [`client`] — the wire shapes and a blocking client.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod protocol;
pub mod scenario;
pub mod server;
pub mod store;

/// Commonly used items.
pub mod prelude {
    pub use crate::client::Client;
    pub use crate::protocol::{Reply, Request, SweepReply};
    pub use crate::scenario::SweepRequest;
    pub use crate::server::{process_sweep, SweepServer};
    pub use crate::store::{ChainLink, SnapshotStore, StoreMeta};
}
