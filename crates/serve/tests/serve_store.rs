//! Store-backed sweep serving: cache hits, chain extension, resume merges.

use drcf_serve::prelude::*;
use drcf_serve::store::REBASE_PERIOD;
use std::path::PathBuf;

/// Fresh scratch store for one test; removed on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("drcf-serve-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch { dir }
    }

    fn store(&self) -> SnapshotStore {
        SnapshotStore::open(&self.dir).expect("open store")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn repeated_sweep_is_fully_cached_and_bit_identical() {
    let scratch = Scratch::new("repeat");
    let store = scratch.store();
    let req = SweepRequest::small(4_000, vec![150, 300, 600]);

    let cold = process_sweep(&store, &req).expect("cold sweep");
    assert_eq!(cold.simulated, 3);
    assert_eq!(cold.from_cache, 0);
    assert!(cold.records.iter().all(|r| r.ok), "{:?}", cold.records);

    let warm = process_sweep(&store, &req).expect("warm sweep");
    assert_eq!(warm.simulated, 0, "everything must come from the store");
    assert_eq!(warm.from_cache, 3);
    assert_eq!(warm.records, cold.records, "cache must be bit-identical");
    assert_eq!(warm.key, cold.key);

    // The clock knob must actually matter, or the sweep proves nothing.
    assert!(cold.records[0].makespan_ns > cold.records[2].makespan_ns);
}

#[test]
fn partial_overlap_simulates_only_the_new_points() {
    let scratch = Scratch::new("overlap");
    let store = scratch.store();
    let first = SweepRequest::small(4_000, vec![200, 400]);
    let a = process_sweep(&store, &first).expect("first sweep");
    assert_eq!(a.simulated, 2);

    let wider = SweepRequest::small(4_000, vec![200, 400, 800, 1_000]);
    let b = process_sweep(&store, &wider).expect("wider sweep");
    assert_eq!(b.from_cache, 2, "shared points answered from the store");
    assert_eq!(b.simulated, 2, "only the new points simulated");
    assert_eq!(&b.records[..2], &a.records[..]);

    // A fresh store must agree exactly: resume merging changes nothing.
    let fresh = Scratch::new("overlap-fresh");
    let c = process_sweep(&fresh.store(), &wider).expect("uninterrupted sweep");
    assert_eq!(
        c.records, b.records,
        "merged answer == uninterrupted answer"
    );
}

#[test]
fn later_forks_extend_the_chain_with_deltas_and_rebase() {
    let scratch = Scratch::new("chain");
    let store = scratch.store();
    let key = SweepRequest::small(2_000, vec![300]).key();

    // Walk the fork forward; each step should append one link.
    let forks: Vec<u64> = (1..=REBASE_PERIOD as u64 + 2).map(|i| i * 2_000).collect();
    let mut replies = Vec::new();
    for &f in &forks {
        replies.push(process_sweep(&store, &SweepRequest::small(f, vec![300])).expect("sweep"));
    }
    let meta = store
        .meta(key)
        .expect("meta readable")
        .expect("entry exists");
    assert_eq!(meta.links.len(), forks.len());
    assert!(meta.links[0].full, "chain enters at a full snapshot");
    assert!(!meta.links[1].full, "extensions ride as deltas");
    assert!(
        meta.links.iter().skip(1).any(|l| l.full),
        "a long chain must rebase with a full link: {:?}",
        meta.links
    );
    let times: Vec<u64> = meta.links.iter().map(|l| l.time_ns).collect();
    assert_eq!(times, forks, "links land on the requested fork times");

    // Re-serving an early fork reuses the stored prefix (no new links).
    let again =
        process_sweep(&store, &SweepRequest::small(forks[1], vec![300])).expect("early fork");
    assert_eq!(again.from_cache, 1);
    let meta2 = store.meta(key).expect("meta readable").expect("entry");
    assert_eq!(meta2.links.len(), forks.len(), "no new links for old forks");
}

#[test]
fn records_survive_a_torn_trailing_line() {
    let scratch = Scratch::new("torn");
    let store = scratch.store();
    let req = SweepRequest::small(4_000, vec![250, 500]);
    let a = process_sweep(&store, &req).expect("cold sweep");

    // Simulate a writer killed mid-append: chop the log mid-line.
    let entry = scratch.dir.join(format!("{:016x}", req.key()));
    let log = entry.join(format!("records-{}.jsonl", req.fork_ns));
    let text = std::fs::read_to_string(&log).expect("read log");
    let keep = text.lines().next().expect("at least one line").to_string();
    std::fs::write(&log, format!("{keep}\n{{\"point\":5,\"rec")).expect("tear log");

    let (recovered, torn) = store.records(req.key(), req.fork_ns).expect("recover");
    assert_eq!(torn, 1, "the torn line is counted, not fatal");
    assert_eq!(recovered.len(), 1);

    // Serving again re-simulates exactly the lost point and re-converges.
    let b = process_sweep(&store, &req).expect("resume sweep");
    assert_eq!(b.from_cache, 1);
    assert_eq!(b.simulated, 1);
    assert_eq!(b.records, a.records);
}

#[test]
fn manifest_inventories_entries() {
    let scratch = Scratch::new("manifest");
    let store = scratch.store();
    let req = SweepRequest::small(4_000, vec![300]);
    process_sweep(&store, &req).expect("sweep");
    let path = store.write_manifest().expect("write manifest");
    let text = std::fs::read_to_string(path).expect("read manifest");
    let j = drcf_kernel::json::Json::parse(&text).expect("manifest parses");
    let entries = j.get("entries").and_then(|e| e.as_arr()).expect("entries");
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].get("links").and_then(|l| l.as_u64()),
        Some(1),
        "{text}"
    );
}
