//! Socket server end-to-end: discovery, ping, sweeps from concurrent
//! clients, typed wire errors, shutdown.

use drcf_serve::prelude::*;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drcf-serve-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn server_answers_sweeps_and_caches_repeats() {
    let dir = scratch("roundtrip");
    let server = SweepServer::start(&dir, 2).expect("start server");
    let mut client = Client::connect_store(&dir).expect("discover server");
    client.ping().expect("ping");

    let req = SweepRequest::small(4_000, vec![200, 500]);
    let cold = client.sweep(&req).expect("cold sweep");
    assert_eq!(cold.simulated, 2);

    let warm = client.sweep(&req).expect("warm sweep");
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.from_cache, 2);
    assert_eq!(warm.records, cold.records);

    // A second client sees the same cache.
    let mut other = Client::connect_store(&dir).expect("second client");
    let third = other.sweep(&req).expect("third sweep");
    assert_eq!(third.simulated, 0);
    assert_eq!(third.records, cold.records);

    server.store().write_manifest().expect("manifest");
    client.shutdown().expect("shutdown");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_racing_one_key_cost_one_simulation() {
    let dir = scratch("race");
    let server = SweepServer::start(&dir, 2).expect("start server");
    let req = SweepRequest::small(4_000, vec![150, 350, 550]);
    let (a, b) = std::thread::scope(|s| {
        let dir_a = dir.clone();
        let dir_b = dir.clone();
        let ra = &req;
        let rb = &req;
        let ta = s.spawn(move || {
            let mut c = Client::connect_store(&dir_a).expect("client a");
            c.sweep(ra).expect("sweep a")
        });
        let tb = s.spawn(move || {
            let mut c = Client::connect_store(&dir_b).expect("client b");
            c.sweep(rb).expect("sweep b")
        });
        (ta.join().expect("join a"), tb.join().expect("join b"))
    });
    assert_eq!(
        a.simulated + b.simulated,
        req.points.len(),
        "{a:?} vs {b:?}"
    );
    assert_eq!(a.records, b.records);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_invalid_requests_come_back_as_typed_wire_errors() {
    use std::io::{BufRead, BufReader, Write};
    let dir = scratch("errors");
    let server = SweepServer::start(&dir, 1).expect("start server");
    let addr = std::fs::read_to_string(dir.join("serve.addr")).expect("addr file");
    let stream = std::net::TcpStream::connect(addr.trim()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    let mut ask = |line: &str| {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send newline");
        writer.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("receive");
        Reply::parse(reply.trim_end()).expect("reply parses")
    };

    // Not JSON at all.
    let Reply::Error { kind, .. } = ask("garbage") else {
        panic!("expected error");
    };
    assert_eq!(kind, "validation");

    // Valid JSON, unknown op.
    let Reply::Error { kind, .. } = ask("{\"op\":\"dance\"}") else {
        panic!("expected error");
    };
    assert_eq!(kind, "validation");

    // Valid sweep shape, degenerate parameters (zero points).
    let Reply::Error { kind, .. } =
        ask("{\"op\":\"sweep\",\"frames\":1,\"samples\":16,\"fork_ns\":4000,\"points\":[]}")
    else {
        panic!("expected error");
    };
    assert_eq!(kind, "validation");

    // The connection survives all of that.
    let Reply::Pong = ask("{\"op\":\"ping\"}") else {
        panic!("connection must stay usable after errors");
    };
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
