//! Concurrent access: racing threads and processes on one cache key must
//! cost one simulation and agree bit-identically, and a killed sweep must
//! resume from its durable records.

use drcf_serve::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

/// Child-process entry points are selected with this env var; see
/// [`child_entry`].
const CHILD_ENV: &str = "DRCF_SERVE_TEST_CHILD";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drcf-serve-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request() -> SweepRequest {
    SweepRequest::small(4_000, vec![150, 300, 450, 600])
}

/// Not a test of its own: when re-executed with [`CHILD_ENV`] set to
/// `<store dir>`, this process runs the canonical sweep against that store
/// and writes its reply to `<store dir>/child-reply.json`, then exits. The
/// parent tests below spawn it to get a genuinely separate process racing
/// the same store.
#[test]
fn child_entry() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return;
    };
    let store = SnapshotStore::open(&dir).expect("child open store");
    let reply = process_sweep(&store, &request()).expect("child sweep");
    let line = Reply::Sweep(reply).to_json().to_string();
    std::fs::write(PathBuf::from(&dir).join("child-reply.json"), line).expect("child write reply");
}

fn spawn_child(dir: &std::path::Path) -> std::process::Child {
    std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args(["child_entry", "--exact", "--nocapture"])
        .env(CHILD_ENV, dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child process")
}

fn child_reply(dir: &std::path::Path) -> SweepReply {
    let text = std::fs::read_to_string(dir.join("child-reply.json")).expect("child reply file");
    match Reply::parse(&text).expect("child reply parses") {
        Reply::Sweep(r) => r,
        other => panic!("child failed: {other:?}"),
    }
}

#[test]
fn two_threads_one_simulation() {
    if std::env::var(CHILD_ENV).is_ok() {
        return; // re-executed child runs child_entry only
    }
    let dir = scratch("threads");
    let store = SnapshotStore::open(&dir).expect("open store");
    let req = request();
    let (a, b) = std::thread::scope(|s| {
        let ta = s.spawn(|| process_sweep(&store, &req).expect("sweep a"));
        let tb = s.spawn(|| process_sweep(&store, &req).expect("sweep b"));
        (ta.join().expect("join a"), tb.join().expect("join b"))
    });
    assert_eq!(
        a.simulated + b.simulated,
        req.points.len(),
        "the race must cost exactly one simulation: {a:?} vs {b:?}"
    );
    assert_eq!(a.records, b.records, "racers must agree bit-identically");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_processes_one_simulation() {
    if std::env::var(CHILD_ENV).is_ok() {
        return;
    }
    let dir = scratch("procs");
    std::fs::create_dir_all(&dir).expect("create store dir");
    let mut child = spawn_child(&dir);
    let store = SnapshotStore::open(&dir).expect("open store");
    let req = request();
    let mine = process_sweep(&store, &req).expect("parent sweep");
    assert!(child.wait().expect("child exits").success());
    let theirs = child_reply(&dir);
    assert_eq!(
        mine.simulated + theirs.simulated,
        req.points.len(),
        "cross-process race must cost exactly one simulation: {mine:?} vs {theirs:?}"
    );
    assert_eq!(mine.records, theirs.records);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_sweep_resumes_to_the_uninterrupted_answer() {
    if std::env::var(CHILD_ENV).is_ok() {
        return;
    }
    let dir = scratch("killed");
    std::fs::create_dir_all(&dir).expect("create store dir");
    let req = request();
    let key = req.key();
    let log = dir
        .join(format!("{key:016x}"))
        .join(format!("records-{}.jsonl", req.fork_ns));

    // Start the sweep in a child and kill it as soon as the first record
    // lands in the durable log (i.e. genuinely mid-sweep).
    let mut child = spawn_child(&dir);
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let lines = std::fs::read_to_string(&log)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 1 {
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break; // too fast to interrupt — resume still must hold below
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child made no progress"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();

    // The killed child may hold the entry lease; use a short stale timeout
    // so this process takes it over promptly.
    let mut store = SnapshotStore::open(&dir).expect("open store");
    store.set_lease_timeout(Duration::from_millis(200));
    let resumed = process_sweep(&store, &req).expect("resumed sweep");
    assert_eq!(resumed.records.len(), req.points.len());

    let fresh_dir = scratch("killed-fresh");
    let fresh = SnapshotStore::open(&fresh_dir).expect("open fresh store");
    let uninterrupted = process_sweep(&fresh, &req).expect("uninterrupted sweep");
    assert_eq!(
        resumed.records, uninterrupted.records,
        "merged crash-resumed answer must equal the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh_dir);
}
