//! Store poisoning: every corruption mode must surface as a typed error at
//! the store layer, and as a transparent cold re-simulation (never a wrong
//! answer) at the serving layer.

use drcf_kernel::prelude::SimErrorKind;
use drcf_serve::prelude::*;
use std::path::PathBuf;

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("drcf-serve-poison-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch { dir }
    }

    fn store(&self) -> SnapshotStore {
        SnapshotStore::open(&self.dir).expect("open store")
    }

    fn entry(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Seed an entry, corrupt it with `damage`, and check both layers: the
/// store load reports a typed snapshot-chain error, and `process_sweep`
/// still answers bit-identically to the pristine run.
fn poison_case(tag: &str, damage: impl Fn(&Scratch, u64, &StoreMeta)) {
    let scratch = Scratch::new(tag);
    let store = scratch.store();
    let req = SweepRequest::small(4_000, vec![200, 600]);
    let pristine = process_sweep(&store, &req).expect("seed sweep");
    let key = req.key();
    let meta = store.meta(key).expect("meta").expect("entry");
    damage(&scratch, key, &meta);

    // Layer 1: the damaged link is a typed error, not garbage state.
    let mut typed = false;
    for link in &meta.links {
        if let Err(e) = store.load_link(key, link) {
            assert_eq!(e.kind, SimErrorKind::SnapshotChain, "{e}");
            typed = true;
        }
    }
    assert!(typed, "damage must be detectable on load ({tag})");

    // Layer 2: serving wipes the entry and re-simulates; the answer is
    // bit-identical to the pristine one. Remove the record log too so the
    // repair actually exercises the cold path end to end.
    let _ = std::fs::remove_file(
        scratch
            .entry(key)
            .join(format!("records-{}.jsonl", req.fork_ns)),
    );
    let repaired = process_sweep(&store, &req).expect("repair sweep");
    assert_eq!(repaired.simulated, 2, "repair re-simulates ({tag})");
    assert_eq!(repaired.records, pristine.records, "never a wrong answer");
}

#[test]
fn truncated_link_is_typed_and_recovered() {
    poison_case("truncate", |scratch, key, meta| {
        let path = scratch.entry(key).join(&meta.links[0].file);
        let text = std::fs::read_to_string(&path).expect("read link");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate link");
    });
}

#[test]
fn bit_flipped_link_is_typed_and_recovered() {
    poison_case("bitflip", |scratch, key, meta| {
        let path = scratch.entry(key).join(&meta.links[0].file);
        let mut bytes = std::fs::read(&path).expect("read link");
        // Flip one digit inside the document body (past the schema header),
        // keeping it parseable so only the hash check can catch it.
        let pos = bytes
            .iter()
            .rposition(|b| b.is_ascii_digit())
            .expect("a digit to flip");
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        std::fs::write(&path, bytes).expect("write flipped link");
    });
}

#[test]
fn wrong_parent_chain_is_typed_and_recovered() {
    // Build a two-link chain (full @2us, delta @4us), then re-parent the
    // delta by swapping in a different fork's delta document.
    let scratch = Scratch::new("wrong-parent");
    let store = scratch.store();
    let early = SweepRequest::small(2_000, vec![200, 600]);
    let late = SweepRequest::small(4_000, vec![200, 600]);
    process_sweep(&store, &early).expect("seed early fork");
    let pristine = process_sweep(&store, &late).expect("seed late fork");
    let key = late.key();
    let meta = store.meta(key).expect("meta").expect("entry");
    assert_eq!(meta.links.len(), 2);
    assert!(!meta.links[1].full, "second link is a delta");

    // Re-parent: make the chain claim the delta applies where it does not,
    // by duplicating the delta entry so it would be applied twice.
    let mut broken = meta.clone();
    let mut dup = meta.links[1].clone();
    dup.time_ns += 1_000;
    let dup_time = dup.time_ns;
    broken.links.push(dup);
    store.write_meta(key, &broken).expect("write broken meta");

    // Serving a fork past the duplicated link walks the broken chain: the
    // second apply's parent-hash check fails, the entry is wiped, and the
    // answer is re-simulated cold.
    let req = SweepRequest::small(dup_time, vec![200, 600]);
    let healed = process_sweep(&store, &req).expect("repair sweep");
    assert_eq!(healed.simulated, 2);
    let fresh = Scratch::new("wrong-parent-fresh");
    let expect = process_sweep(&fresh.store(), &req).expect("reference sweep");
    assert_eq!(healed.records, expect.records, "never a wrong answer");

    // The wiped entry was rebuilt from scratch: a single full link now.
    let meta_after = store.meta(key).expect("meta").expect("entry");
    assert_eq!(meta_after.links.len(), 1, "{:?}", meta_after.links);
    assert!(meta_after.links[0].full);

    // And the late fork still serves correctly after the repair.
    let late_again = process_sweep(&store, &late).expect("late after repair");
    assert_eq!(late_again.records, pristine.records);
}

#[test]
fn garbage_meta_is_typed_and_recovered() {
    let scratch = Scratch::new("garbage-meta");
    let store = scratch.store();
    let req = SweepRequest::small(4_000, vec![300]);
    let pristine = process_sweep(&store, &req).expect("seed sweep");
    let key = req.key();
    std::fs::write(scratch.entry(key).join("meta.json"), "not json at all").expect("poison meta");

    let e = store.meta(key).expect_err("garbage meta must be typed");
    assert_eq!(e.kind, SimErrorKind::SnapshotChain, "{e}");

    let _ = std::fs::remove_file(
        scratch
            .entry(key)
            .join(format!("records-{}.jsonl", req.fork_ns)),
    );
    let healed = process_sweep(&store, &req).expect("repair sweep");
    assert_eq!(healed.records, pristine.records);
}

#[test]
fn wrong_schema_meta_is_typed() {
    let scratch = Scratch::new("wrong-schema");
    let store = scratch.store();
    let req = SweepRequest::small(4_000, vec![300]);
    process_sweep(&store, &req).expect("seed sweep");
    let key = req.key();
    std::fs::write(
        scratch.entry(key).join("meta.json"),
        "{\"schema\":\"drcf-store-v999\",\"links\":[]}",
    )
    .expect("poison meta");
    let e = store.meta(key).expect_err("wrong schema must be typed");
    assert_eq!(e.kind, SimErrorKind::SnapshotChain, "{e}");
}
