//! Memory models.
//!
//! [`Memory`] is a word-addressed RAM with configurable first-word latency
//! and per-word burst cost. It serves two kinds of traffic:
//!
//! * **bus port** — [`SlaveAccess`] messages from a [`crate::bus::Bus`];
//! * **direct port** — [`DirectReadReq`] messages, modeling a dedicated
//!   point-to-point connection (e.g. a configuration-memory port feeding a
//!   reconfigurable fabric without crossing the system bus).
//!
//! With `dual_port = false` the two ports contend for the single internal
//! port; with `dual_port = true` they proceed independently. This is the
//! knob behind the paper's §5.3 remark that the methodology "may be used to
//! measure the effects of different memory organizations ... to the total
//! system performance" (experiment E6).

use drcf_kernel::json::{ju64, ju64_of, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot as snap;

use crate::bus::SlaveTiming;
use crate::interfaces::apply_request;
use crate::interfaces::BusSlaveModel;
use crate::protocol::{
    Addr, BulkAccess, BusOp, DirectReadDone, DirectReadReq, SlaveAccess, SlaveReply, Word,
};

/// Memory timing/organization parameters.
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    /// First claimed address (word units).
    pub base: Addr,
    /// Capacity in words.
    pub size_words: usize,
    /// Memory clock in MHz.
    pub clock_mhz: u64,
    /// Cycles to the first word of a read.
    pub read_latency: u64,
    /// Cycles to accept the first word of a write.
    pub write_latency: u64,
    /// Additional cycles per burst word after the first.
    pub per_word: u64,
    /// True: the direct port is independent of the bus port (dual-ported
    /// RAM, like the Virtex-II Pro 18 Kbit block dual-port BRAM).
    pub dual_port: bool,
    /// Fault injection: inclusive `[low, high]` address ranges whose words
    /// refuse every access, so transactions touching them come back with a
    /// `SlaveError` status (a poisoned/corrupted region in a
    /// fault-injection campaign).
    pub poison: Vec<(Addr, Addr)>,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            base: 0,
            size_words: 64 * 1024,
            clock_mhz: 100,
            read_latency: 2,
            write_latency: 1,
            per_word: 1,
            dual_port: false,
            poison: Vec::new(),
        }
    }
}

impl MemoryConfig {
    /// Is `addr` inside a poisoned range?
    pub fn poisoned(&self, addr: Addr) -> bool {
        self.poison
            .iter()
            .any(|&(low, high)| (low..=high).contains(&addr))
    }

    /// Service cycles for a burst access.
    pub fn service_cycles(&self, op: BusOp, burst: usize) -> u64 {
        let first = match op {
            BusOp::Read => self.read_latency,
            BusOp::Write => self.write_latency,
        };
        first + burst.saturating_sub(1) as u64 * self.per_word
    }

    /// The bus-side analytic timing of this memory, for
    /// [`crate::bus::Bus::register_slave_timing`]. Mirrors
    /// [`MemoryConfig::service_cycles`] exactly — the reply to an access at
    /// `t` arrives at `max(t, port free) + service`, which is precisely
    /// what [`Memory`]'s bus-port handler computes.
    pub fn slave_timing(&self) -> SlaveTiming {
        SlaveTiming {
            clock_mhz: self.clock_mhz,
            read_latency: self.read_latency,
            write_latency: self.write_latency,
            per_word: self.per_word,
        }
    }
}

/// Counters a memory accumulates.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryStats {
    /// Bus-port read transactions.
    pub reads: u64,
    /// Bus-port write transactions.
    pub writes: u64,
    /// Words read over the bus port.
    pub words_read: u64,
    /// Words written over the bus port.
    pub words_written: u64,
    /// Direct-port read transactions.
    pub direct_reads: u64,
    /// Words streamed over the direct port.
    pub direct_words: u64,
}

/// Words per dirty-tracking page. Each page carries a deterministic write
/// epoch; a live restore along a snapshot lineage (`Simulator::rewind`,
/// `Simulator::restore_delta`) skips re-filling pages whose epoch matches
/// the document, so warm forks pay for the words that changed, not the
/// whole image.
pub const PAGE_WORDS: usize = 64;

/// The RAM component.
pub struct Memory {
    cfg: MemoryConfig,
    data: Vec<Word>,
    /// Per-page write counters — monotonically non-decreasing along a run,
    /// so epoch equality between two points on one timeline implies the
    /// page content is unchanged between them.
    page_epochs: Vec<u64>,
    bus_busy_until: SimTime,
    direct_busy_until: SimTime,
    /// Accumulated statistics.
    pub stats: MemoryStats,
}

impl Memory {
    /// New zero-initialized memory.
    pub fn new(cfg: MemoryConfig) -> Self {
        crate::snapshot::register_bus_codecs();
        let data = vec![0; cfg.size_words];
        let page_epochs = vec![0; cfg.size_words.div_ceil(PAGE_WORDS)];
        Memory {
            cfg,
            data,
            page_epochs,
            bus_busy_until: SimTime::ZERO,
            direct_busy_until: SimTime::ZERO,
            stats: MemoryStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Direct (zero-time, test-only) peek.
    pub fn peek(&self, addr: Addr) -> Option<Word> {
        self.data
            .get((addr.checked_sub(self.cfg.base)?) as usize)
            .copied()
    }

    /// Direct (zero-time, test-only) poke.
    pub fn poke(&mut self, addr: Addr, v: Word) {
        let i = (addr - self.cfg.base) as usize;
        self.data[i] = v;
        self.page_epochs[i / PAGE_WORDS] += 1;
    }

    /// Preload a block of words starting at `addr`.
    pub fn load(&mut self, addr: Addr, words: &[Word]) {
        let start = (addr - self.cfg.base) as usize;
        self.data[start..start + words.len()].copy_from_slice(words);
        if !words.is_empty() {
            let last = (start + words.len() - 1) / PAGE_WORDS;
            for p in (start / PAGE_WORDS)..=last {
                self.page_epochs[p] += 1;
            }
        }
    }

    fn schedule_on_port(
        now: SimTime,
        busy_until: &mut SimTime,
        service: SimDuration,
    ) -> SimDuration {
        let start = (*busy_until).max(now);
        let done = start + service;
        *busy_until = done;
        done.since(now)
    }

    /// Nonzero words as `[index, value]` pairs — memories are mostly zeros,
    /// so snapshots stay proportional to live data, not capacity.
    fn sparse_data_json(&self) -> Json {
        Json::Arr(
            self.data
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w != 0)
                .map(|(i, &w)| Json::Arr(vec![ju64(i as u64), ju64(w)]))
                .collect(),
        )
    }

    fn restore_sparse_data(&mut self, j: &Json) -> SimResult<()> {
        // The freshly built memory may have been preloaded by the harness;
        // the snapshot is authoritative, so start from all-zeros.
        self.data.fill(0);
        for e in j
            .as_arr()
            .ok_or_else(|| snap::err("memory data is not an array"))?
        {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let (i, w) = pair
                .and_then(|p| Some((ju64_of(&p[0])?, ju64_of(&p[1])?)))
                .ok_or_else(|| snap::err("malformed memory word entry"))?;
            let slot = self
                .data
                .get_mut(i as usize)
                .ok_or_else(|| snap::err(format!("memory word {i} outside capacity")))?;
            *slot = w;
        }
        Ok(())
    }

    /// Nonzero page epochs as `[page, epoch]` pairs.
    fn page_epochs_json(&self) -> Json {
        Json::Arr(
            self.page_epochs
                .iter()
                .enumerate()
                .filter(|&(_, &e)| e != 0)
                .map(|(p, &e)| Json::Arr(vec![ju64(p as u64), ju64(e)]))
                .collect(),
        )
    }

    /// The document's page-epoch table, densified to this memory's page
    /// count.
    fn doc_page_epochs(&self, state: &Json) -> SimResult<Vec<u64>> {
        let mut epochs = vec![0u64; self.page_epochs.len()];
        for e in snap::arr_field(state, "page_epochs")? {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let (p, ep) = pair
                .and_then(|p| Some((ju64_of(&p[0])?, ju64_of(&p[1])?)))
                .ok_or_else(|| snap::err("malformed memory page-epoch entry"))?;
            let slot = epochs
                .get_mut(p as usize)
                .ok_or_else(|| snap::err(format!("memory page {p} outside capacity")))?;
            *slot = ep;
        }
        Ok(epochs)
    }

    /// Restore the non-image fields shared by [`Component::restore`] and
    /// [`Component::restore_live`].
    fn restore_meta(&mut self, state: &Json) -> SimResult<()> {
        self.bus_busy_until = SimTime(snap::u64_field(state, "bus_busy_until")?);
        self.direct_busy_until = SimTime(snap::u64_field(state, "direct_busy_until")?);
        let s = snap::field(state, "stats")?;
        self.stats = MemoryStats {
            reads: snap::u64_field(s, "reads")?,
            writes: snap::u64_field(s, "writes")?,
            words_read: snap::u64_field(s, "words_read")?,
            words_written: snap::u64_field(s, "words_written")?,
            direct_reads: snap::u64_field(s, "direct_reads")?,
            direct_words: snap::u64_field(s, "direct_words")?,
        };
        Ok(())
    }
}

impl BusSlaveModel for Memory {
    fn low_addr(&self) -> Addr {
        self.cfg.base
    }
    fn high_addr(&self) -> Addr {
        self.cfg.base + self.cfg.size_words as u64 - 1
    }
    fn read(&mut self, addr: Addr) -> Result<Word, ()> {
        if self.cfg.poisoned(addr) {
            return Err(());
        }
        self.data
            .get((addr.checked_sub(self.cfg.base).ok_or(())?) as usize)
            .copied()
            .ok_or(())
    }
    fn write(&mut self, addr: Addr, data: Word) -> Result<(), ()> {
        if self.cfg.poisoned(addr) {
            return Err(());
        }
        let i = (addr.checked_sub(self.cfg.base).ok_or(())?) as usize;
        match self.data.get_mut(i) {
            Some(w) => {
                *w = data;
                self.page_epochs[i / PAGE_WORDS] += 1;
                Ok(())
            }
            None => Err(()),
        }
    }
    fn access_cycles(&self, op: BusOp, _addr: Addr, burst: usize) -> u64 {
        self.cfg.service_cycles(op, burst)
    }
    fn model_name(&self) -> &str {
        "memory"
    }
}

impl Component for Memory {
    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("data", self.sparse_data_json())
            .with("page_epochs", self.page_epochs_json())
            .with("bus_busy_until", ju64(self.bus_busy_until.as_fs()))
            .with("direct_busy_until", ju64(self.direct_busy_until.as_fs()))
            .with(
                "stats",
                Json::obj()
                    .with("reads", ju64(self.stats.reads))
                    .with("writes", ju64(self.stats.writes))
                    .with("words_read", ju64(self.stats.words_read))
                    .with("words_written", ju64(self.stats.words_written))
                    .with("direct_reads", ju64(self.stats.direct_reads))
                    .with("direct_words", ju64(self.stats.direct_words)),
            ))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        // A cross-simulator restore trusts nothing about the live image:
        // force-parse every word, then adopt the document's epochs.
        self.restore_sparse_data(snap::field(state, "data")?)?;
        self.page_epochs = self.doc_page_epochs(state)?;
        self.restore_meta(state)
    }

    fn restore_live(&mut self, state: &Json) -> SimResult<()> {
        // Live restore along a snapshot lineage: page epochs are
        // monotonically non-decreasing along the one timeline the document
        // and the live state share, so epoch equality means no write
        // touched the page between the two points — its words are already
        // correct. Only mismatching pages are zeroed and re-filled.
        let doc_epochs = self.doc_page_epochs(state)?;
        let dirty: Vec<bool> = doc_epochs
            .iter()
            .zip(&self.page_epochs)
            .map(|(d, l)| d != l)
            .collect();
        if dirty.iter().any(|&d| d) {
            for (p, _) in dirty.iter().enumerate().filter(|&(_, &d)| d) {
                let lo = p * PAGE_WORDS;
                let hi = ((p + 1) * PAGE_WORDS).min(self.data.len());
                self.data[lo..hi].fill(0);
            }
            for e in snap::arr_field(state, "data")? {
                let pair = e.as_arr().filter(|p| p.len() == 2);
                let (i, w) = pair
                    .and_then(|p| Some((ju64_of(&p[0])?, ju64_of(&p[1])?)))
                    .ok_or_else(|| snap::err("malformed memory word entry"))?;
                let i = i as usize;
                if i >= self.data.len() {
                    return Err(snap::err(format!("memory word {i} outside capacity")));
                }
                if dirty[i / PAGE_WORDS] {
                    self.data[i] = w;
                }
            }
        }
        self.page_epochs = doc_epochs;
        self.restore_meta(state)
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        // Bus port.
        let msg = match msg.user::<SlaveAccess>() {
            Ok(access) => {
                let resp = apply_request(self, &access.req);
                if !resp.is_ok() {
                    api.log(
                        Severity::Warning,
                        format!(
                            "memory rejected {:?} burst {} at {:#x}",
                            access.req.op, access.req.burst, access.req.addr
                        ),
                    );
                }
                match access.req.op {
                    BusOp::Read => {
                        self.stats.reads += 1;
                        self.stats.words_read += access.req.burst as u64;
                    }
                    BusOp::Write => {
                        self.stats.writes += 1;
                        self.stats.words_written += access.req.burst as u64;
                    }
                }
                let cycles = self.cfg.service_cycles(access.req.op, access.req.burst);
                let service = SimDuration::cycles_at_mhz(cycles, self.cfg.clock_mhz);
                let delay = Self::schedule_on_port(api.now(), &mut self.bus_busy_until, service);
                api.send_in(
                    access.bus,
                    SlaveReply {
                        resp,
                        master: access.req.master,
                    },
                    delay,
                );
                return;
            }
            Err(m) => m,
        };
        // Coalesced-train fast-forward: account (and, for writes, apply)
        // a completed burst prefix in one step, then service the one burst
        // that was mid-flight when the train de-coalesced, if any.
        let msg = match msg.user::<BulkAccess>() {
            Ok(bulk) => {
                for b in &bulk.bursts {
                    match b.op {
                        BusOp::Read => {
                            self.stats.reads += 1;
                            self.stats.words_read += b.words as u64;
                        }
                        BusOp::Write => {
                            self.stats.writes += 1;
                            self.stats.words_written += b.words as u64;
                            // Train writes carry implied-zero payloads; the
                            // bus never coalesces over poisoned/unmapped
                            // words, so these cannot fail.
                            for i in 0..b.words as u64 {
                                let applied = self.write(b.addr + i, 0);
                                debug_assert!(applied.is_ok(), "bulk write rejected");
                            }
                        }
                    }
                }
                if bulk.busy_until > self.bus_busy_until {
                    self.bus_busy_until = bulk.busy_until;
                }
                if let Some(s) = bulk.serve {
                    let resp = apply_request(self, &s.req);
                    debug_assert!(resp.is_ok(), "in-flight train burst rejected");
                    match s.req.op {
                        BusOp::Read => {
                            self.stats.reads += 1;
                            self.stats.words_read += s.req.burst as u64;
                        }
                        BusOp::Write => {
                            self.stats.writes += 1;
                            self.stats.words_written += s.req.burst as u64;
                        }
                    }
                    if s.reply_at > self.bus_busy_until {
                        self.bus_busy_until = s.reply_at;
                    }
                    api.send_in(
                        s.bus,
                        SlaveReply {
                            resp,
                            master: s.req.master,
                        },
                        s.reply_at.since(api.now()),
                    );
                }
                return;
            }
            Err(m) => m,
        };
        // Direct port.
        if let Ok(req) = msg.user::<DirectReadReq>() {
            self.stats.direct_reads += 1;
            self.stats.direct_words += req.words as u64;
            let cycles = self.cfg.service_cycles(BusOp::Read, req.words);
            let service = SimDuration::cycles_at_mhz(cycles, self.cfg.clock_mhz);
            let delay = if self.cfg.dual_port {
                Self::schedule_on_port(api.now(), &mut self.direct_busy_until, service)
            } else {
                // Single internal port: direct traffic contends with the
                // bus port.
                Self::schedule_on_port(api.now(), &mut self.bus_busy_until, service)
            };
            api.send_in(
                req.requester,
                DirectReadDone {
                    tag: req.tag,
                    words: req.words,
                },
                delay,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BusRequest;
    use drcf_kernel::testing::{ok, some};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn service_cycles_formula() {
        let cfg = MemoryConfig {
            read_latency: 5,
            write_latency: 2,
            per_word: 1,
            ..MemoryConfig::default()
        };
        assert_eq!(cfg.service_cycles(BusOp::Read, 1), 5);
        assert_eq!(cfg.service_cycles(BusOp::Read, 8), 12);
        assert_eq!(cfg.service_cycles(BusOp::Write, 4), 5);
    }

    #[test]
    fn functional_read_write_via_model_trait() {
        let mut m = Memory::new(MemoryConfig {
            base: 0x1000,
            size_words: 16,
            ..MemoryConfig::default()
        });
        assert_eq!(m.low_addr(), 0x1000);
        assert_eq!(m.high_addr(), 0x100F);
        ok(m.write(0x1004, 99));
        assert_eq!(m.read(0x1004), Ok(99));
        assert_eq!(m.peek(0x1004), Some(99));
        assert!(m.read(0x0FFF).is_err(), "below base");
        assert!(m.read(0x1010).is_err(), "above top");
        assert!(m.write(0x1010, 0).is_err());
    }

    #[test]
    fn poisoned_range_rejects_access() {
        let mut m = Memory::new(MemoryConfig {
            base: 0,
            size_words: 32,
            poison: vec![(8, 11)],
            ..MemoryConfig::default()
        });
        assert_eq!(m.read(7), Ok(0));
        assert!(m.read(8).is_err());
        assert!(m.write(11, 5).is_err());
        assert_eq!(m.read(12), Ok(0));
        // A burst grazing the range comes back as a slave error.
        let req = BusRequest {
            id: 1,
            master: 0,
            op: BusOp::Read,
            addr: 6,
            burst: 4,
            data: vec![],
            priority: 0,
        };
        let resp = crate::interfaces::apply_request(&mut m, &req);
        assert_eq!(resp.status, crate::protocol::BusStatus::SlaveError);
    }

    #[test]
    fn load_preloads_a_block() {
        let mut m = Memory::new(MemoryConfig {
            base: 0,
            size_words: 8,
            ..MemoryConfig::default()
        });
        m.load(2, &[10, 11, 12]);
        assert_eq!(m.peek(2), Some(10));
        assert_eq!(m.peek(4), Some(12));
    }

    /// Two direct reads on a single-ported memory serialize; on a dual-port
    /// memory the direct port is independent of the bus port.
    #[test]
    fn port_contention_depends_on_organization() {
        let run = |dual_port: bool| {
            let mut sim = Simulator::new();
            let done_times = Rc::new(RefCell::new(Vec::new()));
            let dt = done_times.clone();
            // id 0: driver, id 1: memory
            sim.add(
                "driver",
                FnComponent::new(move |api, msg| match &msg.kind {
                    MsgKind::Start => {
                        api.obligation_begin();
                        api.obligation_begin();
                        // One bus access and one direct read at t=0.
                        api.send(
                            1,
                            SlaveAccess {
                                req: BusRequest {
                                    id: 1,
                                    master: 0,
                                    op: BusOp::Read,
                                    addr: 0,
                                    burst: 10,
                                    data: vec![],
                                    priority: 0,
                                },
                                bus: 0,
                            },
                            Delay::Delta,
                        );
                        api.send(
                            1,
                            DirectReadReq {
                                requester: 0,
                                addr: 0,
                                words: 10,
                                tag: 7,
                            },
                            Delay::Delta,
                        );
                    }
                    _ => {
                        if msg.user_ref::<SlaveReply>().is_some()
                            || msg.user_ref::<DirectReadDone>().is_some()
                        {
                            dt.borrow_mut().push(api.now().as_fs());
                            api.obligation_end();
                        }
                    }
                }),
            );
            sim.add(
                "mem",
                Memory::new(MemoryConfig {
                    size_words: 64,
                    read_latency: 1,
                    per_word: 1,
                    dual_port,
                    ..MemoryConfig::default()
                }),
            );
            assert!(sim.run().is_ok());
            let times = done_times.borrow().clone();
            times
        };
        let single = run(false);
        let dual = run(true);
        // 10-word read = 10 cycles = 100ns.
        // Dual port: both finish at ~100ns. Single port: second finishes at ~200ns.
        assert_eq!(dual.len(), 2);
        assert_eq!(single.len(), 2);
        let dual_last = some(dual.iter().max().copied());
        let single_last = some(single.iter().max().copied());
        assert!(
            single_last >= 2 * dual_last - 1_000_000,
            "single {single_last} vs dual {dual_last}"
        );
    }

    #[test]
    fn stats_count_both_ports() {
        let mut sim = Simulator::new();
        sim.add(
            "driver",
            FnComponent::new(move |api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.send(
                        1,
                        DirectReadReq {
                            requester: 0,
                            addr: 0,
                            words: 32,
                            tag: 0,
                        },
                        Delay::Delta,
                    );
                }
            }),
        );
        let mem = sim.add("mem", Memory::new(MemoryConfig::default()));
        ok(sim.run());
        let m = sim.get::<Memory>(mem);
        assert_eq!(m.stats.direct_reads, 1);
        assert_eq!(m.stats.direct_words, 32);
        assert_eq!(m.stats.reads, 0);
    }
}
