//! Bus-to-bus bridge.
//!
//! The paper's §4 criticizes partitioning methodologies that "assume that
//! the application is implemented in single reconfigurable block and
//! possibly RISC processor. In real life, there is usually need for more
//! complex architectures." A [`BusBridge`] makes those architectures
//! expressible: it is a slave on an upstream bus, claiming a remote
//! address window, and a master on a downstream bus, forwarding
//! transactions in order and paying a configurable forwarding latency in
//! each direction.
//!
//! Bridges compose: a CPU bus can reach a peripheral bus holding a DRCF
//! whose configuration memory sits on yet another bus — with every hop's
//! contention modeled.

use std::collections::VecDeque;

use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

use crate::interfaces::MasterPort;
use crate::protocol::{BusResponse, SlaveAccess, SlaveReply, TxnId};
use crate::snapshot::req_of;

/// Bridge parameters.
#[derive(Debug, Clone)]
pub struct BridgeConfig {
    /// Cycles added when forwarding a request downstream.
    pub forward_cycles: u64,
    /// Cycles added when returning a response upstream.
    pub return_cycles: u64,
    /// Clock of the bridge logic, MHz.
    pub clock_mhz: u64,
    /// Bus priority of forwarded transactions on the downstream bus.
    pub priority: u8,
}

impl BridgeConfig {
    /// Minimum end-to-end latency the bridge adds to a forwarded request:
    /// `forward_cycles` at `clock_mhz`. Any transaction crossing the
    /// bridge is delayed by at least this much, which makes it a safe
    /// *conservative lookahead* for sharded simulation — a shard on one
    /// side of the bridge can run this far ahead of the other side
    /// without risking a message in its past
    /// (see [`drcf_kernel::shard`]).
    pub fn min_latency(&self) -> SimDuration {
        SimDuration::cycles_at_mhz(self.forward_cycles.max(1), self.clock_mhz)
    }

    /// Latency the bridge adds when returning a response upstream:
    /// `return_cycles` at `clock_mhz`, exactly as [`BusBridge`] pays it.
    /// This is the reverse link's lookahead when the bridge is cut across
    /// shards; a zero value means the bridge cannot be cut (the partitioner
    /// falls back to keeping both segments in one LP).
    pub fn return_latency(&self) -> SimDuration {
        SimDuration::cycles_at_mhz(self.return_cycles, self.clock_mhz)
    }
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            forward_cycles: 2,
            return_cycles: 2,
            clock_mhz: 100,
            priority: 1,
        }
    }
}

struct InFlight {
    downstream_txn: TxnId,
    upstream_txn: TxnId,
    upstream_master: ComponentId,
    upstream_bus: ComponentId,
}

const TAG_FORWARD: u64 = 1;

/// The bridge component.
pub struct BusBridge {
    cfg: BridgeConfig,
    port: MasterPort,
    /// Requests waiting out the forward latency.
    pending_forward: VecDeque<SlaveAccess>,
    in_flight: Vec<InFlight>,
    /// Transactions forwarded downstream.
    pub forwarded: u64,
    /// Responses returned upstream.
    pub returned: u64,
}

impl BusBridge {
    /// New bridge mastering `downstream_bus`.
    pub fn new(cfg: BridgeConfig, downstream_bus: ComponentId) -> Self {
        let priority = cfg.priority;
        BusBridge {
            cfg,
            port: MasterPort::new(downstream_bus, priority),
            pending_forward: VecDeque::new(),
            in_flight: Vec::new(),
            forwarded: 0,
            returned: 0,
        }
    }

    /// Transactions currently crossing the bridge.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len() + self.pending_forward.len()
    }

    fn forward_now(&mut self, api: &mut Api<'_>) {
        let Some(access) = self.pending_forward.pop_front() else {
            return;
        };
        let req = access.req;
        let downstream_txn = match req.op {
            crate::protocol::BusOp::Read => self.port.read(api, req.addr, req.burst),
            crate::protocol::BusOp::Write => self.port.write(api, req.addr, req.data.clone()),
        };
        self.in_flight.push(InFlight {
            downstream_txn,
            upstream_txn: req.id,
            upstream_master: req.master,
            upstream_bus: access.bus,
        });
        self.forwarded += 1;
    }

    fn on_downstream_response(&mut self, api: &mut Api<'_>, resp: BusResponse) {
        let Some(pos) = self
            .in_flight
            .iter()
            .position(|f| f.downstream_txn == resp.id)
        else {
            api.log(
                Severity::Warning,
                "bridge got a response for an unknown transaction".to_string(),
            );
            return;
        };
        let f = self.in_flight.swap_remove(pos);
        let upstream_resp = BusResponse {
            id: f.upstream_txn,
            ..resp
        };
        let delay = SimDuration::cycles_at_mhz(self.cfg.return_cycles, self.cfg.clock_mhz);
        api.send_in(
            f.upstream_bus,
            SlaveReply {
                resp: upstream_resp,
                master: f.upstream_master,
            },
            delay,
        );
        self.returned += 1;
    }
}

impl Component for BusBridge {
    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("port", self.port.snapshot_json())
            .with(
                "pending_forward",
                Json::Arr(
                    self.pending_forward
                        .iter()
                        .map(|a| {
                            Json::obj()
                                .with("req", crate::snapshot::req_json(&a.req))
                                .with("bus", ju64(a.bus as u64))
                        })
                        .collect(),
                ),
            )
            .with(
                "in_flight",
                Json::Arr(
                    self.in_flight
                        .iter()
                        .map(|f| {
                            Json::obj()
                                .with("downstream_txn", ju64(f.downstream_txn))
                                .with("upstream_txn", ju64(f.upstream_txn))
                                .with("upstream_master", ju64(f.upstream_master as u64))
                                .with("upstream_bus", ju64(f.upstream_bus as u64))
                        })
                        .collect(),
                ),
            )
            .with("forwarded", ju64(self.forwarded))
            .with("returned", ju64(self.returned)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.port.restore_json(snap::field(state, "port")?)?;
        self.pending_forward.clear();
        for a in snap::arr_field(state, "pending_forward")? {
            self.pending_forward.push_back(SlaveAccess {
                req: req_of(snap::field(a, "req")?)
                    .ok_or_else(|| snap::err("malformed bridged request"))?,
                bus: snap::usize_field(a, "bus")?,
            });
        }
        self.in_flight.clear();
        for f in snap::arr_field(state, "in_flight")? {
            self.in_flight.push(InFlight {
                downstream_txn: snap::u64_field(f, "downstream_txn")?,
                upstream_txn: snap::u64_field(f, "upstream_txn")?,
                upstream_master: snap::usize_field(f, "upstream_master")?,
                upstream_bus: snap::usize_field(f, "upstream_bus")?,
            });
        }
        self.forwarded = snap::u64_field(state, "forwarded")?;
        self.returned = snap::u64_field(state, "returned")?;
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Timer(TAG_FORWARD) => self.forward_now(api),
            MsgKind::Start => {}
            _ => {
                let msg = match self.port.take_response(api, msg) {
                    Ok(resp) => {
                        self.on_downstream_response(api, resp);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok(access) = msg.user::<SlaveAccess>() {
                    self.pending_forward.push_back(access);
                    let d = SimDuration::cycles_at_mhz(self.cfg.forward_cycles, self.cfg.clock_mhz);
                    api.timer_in(d, TAG_FORWARD);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Bus, BusConfig, BusMode};
    use crate::interfaces::{RegisterFile, SlaveAdapter};
    use crate::map::AddressMap;
    use crate::memory::{Memory, MemoryConfig};
    use crate::protocol::{Addr, BusOp, Word};
    use drcf_kernel::testing::ok;

    #[test]
    fn min_latency_is_forward_cycles_at_bridge_clock() {
        let cfg = BridgeConfig {
            forward_cycles: 100,
            clock_mhz: 50,
            ..BridgeConfig::default()
        };
        assert_eq!(cfg.min_latency(), SimDuration::cycles_at_mhz(100, 50));
        // Never zero, even for a degenerate combinational bridge: a zero
        // lookahead would stall the sharded executor's progress guarantee.
        let zero = BridgeConfig {
            forward_cycles: 0,
            ..BridgeConfig::default()
        };
        assert!(zero.min_latency() > SimDuration::ZERO);
    }

    /// Scripted master local to the bridge tests.
    struct Master {
        port: MasterPort,
        script: Vec<(BusOp, Addr, Word)>,
        pc: usize,
        pub replies: Vec<BusResponse>,
    }
    impl Component for Master {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            let next = |s: &mut Self, api: &mut Api<'_>| {
                if let Some(&(op, addr, v)) = s.script.get(s.pc) {
                    s.pc += 1;
                    match op {
                        BusOp::Read => {
                            s.port.read(api, addr, 1);
                        }
                        BusOp::Write => {
                            s.port.write(api, addr, vec![v]);
                        }
                    }
                }
            };
            match &msg.kind {
                MsgKind::Start => next(self, api),
                _ => {
                    if let Ok(r) = self.port.take_response(api, msg) {
                        self.replies.push(r);
                        next(self, api);
                    }
                }
            }
        }
    }

    /// Topology: master(0) -> bus0(1); bridge(2) spans bus0 -> bus1(3);
    /// bus1 hosts memory(4) and a register-file slave(5).
    fn two_bus_system(script: Vec<(BusOp, Addr, Word)>, mode: BusMode) -> Simulator {
        let mut sim = Simulator::new();
        let mut map0 = AddressMap::new();
        ok(map0.add(0x1_0000, 0x1_FFFF, 2)); // remote window -> bridge
        let mut map1 = AddressMap::new();
        ok(map1.add(0x1_0000, 0x1_0FFF, 4)); // memory
        ok(map1.add(0x1_2000, 0x1_20FF, 5)); // peripheral

        sim.add(
            "master",
            Master {
                port: MasterPort::new(1, 1),
                script,
                pc: 0,
                replies: vec![],
            },
        );
        sim.add(
            "bus0",
            Bus::new(
                BusConfig {
                    mode,
                    ..BusConfig::default()
                },
                map0,
            ),
        );
        sim.add("bridge", BusBridge::new(BridgeConfig::default(), 3));
        sim.add(
            "bus1",
            Bus::new(
                BusConfig {
                    mode,
                    ..BusConfig::default()
                },
                map1,
            ),
        );
        sim.add(
            "mem",
            Memory::new(MemoryConfig {
                base: 0x1_0000,
                size_words: 0x1000,
                ..MemoryConfig::default()
            }),
        );
        sim.add(
            "peripheral",
            SlaveAdapter::new(RegisterFile::new("rf", 0x1_2000, 16, 1), 100),
        );
        sim
    }

    #[test]
    fn cross_bridge_write_read_roundtrip() {
        let mut sim = two_bus_system(
            vec![
                (BusOp::Write, 0x1_0042, 777),
                (BusOp::Read, 0x1_0042, 0),
                (BusOp::Write, 0x1_2003, 9),
                (BusOp::Read, 0x1_2003, 0),
            ],
            BusMode::Split,
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<Master>(0);
        assert_eq!(m.replies.len(), 4);
        assert!(m.replies.iter().all(|r| r.is_ok()));
        assert_eq!(m.replies[1].data, vec![777]);
        assert_eq!(m.replies[3].data, vec![9]);
        let bridge = sim.get::<BusBridge>(2);
        assert_eq!(bridge.forwarded, 4);
        assert_eq!(bridge.returned, 4);
        assert_eq!(bridge.outstanding(), 0);
        let mem = sim.get::<Memory>(4);
        assert_eq!(mem.peek(0x1_0042), Some(777));
    }

    #[test]
    fn bridge_works_in_blocking_mode_too() {
        // A one-way bridge chain has no cyclic dependency, so blocking
        // buses still complete.
        let mut sim = two_bus_system(
            vec![(BusOp::Write, 0x1_0000, 5), (BusOp::Read, 0x1_0000, 0)],
            BusMode::Blocking,
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.get::<Master>(0).replies[1].data, vec![5]);
    }

    #[test]
    fn bridge_adds_latency() {
        let local_time = {
            // Same access but memory directly on bus0.
            let mut sim = Simulator::new();
            let mut map = AddressMap::new();
            ok(map.add(0x1_0000, 0x1_0FFF, 2));
            sim.add(
                "master",
                Master {
                    port: MasterPort::new(1, 1),
                    script: vec![(BusOp::Read, 0x1_0000, 0)],
                    pc: 0,
                    replies: vec![],
                },
            );
            sim.add("bus0", Bus::new(BusConfig::default(), map));
            sim.add(
                "mem",
                Memory::new(MemoryConfig {
                    base: 0x1_0000,
                    size_words: 0x1000,
                    ..MemoryConfig::default()
                }),
            );
            ok(sim.run());
            sim.now().as_fs()
        };
        let remote_time = {
            let mut sim = two_bus_system(vec![(BusOp::Read, 0x1_0000, 0)], BusMode::Split);
            ok(sim.run());
            sim.now().as_fs()
        };
        assert!(
            remote_time > local_time,
            "crossing the bridge must cost time: {remote_time} vs {local_time}"
        );
    }

    #[test]
    fn decode_error_propagates_back_across_the_bridge() {
        let mut sim = two_bus_system(vec![(BusOp::Read, 0x1_9999, 0)], BusMode::Split);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<Master>(0);
        assert_eq!(m.replies.len(), 1);
        assert_eq!(
            m.replies[0].status,
            crate::protocol::BusStatus::DecodeError,
            "downstream decode error must reach the upstream master"
        );
    }

    #[test]
    fn pipelined_transactions_cross_in_order() {
        // Issue several writes back-to-back (window > 1) — the bridge keeps
        // them ordered.
        struct Pipeliner {
            port: MasterPort,
            issued: bool,
            pub readback: Vec<Word>,
            outstanding_reads: usize,
        }
        impl Component for Pipeliner {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match &msg.kind {
                    MsgKind::Start => {
                        for i in 0..6u64 {
                            self.port.write(api, 0x1_0000 + i, vec![100 + i]);
                        }
                        self.issued = true;
                    }
                    _ => {
                        if let Ok(r) = self.port.take_response(api, msg) {
                            assert!(r.is_ok());
                            if r.op == BusOp::Read {
                                self.readback.push(r.data[0]);
                                self.outstanding_reads -= 1;
                            } else if self.port.outstanding() == 0
                                && self.outstanding_reads == 0
                                && self.readback.is_empty()
                            {
                                self.outstanding_reads = 6;
                                for i in 0..6u64 {
                                    self.port.read(api, 0x1_0000 + i, 1);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut sim = two_bus_system(vec![], BusMode::Split);
        // Replace the scripted master with the pipeliner (component 0).
        *sim.get_mut::<Master>(0) = Master {
            port: MasterPort::new(1, 1),
            script: vec![],
            pc: 0,
            replies: vec![],
        };
        // Add the pipeliner as an extra master.
        let p = sim.add(
            "pipeliner",
            Pipeliner {
                port: MasterPort::new(1, 2),
                issued: false,
                readback: vec![],
                outstanding_reads: 0,
            },
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let pl = sim.get::<Pipeliner>(p);
        assert_eq!(pl.readback, vec![100, 101, 102, 103, 104, 105]);
    }
}
