//! # drcf-bus — bus, memory and DMA substrate
//!
//! Bus-cycle-level communication fabric for the ADRIATIC reproduction:
//! a shared bus with pluggable arbitration (priority / round-robin / TDMA)
//! and two operating modes (blocking and split transactions), address
//! decoding from `get_low_add`/`get_high_add`-style slave ranges, RAM
//! models with single/dual-port organizations, and a DMA controller.
//!
//! The central design choice mirrors the paper's §5.4 limitation 3: masters
//! issue *split* transactions and hold a kernel obligation until the
//! response arrives. Running the bus in [`bus::BusMode::Blocking`] mode
//! then makes the fabric-reconfiguration deadlock reproducible and
//! detectable, while [`bus::BusMode::Split`] (the paper's required fix)
//! lets configuration traffic interleave with suspended calls.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod arbiter;
pub mod bridge;
pub mod bus;
pub mod dma;
pub mod interfaces;
pub mod map;
pub mod memory;
pub mod monitor;
pub mod protocol;
pub mod remote;
pub mod snapshot;

/// Commonly used items.
pub mod prelude {
    pub use crate::arbiter::{Arbiter, ArbiterKind, Candidate};
    pub use crate::bridge::{BridgeConfig, BusBridge};
    pub use crate::bus::{Bus, BusConfig, BusMode, SlaveTiming};
    pub use crate::dma::{Dma, DmaAutoRepeat, DmaConfig, DmaDone, DmaProgram};
    pub use crate::interfaces::{
        apply_request, BusSlaveModel, MasterPort, RegisterFile, SlaveAdapter,
    };
    pub use crate::map::{AddressMap, Range};
    pub use crate::memory::{Memory, MemoryConfig, MemoryStats};
    pub use crate::monitor::{BusContention, BusStats, ContentionRow};
    pub use crate::protocol::{
        Addr, BulkAccess, BusOp, BusRequest, BusResponse, BusStatus, ConfigTrain,
        ConfigTrainDecoalesced, ConfigTrainDone, ConfigTrainRejected, DirectReadDone,
        DirectReadReq, InFlightBurst, ServeBurst, SlaveAccess, SlaveReply, TrainBurst, TxnId, Word,
    };
    pub use crate::remote::{BridgeDownstream, BridgeUpstream};
    pub use crate::snapshot::register_bus_codecs;
}
