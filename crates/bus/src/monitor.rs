//! Bus observability: utilization, contention and latency statistics.

use drcf_kernel::prelude::*;

/// Statistics one bus instance accumulates during a run.
#[derive(Default)]
pub struct BusStats {
    /// Bus occupancy (busy during address/data phases, and during the slave
    /// wait in blocking mode).
    pub busy: BusyTracker,
    /// Grants per master, in discovery order.
    pub grants: Vec<(ComponentId, u64)>,
    /// Requests accepted.
    pub requests: u64,
    /// Responses delivered to masters.
    pub responses: u64,
    /// Words moved across the bus (reads + writes).
    pub words: u64,
    /// Requests that decoded to no slave.
    pub decode_errors: u64,
    /// Requests answered with an injected fault
    /// (see `BusConfig::fault_ranges`).
    pub injected_faults: u64,
    /// Queue-wait time from request arrival to grant.
    pub wait: LatencyHistogram,
    /// Largest pending-queue depth observed.
    pub max_queue: usize,
}

impl BusStats {
    /// Record a grant for `master`.
    pub fn record_grant(&mut self, master: ComponentId) {
        if let Some(e) = self.grants.iter_mut().find(|e| e.0 == master) {
            e.1 += 1;
        } else {
            self.grants.push((master, 1));
        }
    }

    /// Total grants across masters.
    pub fn total_grants(&self) -> u64 {
        self.grants.iter().map(|&(_, g)| g).sum()
    }

    /// Grants for one master.
    pub fn grants_for(&self, master: ComponentId) -> u64 {
        self.grants
            .iter()
            .find(|&&(m, _)| m == master)
            .map(|&(_, g)| g)
            .unwrap_or(0)
    }

    /// Bus utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_accounting() {
        let mut s = BusStats::default();
        s.record_grant(3);
        s.record_grant(3);
        s.record_grant(7);
        assert_eq!(s.grants_for(3), 2);
        assert_eq!(s.grants_for(7), 1);
        assert_eq!(s.grants_for(9), 0);
        assert_eq!(s.total_grants(), 3);
    }

    #[test]
    fn utilization_follows_busy_tracker() {
        let mut s = BusStats::default();
        s.busy.set_busy(SimTime(0));
        s.busy.set_idle(SimTime(500));
        assert_eq!(s.utilization(SimTime(1000)), 0.5);
    }
}
