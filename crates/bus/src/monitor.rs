//! Bus observability: utilization, contention and latency statistics.

use std::fmt;

use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

/// Statistics one bus instance accumulates during a run.
#[derive(Default)]
pub struct BusStats {
    /// Bus occupancy (busy during address/data phases, and during the slave
    /// wait in blocking mode).
    pub busy: BusyTracker,
    /// Grants per master, in discovery order.
    pub grants: Vec<(ComponentId, u64)>,
    /// Requests accepted.
    pub requests: u64,
    /// Responses delivered to masters.
    pub responses: u64,
    /// Words moved across the bus (reads + writes).
    pub words: u64,
    /// Requests that decoded to no slave.
    pub decode_errors: u64,
    /// Requests answered with an injected fault
    /// (see `BusConfig::fault_ranges`).
    pub injected_faults: u64,
    /// Queue-wait time from request arrival to grant.
    pub wait: LatencyHistogram,
    /// Queue-wait histograms per master, in discovery order — the raw
    /// material of the [`BusContention`] report.
    pub per_master_wait: Vec<(ComponentId, LatencyHistogram)>,
    /// Largest pending-queue depth observed.
    pub max_queue: usize,
}

impl BusStats {
    /// Record a grant for `master`.
    pub fn record_grant(&mut self, master: ComponentId) {
        if let Some(e) = self.grants.iter_mut().find(|e| e.0 == master) {
            e.1 += 1;
        } else {
            self.grants.push((master, 1));
        }
    }

    /// Total grants across masters.
    pub fn total_grants(&self) -> u64 {
        self.grants.iter().map(|&(_, g)| g).sum()
    }

    /// Grants for one master.
    pub fn grants_for(&self, master: ComponentId) -> u64 {
        self.grants
            .iter()
            .find(|&&(m, _)| m == master)
            .map(|&(_, g)| g)
            .unwrap_or(0)
    }

    /// Record the queue wait of a grant for `master`, in both the
    /// aggregate and the per-master histogram.
    pub fn record_wait(&mut self, master: ComponentId, wait: SimDuration) {
        self.wait.record(wait);
        if let Some(e) = self.per_master_wait.iter_mut().find(|e| e.0 == master) {
            e.1.record(wait);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(wait);
            self.per_master_wait.push((master, h));
        }
    }

    /// Bus utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }

    /// Derive the per-master contention report; `name` resolves a master's
    /// component id to a display label.
    pub fn contention(&self, name: impl Fn(ComponentId) -> String) -> BusContention {
        let mut rows: Vec<ContentionRow> = self
            .per_master_wait
            .iter()
            .map(|(master, wait)| ContentionRow {
                master: name(*master),
                grants: self.grants_for(*master),
                wait: wait.clone(),
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.grants));
        BusContention { rows }
    }
}

impl Snapshotable for BusStats {
    fn snapshot_json(&self) -> Json {
        Json::obj()
            .with("busy", self.busy.snapshot_json())
            .with(
                "grants",
                Json::Arr(
                    self.grants
                        .iter()
                        .map(|&(id, g)| Json::Arr(vec![ju64(id as u64), ju64(g)]))
                        .collect(),
                ),
            )
            .with("requests", ju64(self.requests))
            .with("responses", ju64(self.responses))
            .with("words", ju64(self.words))
            .with("decode_errors", ju64(self.decode_errors))
            .with("injected_faults", ju64(self.injected_faults))
            .with("wait", self.wait.snapshot_json())
            .with(
                "per_master_wait",
                Json::Arr(
                    self.per_master_wait
                        .iter()
                        .map(|(id, h)| Json::Arr(vec![ju64(*id as u64), h.snapshot_json()]))
                        .collect(),
                ),
            )
            .with("max_queue", ju64(self.max_queue as u64))
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        self.busy.restore_json(snap::field(state, "busy")?)?;
        self.grants.clear();
        for e in snap::arr_field(state, "grants")? {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let (id, g) = pair
                .and_then(|p| {
                    Some((
                        drcf_kernel::json::ju64_of(&p[0])?,
                        drcf_kernel::json::ju64_of(&p[1])?,
                    ))
                })
                .ok_or_else(|| snap::err("malformed bus-stats grant entry"))?;
            self.grants.push((id as ComponentId, g));
        }
        self.requests = snap::u64_field(state, "requests")?;
        self.responses = snap::u64_field(state, "responses")?;
        self.words = snap::u64_field(state, "words")?;
        self.decode_errors = snap::u64_field(state, "decode_errors")?;
        self.injected_faults = snap::u64_field(state, "injected_faults")?;
        self.wait.restore_json(snap::field(state, "wait")?)?;
        self.per_master_wait.clear();
        for e in snap::arr_field(state, "per_master_wait")? {
            let pair = e
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| snap::err("malformed per-master wait entry"))?;
            let id = drcf_kernel::json::ju64_of(&pair[0])
                .ok_or_else(|| snap::err("per-master wait id is not a u64"))?;
            let mut h = LatencyHistogram::new();
            h.restore_json(&pair[1])?;
            self.per_master_wait.push((id as ComponentId, h));
        }
        self.max_queue = snap::usize_field(state, "max_queue")?;
        Ok(())
    }
}

/// One master's row of the [`BusContention`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionRow {
    /// Master display name.
    pub master: String,
    /// Grants this master received.
    pub grants: u64,
    /// Grant-latency (queue wait) histogram for this master.
    pub wait: LatencyHistogram,
}

/// Per-master grant-latency report: who got the bus, how often, and how
/// long they queued for it. Derived from [`BusStats::per_master_wait`];
/// render with `Display`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusContention {
    /// Rows, sorted by grant count (heaviest master first).
    pub rows: Vec<ContentionRow>,
}

impl BusContention {
    /// True when no grants were recorded (e.g. tracing a bus-less SoC).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for BusContention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>8} {:>12} {:>12} {:>12}",
            "master", "grants", "mean wait", "p95 wait", "max wait"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>8} {:>12} {:>12} {:>12}",
                r.master,
                r.grants,
                format!("{}", r.wait.mean()),
                format!("{}", r.wait.quantile(0.95)),
                format!("{}", r.wait.max()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_accounting() {
        let mut s = BusStats::default();
        s.record_grant(3);
        s.record_grant(3);
        s.record_grant(7);
        assert_eq!(s.grants_for(3), 2);
        assert_eq!(s.grants_for(7), 1);
        assert_eq!(s.grants_for(9), 0);
        assert_eq!(s.total_grants(), 3);
    }

    #[test]
    fn per_master_wait_feeds_the_contention_report() {
        let mut s = BusStats::default();
        s.record_grant(1);
        s.record_grant(1);
        s.record_grant(2);
        s.record_wait(1, SimDuration::ns(10));
        s.record_wait(1, SimDuration::ns(30));
        s.record_wait(2, SimDuration::ns(5));
        assert_eq!(s.wait.count(), 3, "aggregate histogram still fed");
        let c = s.contention(|id| format!("m{id}"));
        assert_eq!(c.rows.len(), 2);
        assert_eq!(c.rows[0].master, "m1", "heaviest master first");
        assert_eq!(c.rows[0].grants, 2);
        assert_eq!(c.rows[0].wait.mean(), SimDuration::ns(20));
        assert_eq!(c.rows[1].wait.count(), 1);
        let shown = format!("{c}");
        assert!(shown.contains("mean wait"));
        assert!(shown.contains("m1"));
    }

    #[test]
    fn empty_contention_report() {
        let s = BusStats::default();
        let c = s.contention(|id| id.to_string());
        assert!(c.is_empty());
        assert!(format!("{c}").contains("master"));
    }

    #[test]
    fn utilization_follows_busy_tracker() {
        let mut s = BusStats::default();
        s.busy.set_busy(SimTime(0));
        s.busy.set_idle(SimTime(500));
        assert_eq!(s.utilization(SimTime(1000)), 0.5);
    }
}
