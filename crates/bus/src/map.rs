//! Address decoding.
//!
//! The bus decodes each request against a set of `[low, high]` ranges, one
//! per slave — exactly the information the paper's mandatory
//! `get_low_add()` / `get_high_add()` interface methods expose (§5.4,
//! limitation 2).

use drcf_kernel::prelude::ComponentId;

use crate::protocol::Addr;

/// One slave's claim on the address space (inclusive on both ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Lowest claimed address.
    pub low: Addr,
    /// Highest claimed address (inclusive).
    pub high: Addr,
    /// The slave component.
    pub slave: ComponentId,
}

impl Range {
    /// Does this range contain `addr`?
    pub fn contains(&self, addr: Addr) -> bool {
        (self.low..=self.high).contains(&addr)
    }

    /// Do two ranges overlap?
    pub fn overlaps(&self, other: &Range) -> bool {
        self.low <= other.high && other.low <= self.high
    }

    /// Size of the range in addressable units.
    pub fn len(&self) -> u64 {
        self.high - self.low + 1
    }

    /// Ranges are never empty (both bounds inclusive).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The full decode table of one bus.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    ranges: Vec<Range>,
}

impl AddressMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim `[low, high]` for `slave`. Fails on inverted bounds or overlap
    /// with an existing claim.
    pub fn add(&mut self, low: Addr, high: Addr, slave: ComponentId) -> Result<(), String> {
        if low > high {
            return Err(format!("inverted range [{low:#x}, {high:#x}]"));
        }
        let r = Range { low, high, slave };
        for e in &self.ranges {
            if e.overlaps(&r) {
                return Err(format!(
                    "range [{low:#x}, {high:#x}] overlaps [{:#x}, {:#x}] of slave {}",
                    e.low, e.high, e.slave
                ));
            }
        }
        self.ranges.push(r);
        Ok(())
    }

    /// Find the slave claiming `addr`.
    pub fn decode(&self, addr: Addr) -> Option<ComponentId> {
        self.ranges
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| r.slave)
    }

    /// Find the slave claiming the *whole* burst `[addr, addr + words)`.
    /// Bursts may not cross slave boundaries.
    pub fn decode_burst(&self, addr: Addr, words: usize) -> Option<ComponentId> {
        let end = addr.checked_add(words.saturating_sub(1) as u64)?;
        self.ranges
            .iter()
            .find(|r| r.contains(addr) && r.contains(end))
            .map(|r| r.slave)
    }

    /// All claims, in registration order.
    pub fn ranges(&self) -> &[Range] {
        &self.ranges
    }

    /// Number of claims.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// No claims yet?
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::testing::ok;

    #[test]
    fn decode_hits_the_right_slave() {
        let mut m = AddressMap::new();
        ok(m.add(0x000, 0x0FF, 1));
        ok(m.add(0x100, 0x1FF, 2));
        assert_eq!(m.decode(0x000), Some(1));
        assert_eq!(m.decode(0x0FF), Some(1));
        assert_eq!(m.decode(0x100), Some(2));
        assert_eq!(m.decode(0x200), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn overlap_rejected() {
        let mut m = AddressMap::new();
        ok(m.add(0x100, 0x1FF, 1));
        assert!(m.add(0x1FF, 0x2FF, 2).is_err());
        assert!(m.add(0x000, 0x100, 2).is_err());
        assert!(m.add(0x150, 0x160, 2).is_err());
        assert!(m.add(0x200, 0x2FF, 2).is_ok());
    }

    #[test]
    fn inverted_range_rejected() {
        let mut m = AddressMap::new();
        assert!(m.add(0x10, 0x0F, 1).is_err());
    }

    #[test]
    fn single_address_range_works() {
        let mut m = AddressMap::new();
        ok(m.add(0x42, 0x42, 9));
        assert_eq!(m.decode(0x42), Some(9));
        assert_eq!(m.decode(0x41), None);
        assert_eq!(m.ranges()[0].len(), 1);
    }

    #[test]
    fn burst_must_fit_one_slave() {
        let mut m = AddressMap::new();
        ok(m.add(0x00, 0x0F, 1));
        ok(m.add(0x10, 0x1F, 2));
        assert_eq!(m.decode_burst(0x0C, 4), Some(1)); // 0x0C..=0x0F
        assert_eq!(m.decode_burst(0x0D, 4), None); // crosses into slave 2
        assert_eq!(m.decode_burst(0x10, 16), Some(2));
        assert_eq!(m.decode_burst(0x10, 17), None);
    }

    #[test]
    fn burst_overflow_is_a_decode_miss() {
        let mut m = AddressMap::new();
        ok(m.add(0x00, Addr::MAX, 1));
        assert_eq!(m.decode_burst(Addr::MAX, 2), None);
    }
}
