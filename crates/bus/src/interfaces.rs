//! The master/slave interface contracts.
//!
//! [`BusSlaveModel`] is the Rust rendering of the paper's `bus_slv_if`:
//!
//! ```text
//! class bus_slv_if : public virtual sc_interface {
//!   virtual sc_uint<ADDW> get_low_add()=0;
//!   virtual sc_uint<ADDW> get_high_add()=0;
//!   virtual bool read(sc_uint<ADDW> add, sc_int<DATAW> *data)=0;
//!   virtual bool write(sc_uint<ADDW> add, sc_int<DATAW> *data)=0;
//! };
//! ```
//!
//! Anything implementing it can be attached to a bus through
//! [`SlaveAdapter`] — or folded into a DRCF as a context, which is how the
//! transformation of §5.2 preserves functionality. [`MasterPort`] is the
//! master-side helper that issues split transactions and holds a kernel
//! obligation until each response arrives.

use drcf_kernel::json::{ju64, ju64_of, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

use crate::protocol::{
    Addr, BusOp, BusRequest, BusResponse, BusStatus, SlaveAccess, SlaveReply, TxnId, Word,
};
use crate::snapshot::{time_json, time_of, words_json, words_of};

/// A functional slave model: address range, word read/write, and a timing
/// hook. This is the unit the DRCF methodology moves between "own hardware
/// accelerator" and "context on the reconfigurable fabric".
// read/write mirror the paper's `bool read(...)` contract: the only error
// information a slave reports is success/failure.
#[allow(clippy::result_unit_err)]
pub trait BusSlaveModel: 'static {
    /// `get_low_add()` of the paper: lowest claimed address (word units).
    fn low_addr(&self) -> Addr;
    /// `get_high_add()` of the paper: highest claimed address (inclusive).
    fn high_addr(&self) -> Addr;
    /// Functional read of one word.
    fn read(&mut self, addr: Addr) -> Result<Word, ()>;
    /// Functional write of one word.
    fn write(&mut self, addr: Addr, data: Word) -> Result<(), ()>;
    /// Processing time of an access, in cycles of the slave's clock
    /// (defaults to a single cycle).
    fn access_cycles(&self, _op: BusOp, _addr: Addr, burst: usize) -> u64 {
        burst as u64
    }
    /// Model name for reports.
    fn model_name(&self) -> &str {
        "slave"
    }
    /// Capture the model's dynamic state for `Simulator::snapshot`. The
    /// default fails loudly, like `Component::snapshot`: a stateful model
    /// must opt in, or a restore would silently resurrect stale contents.
    fn snapshot_state(&self) -> Result<Json, String> {
        Err(format!(
            "slave model {:?} does not implement snapshot",
            self.model_name()
        ))
    }
    /// Restore state captured by [`BusSlaveModel::snapshot_state`].
    fn restore_state(&mut self, _state: &Json) -> Result<(), String> {
        Err(format!(
            "slave model {:?} does not implement restore",
            self.model_name()
        ))
    }
    /// Deterministic mutation counter: bumped on every state change, equal
    /// between two points in a run iff the model's state is unchanged
    /// between them. Containers embedding many models (a DRCF holding one
    /// model per context) serialize it next to `snapshot_state` and use it
    /// during *live* restores along a snapshot lineage to skip re-parsing
    /// models whose epoch matches the document. `None` (the default) opts
    /// out: the model is always re-parsed.
    fn change_epoch(&self) -> Option<u64> {
        None
    }
}

/// Apply a whole [`BusRequest`] to a model functionally, producing the
/// response payload. Shared by [`SlaveAdapter`] and the DRCF fabric so both
/// paths produce bit-identical results.
pub fn apply_request<M: BusSlaveModel + ?Sized>(model: &mut M, req: &BusRequest) -> BusResponse {
    let mut data = Vec::new();
    let mut status = BusStatus::Ok;
    match req.op {
        BusOp::Read => {
            data.reserve_exact(req.burst);
            for i in 0..req.burst {
                match model.read(req.addr + i as u64) {
                    Ok(w) => data.push(w),
                    Err(()) => {
                        status = BusStatus::SlaveError;
                        data.clear();
                        break;
                    }
                }
            }
        }
        BusOp::Write => {
            for (i, &w) in req.data.iter().enumerate() {
                if model.write(req.addr + i as u64, w).is_err() {
                    status = BusStatus::SlaveError;
                    break;
                }
            }
        }
    }
    BusResponse {
        id: req.id,
        op: req.op,
        addr: req.addr,
        status,
        data,
    }
}

/// Kernel component that exposes a [`BusSlaveModel`] on a bus: performs the
/// functional access immediately, then replies after the model's processing
/// time, serializing overlapping accesses (a single-ported slave).
pub struct SlaveAdapter<M: BusSlaveModel> {
    model: M,
    clock_mhz: u64,
    busy_until: SimTime,
    /// Accesses served.
    pub accesses: u64,
    /// Accumulated service time.
    pub busy_time: SimDuration,
}

impl<M: BusSlaveModel> SlaveAdapter<M> {
    /// Wrap `model`, timing accesses against a clock of `clock_mhz` MHz.
    pub fn new(model: M, clock_mhz: u64) -> Self {
        crate::snapshot::register_bus_codecs();
        SlaveAdapter {
            model,
            clock_mhz,
            busy_until: SimTime::ZERO,
            accesses: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }
}

impl<M: BusSlaveModel> Component for SlaveAdapter<M> {
    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("model", self.model.snapshot_state().map_err(snap::err)?)
            .with("busy_until", time_json(self.busy_until))
            .with("accesses", ju64(self.accesses))
            .with("busy_time", ju64(self.busy_time.as_fs())))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.model
            .restore_state(snap::field(state, "model")?)
            .map_err(snap::err)?;
        self.busy_until = time_of(snap::field(state, "busy_until")?)
            .ok_or_else(|| snap::err("slave adapter busy_until is not a time"))?;
        self.accesses = snap::u64_field(state, "accesses")?;
        self.busy_time = SimDuration::fs(snap::u64_field(state, "busy_time")?);
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        let access = match msg.user::<SlaveAccess>() {
            Ok(a) => a,
            Err(_) => return,
        };
        self.accesses += 1;
        let resp = apply_request(&mut self.model, &access.req);
        let cycles = self
            .model
            .access_cycles(access.req.op, access.req.addr, access.req.burst);
        let service = SimDuration::cycles_at_mhz(cycles, self.clock_mhz);
        // Single-ported slave: a new access starts only after the previous
        // one finishes.
        let start = self.busy_until.max(api.now());
        let done = start + service;
        self.busy_until = done;
        self.busy_time += service;
        let delay = done.since(api.now());
        api.send_in(
            access.bus,
            SlaveReply {
                resp,
                master: access.req.master,
            },
            delay,
        );
    }
}

/// Master-side transaction bookkeeping. Embed one per master port; call
/// [`MasterPort::read`]/[`MasterPort::write`] to issue, and
/// [`MasterPort::take_response`] inside `handle` to claim responses.
pub struct MasterPort {
    bus: ComponentId,
    priority: u8,
    next_txn: TxnId,
    in_flight: Vec<(TxnId, SimTime)>,
    /// Transactions issued.
    pub issued: u64,
    /// Responses received.
    pub completed: u64,
    /// Responses that came back with an error status.
    pub errors: u64,
    /// End-to-end transaction latency distribution.
    pub latency: LatencyHistogram,
}

impl MasterPort {
    /// New port talking to `bus`, issuing at `priority`.
    pub fn new(bus: ComponentId, priority: u8) -> Self {
        crate::snapshot::register_bus_codecs();
        MasterPort {
            bus,
            priority,
            next_txn: 1,
            in_flight: Vec::new(),
            issued: 0,
            completed: 0,
            errors: 0,
            latency: LatencyHistogram::new(),
        }
    }

    /// The bus this port is bound to.
    pub fn bus(&self) -> ComponentId {
        self.bus
    }

    /// Transactions currently awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    fn issue(
        &mut self,
        api: &mut Api<'_>,
        op: BusOp,
        addr: Addr,
        burst: usize,
        data: Vec<Word>,
    ) -> TxnId {
        let id = self.next_txn;
        self.next_txn += 1;
        let req = BusRequest {
            id,
            master: api.me(),
            op,
            addr,
            burst,
            data,
            priority: self.priority,
        };
        debug_assert!(req.validate().is_ok(), "malformed request");
        self.in_flight.push((id, api.now()));
        self.issued += 1;
        api.obligation_begin();
        api.send(self.bus, req, Delay::Delta);
        id
    }

    /// Issue a burst read of `burst` words starting at `addr`.
    pub fn read(&mut self, api: &mut Api<'_>, addr: Addr, burst: usize) -> TxnId {
        self.issue(api, BusOp::Read, addr, burst, Vec::new())
    }

    /// Issue a burst write.
    pub fn write(&mut self, api: &mut Api<'_>, addr: Addr, data: Vec<Word>) -> TxnId {
        let burst = data.len();
        self.issue(api, BusOp::Write, addr, burst, data)
    }

    /// Adopt an externally-created transaction: the in-flight burst a
    /// de-coalesced configuration train hands back
    /// ([`crate::protocol::InFlightBurst`]). The bus chose `id` from its
    /// own id space and will deliver the [`BusResponse`] to this component;
    /// adopting makes it claimable via [`MasterPort::take_response`] with
    /// the usual obligation accounting, as if this port had issued it at
    /// `issued_at`.
    pub fn adopt(&mut self, api: &mut Api<'_>, id: TxnId, issued_at: SimTime) {
        self.in_flight.push((id, issued_at));
        self.issued += 1;
        api.obligation_begin();
    }

    /// Claim a [`BusResponse`] belonging to this port. Returns the message
    /// untouched when it is not one of ours.
    pub fn take_response(&mut self, api: &mut Api<'_>, msg: Msg) -> Result<BusResponse, Msg> {
        let source = msg.source;
        let resp = msg.user::<BusResponse>()?;
        let Some(pos) = self.in_flight.iter().position(|&(id, _)| id == resp.id) else {
            // A response, but not to one of our transactions: rebox it so
            // another port embedded in the same component can claim it.
            return Err(Msg {
                source,
                kind: MsgKind::User(Box::new(resp)),
            });
        };
        let (_, issued_at) = self.in_flight.swap_remove(pos);
        self.completed += 1;
        if !resp.is_ok() {
            self.errors += 1;
        }
        self.latency.record(api.now().since(issued_at));
        api.obligation_end();
        Ok(resp)
    }
}

impl Snapshotable for MasterPort {
    fn snapshot_json(&self) -> Json {
        Json::obj()
            .with("next_txn", ju64(self.next_txn))
            .with(
                "in_flight",
                Json::Arr(
                    self.in_flight
                        .iter()
                        .map(|&(id, at)| Json::Arr(vec![ju64(id), time_json(at)]))
                        .collect(),
                ),
            )
            .with("issued", ju64(self.issued))
            .with("completed", ju64(self.completed))
            .with("errors", ju64(self.errors))
            .with("latency", self.latency.snapshot_json())
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        self.next_txn = snap::u64_field(state, "next_txn")?;
        self.in_flight.clear();
        for e in snap::arr_field(state, "in_flight")? {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let (id, at) = pair
                .and_then(|p| Some((ju64_of(&p[0])?, time_of(&p[1])?)))
                .ok_or_else(|| snap::err("malformed in-flight transaction entry"))?;
            self.in_flight.push((id, at));
        }
        self.issued = snap::u64_field(state, "issued")?;
        self.completed = snap::u64_field(state, "completed")?;
        self.errors = snap::u64_field(state, "errors")?;
        self.latency.restore_json(snap::field(state, "latency")?)?;
        Ok(())
    }
}

/// A trivially configurable register-file slave used in tests and as the
/// control interface of simple accelerators.
pub struct RegisterFile {
    low: Addr,
    regs: Vec<Word>,
    cycles: u64,
    name: String,
}

impl RegisterFile {
    /// `count` registers starting at `low`, `cycles` per access.
    pub fn new(name: &str, low: Addr, count: usize, cycles: u64) -> Self {
        RegisterFile {
            low,
            regs: vec![0; count],
            cycles,
            name: name.to_string(),
        }
    }

    /// Direct register access (outside the bus).
    pub fn reg(&self, i: usize) -> Word {
        self.regs[i]
    }
}

impl BusSlaveModel for RegisterFile {
    fn low_addr(&self) -> Addr {
        self.low
    }
    fn high_addr(&self) -> Addr {
        self.low + self.regs.len() as u64 - 1
    }
    fn read(&mut self, addr: Addr) -> Result<Word, ()> {
        self.regs.get((addr - self.low) as usize).copied().ok_or(())
    }
    fn write(&mut self, addr: Addr, data: Word) -> Result<(), ()> {
        let i = (addr - self.low) as usize;
        match self.regs.get_mut(i) {
            Some(r) => {
                *r = data;
                Ok(())
            }
            None => Err(()),
        }
    }
    fn access_cycles(&self, _op: BusOp, _addr: Addr, burst: usize) -> u64 {
        self.cycles * burst as u64
    }
    fn model_name(&self) -> &str {
        &self.name
    }
    fn snapshot_state(&self) -> Result<Json, String> {
        Ok(Json::obj().with("regs", words_json(&self.regs)))
    }
    fn restore_state(&mut self, state: &Json) -> Result<(), String> {
        let regs = state
            .get("regs")
            .and_then(words_of)
            .ok_or("register file regs missing")?;
        if regs.len() != self.regs.len() {
            return Err(format!(
                "register file {:?} has {} registers, snapshot has {}",
                self.name,
                self.regs.len(),
                regs.len()
            ));
        }
        self.regs = regs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::testing::ok;

    #[test]
    fn register_file_roundtrip() {
        let mut rf = RegisterFile::new("rf", 0x100, 4, 1);
        assert_eq!(rf.low_addr(), 0x100);
        assert_eq!(rf.high_addr(), 0x103);
        ok(rf.write(0x102, 77));
        assert_eq!(rf.read(0x102), Ok(77));
        assert_eq!(rf.reg(2), 77);
        assert!(rf.read(0x104).is_err());
        assert!(rf.write(0x104, 1).is_err());
    }

    #[test]
    fn apply_request_read_burst() {
        let mut rf = RegisterFile::new("rf", 0, 4, 1);
        for i in 0..4 {
            ok(rf.write(i, i * 10));
        }
        let req = BusRequest {
            id: 9,
            master: 0,
            op: BusOp::Read,
            addr: 1,
            burst: 3,
            data: vec![],
            priority: 0,
        };
        let resp = apply_request(&mut rf, &req);
        assert!(resp.is_ok());
        assert_eq!(resp.data, vec![10, 20, 30]);
        assert_eq!(resp.id, 9);
    }

    #[test]
    fn apply_request_write_then_read() {
        let mut rf = RegisterFile::new("rf", 0, 4, 1);
        let w = BusRequest {
            id: 1,
            master: 0,
            op: BusOp::Write,
            addr: 0,
            burst: 2,
            data: vec![5, 6],
            priority: 0,
        };
        assert!(apply_request(&mut rf, &w).is_ok());
        assert_eq!(rf.reg(0), 5);
        assert_eq!(rf.reg(1), 6);
    }

    #[test]
    fn apply_request_out_of_range_is_slave_error() {
        let mut rf = RegisterFile::new("rf", 0, 2, 1);
        let r = BusRequest {
            id: 1,
            master: 0,
            op: BusOp::Read,
            addr: 0,
            burst: 4, // runs past the end
            data: vec![],
            priority: 0,
        };
        let resp = apply_request(&mut rf, &r);
        assert_eq!(resp.status, BusStatus::SlaveError);
        assert!(resp.data.is_empty());
    }

    #[test]
    fn default_access_cycles_scale_with_burst() {
        struct Plain;
        impl BusSlaveModel for Plain {
            fn low_addr(&self) -> Addr {
                0
            }
            fn high_addr(&self) -> Addr {
                10
            }
            fn read(&mut self, _: Addr) -> Result<Word, ()> {
                Ok(0)
            }
            fn write(&mut self, _: Addr, _: Word) -> Result<(), ()> {
                Ok(())
            }
        }
        assert_eq!(Plain.access_cycles(BusOp::Read, 0, 8), 8);
        assert_eq!(Plain.model_name(), "slave");
    }
}
