//! The shared system bus.
//!
//! Bus-cycle-level timing (the "bus-cycle accurate" level of the ADRIATIC
//! flow, Fig. 3): every transaction pays an arbitration/address setup cost
//! plus per-word data cycles; a configurable arbiter picks among pending
//! masters; and the bus runs in one of two modes:
//!
//! * **Blocking** — the bus is held from grant until the slave's reply has
//!   been returned to the master, like a blocking interface-method call in
//!   the paper's SystemC listing. If a slave needs the *same* bus to make
//!   progress (a DRCF loading a context), the system deadlocks — the exact
//!   failure of §5.4, limitation 3, which the kernel detects and reports.
//! * **Split** — the bus is released between the address phase and the
//!   response phase, so slaves may master the bus while owing responses.

use drcf_kernel::prelude::*;

use crate::arbiter::{Arbiter, ArbiterKind, Candidate};
use crate::map::AddressMap;
use crate::monitor::BusStats;
use crate::protocol::{Addr, BusOp, BusRequest, BusResponse, BusStatus, SlaveAccess, SlaveReply};

/// Blocking or split operation; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusMode {
    /// Hold the bus across the slave's processing time.
    Blocking,
    /// Release the bus between address and response phases.
    Split,
}

/// Static bus parameters.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Bus clock in MHz.
    pub clock_mhz: u64,
    /// Arbitration + address cycles paid by every phase.
    pub setup_cycles: u64,
    /// Data cycles per word transferred (a 64-bit word on a 32-bit bus
    /// would be 2; on a 64-bit bus, 1).
    pub cycles_per_word: u64,
    /// Operation mode.
    pub mode: BusMode,
    /// Arbitration policy.
    pub arbiter: ArbiterKind,
    /// Fault injection: inclusive `[low, high]` address ranges whose
    /// accesses are granted normally but answered with a
    /// [`BusStatus::SlaveError`] response, raising a typed
    /// [`SimErrorKind::Fault`] so the enclosing run returns `Err`.
    pub fault_ranges: Vec<(Addr, Addr)>,
    /// When true, a decode miss escalates to a typed
    /// [`SimErrorKind::Decode`] run error in addition to the
    /// [`BusStatus::DecodeError`] response the master receives either way.
    pub escalate_decode_errors: bool,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            clock_mhz: 100,
            setup_cycles: 1,
            cycles_per_word: 1,
            mode: BusMode::Split,
            arbiter: ArbiterKind::Priority,
            fault_ranges: Vec::new(),
            escalate_decode_errors: false,
        }
    }
}

impl BusConfig {
    /// Cycles occupied on the bus by the request phase (address, plus write
    /// data travelling with it).
    pub fn request_cycles(&self, op: BusOp, burst: usize) -> u64 {
        self.setup_cycles
            + match op {
                BusOp::Write => burst as u64 * self.cycles_per_word,
                BusOp::Read => 0,
            }
    }

    /// Cycles occupied by the response phase (read data returning; writes
    /// acknowledge in the setup cycles alone).
    pub fn response_cycles(&self, op: BusOp, burst: usize) -> u64 {
        self.setup_cycles
            + match op {
                BusOp::Read => burst as u64 * self.cycles_per_word,
                BusOp::Write => 0,
            }
    }

    /// Duration of `cycles` bus cycles.
    pub fn cycles(&self, cycles: u64) -> SimDuration {
        SimDuration::cycles_at_mhz(cycles, self.clock_mhz)
    }

    /// Does the burst `[addr, addr + burst)` touch an injected fault range?
    pub fn fault_at(&self, addr: Addr, burst: usize) -> bool {
        let end = addr.saturating_add(burst.saturating_sub(1) as u64);
        self.fault_ranges
            .iter()
            .any(|&(low, high)| addr <= high && low <= end)
    }
}

enum Pending {
    Request {
        req: BusRequest,
        arrival: u64,
        arrived_at: SimTime,
    },
    Response {
        reply: SlaveReply,
        arrival: u64,
        arrived_at: SimTime,
    },
}

impl Pending {
    fn candidate(&self) -> Candidate {
        match self {
            Pending::Request { req, arrival, .. } => Candidate {
                master: req.master,
                priority: req.priority,
                arrival: *arrival,
                is_response: false,
            },
            Pending::Response { reply, arrival, .. } => Candidate {
                master: reply.master,
                priority: u8::MAX,
                arrival: *arrival,
                is_response: true,
            },
        }
    }
}

enum State {
    Idle,
    /// Request phase in progress; at the timer, the access goes to `slave`.
    RequestPhase {
        req: BusRequest,
        slave: ComponentId,
    },
    /// Blocking mode only: bus held while the slave processes.
    WaitSlave,
    /// Response data returning to the master.
    ResponsePhase {
        reply: SlaveReply,
    },
}

const TAG_REQ_DONE: u64 = 1;
const TAG_RESP_DONE: u64 = 2;
const TAG_RETRY: u64 = 3;

/// The shared bus component.
pub struct Bus {
    cfg: BusConfig,
    map: AddressMap,
    arbiter: Box<dyn Arbiter>,
    pending: Vec<Pending>,
    arrivals: u64,
    state: State,
    retry_armed: bool,
    /// Accumulated statistics.
    pub stats: BusStats,
}

impl Bus {
    /// New bus with the given configuration and decode map.
    pub fn new(cfg: BusConfig, map: AddressMap) -> Self {
        let arbiter = cfg.arbiter.build();
        Bus {
            cfg,
            map,
            arbiter,
            pending: Vec::new(),
            arrivals: 0,
            state: State::Idle,
            retry_armed: false,
            stats: BusStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// The decode map.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    fn enqueue_request(&mut self, api: &mut Api<'_>, req: BusRequest) {
        if let Err(e) = req.validate() {
            api.raise(
                SimErrorKind::BusError,
                format!("malformed bus request: {e}"),
            );
            let resp = BusResponse {
                id: req.id,
                op: req.op,
                addr: req.addr,
                status: BusStatus::SlaveError,
                data: vec![],
            };
            api.send(req.master, resp, Delay::Delta);
            return;
        }
        self.stats.requests += 1;
        api.trace_instant(TraceCategory::Bus, "request", req.master as u64);
        let arrival = self.arrivals;
        self.arrivals += 1;
        self.pending.push(Pending::Request {
            req,
            arrival,
            arrived_at: api.now(),
        });
        self.stats.max_queue = self.stats.max_queue.max(self.pending.len());
        api.trace_counter(TraceCategory::Bus, "queue_depth", self.pending.len() as u64);
        self.try_grant(api);
    }

    fn enqueue_response(&mut self, api: &mut Api<'_>, reply: SlaveReply) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        self.pending.push(Pending::Response {
            reply,
            arrival,
            arrived_at: api.now(),
        });
        self.stats.max_queue = self.stats.max_queue.max(self.pending.len());
        self.try_grant(api);
    }

    fn try_grant(&mut self, api: &mut Api<'_>) {
        if !matches!(self.state, State::Idle) || self.pending.is_empty() {
            return;
        }
        let candidates: Vec<Candidate> = self.pending.iter().map(Pending::candidate).collect();
        let Some(idx) = self.arbiter.pick(api.now(), &candidates) else {
            // TDMA outside the owner's slot: retry at the next boundary.
            self.arm_retry(api);
            return;
        };
        let item = self.pending.swap_remove(idx);
        self.stats.busy.set_busy(api.now());
        match item {
            Pending::Request {
                req, arrived_at, ..
            } => {
                self.stats.record_grant(req.master);
                self.stats
                    .record_wait(req.master, api.now().since(arrived_at));
                api.trace_instant(TraceCategory::Bus, "grant", req.master as u64);
                if self.cfg.fault_at(req.addr, req.burst) {
                    self.stats.injected_faults += 1;
                    api.trace_instant(TraceCategory::Bus, "injected_fault", req.addr);
                    api.raise(
                        SimErrorKind::Fault,
                        format!(
                            "injected bus fault: addr {:#x} burst {}",
                            req.addr, req.burst
                        ),
                    );
                    let resp = BusResponse {
                        id: req.id,
                        op: req.op,
                        addr: req.addr,
                        status: BusStatus::SlaveError,
                        data: vec![],
                    };
                    self.stats.responses += 1;
                    api.send(req.master, resp, Delay::Delta);
                    self.stats.busy.set_idle(api.now());
                    self.try_grant(api);
                    return;
                }
                match self.map.decode_burst(req.addr, req.burst) {
                    Some(slave) => {
                        let cycles = self.cfg.request_cycles(req.op, req.burst);
                        if req.op == BusOp::Write {
                            self.stats.words += req.burst as u64;
                        }
                        api.timer_in(self.cfg.cycles(cycles), TAG_REQ_DONE);
                        api.trace_begin(TraceCategory::Bus, "request_phase", req.master as u64);
                        self.state = State::RequestPhase { req, slave };
                    }
                    None => {
                        self.stats.decode_errors += 1;
                        api.trace_instant(TraceCategory::Bus, "decode_error", req.addr);
                        let text = format!(
                            "decode error: addr {:#x} burst {} claimed by no slave",
                            req.addr, req.burst
                        );
                        if self.cfg.escalate_decode_errors {
                            api.raise(SimErrorKind::Decode, text);
                        } else {
                            api.log(Severity::Warning, text);
                        }
                        let resp = BusResponse {
                            id: req.id,
                            op: req.op,
                            addr: req.addr,
                            status: BusStatus::DecodeError,
                            data: vec![],
                        };
                        self.stats.responses += 1;
                        api.send(req.master, resp, Delay::Delta);
                        self.stats.busy.set_idle(api.now());
                        self.try_grant(api);
                    }
                }
            }
            Pending::Response {
                reply, arrived_at, ..
            } => {
                self.stats.record_grant(reply.master);
                self.stats
                    .record_wait(reply.master, api.now().since(arrived_at));
                api.trace_instant(TraceCategory::Bus, "grant", reply.master as u64);
                let cycles = self
                    .cfg
                    .response_cycles(reply.resp.op, reply.resp.data.len().max(1));
                if reply.resp.op == BusOp::Read {
                    self.stats.words += reply.resp.data.len() as u64;
                }
                api.timer_in(self.cfg.cycles(cycles), TAG_RESP_DONE);
                api.trace_begin(TraceCategory::Bus, "response_phase", reply.master as u64);
                self.state = State::ResponsePhase { reply };
            }
        }
    }

    fn arm_retry(&mut self, api: &mut Api<'_>) {
        if self.retry_armed {
            return;
        }
        if let ArbiterKind::Tdma { slot, .. } = &self.cfg.arbiter {
            let slot_fs = slot.as_fs();
            let next = (api.now().as_fs() / slot_fs + 1) * slot_fs;
            let delay = SimDuration::fs(next - api.now().as_fs());
            self.retry_armed = true;
            api.timer_in(delay, TAG_RETRY);
        }
    }

    fn request_phase_done(&mut self, api: &mut Api<'_>) {
        let State::RequestPhase { req, slave } = std::mem::replace(&mut self.state, State::Idle)
        else {
            api.raise(
                SimErrorKind::Internal,
                "request-done timer fired outside the request phase",
            );
            return;
        };
        api.trace_end(TraceCategory::Bus, "request_phase", req.master as u64);
        let me = api.me();
        api.send(slave, SlaveAccess { req, bus: me }, Delay::Delta);
        match self.cfg.mode {
            BusMode::Blocking => {
                // Bus stays granted (and busy) until the reply returns.
                api.trace_begin(TraceCategory::Bus, "wait_slave", 0);
                self.state = State::WaitSlave;
            }
            BusMode::Split => {
                self.stats.busy.set_idle(api.now());
                self.try_grant(api);
            }
        }
    }

    fn reply_arrived(&mut self, api: &mut Api<'_>, reply: SlaveReply) {
        match self.cfg.mode {
            BusMode::Blocking => {
                debug_assert!(
                    matches!(self.state, State::WaitSlave),
                    "blocking bus got a reply while not waiting"
                );
                api.trace_end(TraceCategory::Bus, "wait_slave", 0);
                let cycles = self
                    .cfg
                    .response_cycles(reply.resp.op, reply.resp.data.len().max(1));
                if reply.resp.op == BusOp::Read {
                    self.stats.words += reply.resp.data.len() as u64;
                }
                api.timer_in(self.cfg.cycles(cycles), TAG_RESP_DONE);
                api.trace_begin(TraceCategory::Bus, "response_phase", reply.master as u64);
                self.state = State::ResponsePhase { reply };
            }
            BusMode::Split => self.enqueue_response(api, reply),
        }
    }

    fn response_phase_done(&mut self, api: &mut Api<'_>) {
        let State::ResponsePhase { reply } = std::mem::replace(&mut self.state, State::Idle) else {
            api.raise(
                SimErrorKind::Internal,
                "response-done timer fired outside the response phase",
            );
            return;
        };
        self.stats.responses += 1;
        api.trace_end(TraceCategory::Bus, "response_phase", reply.master as u64);
        api.send(reply.master, reply.resp, Delay::Delta);
        self.stats.busy.set_idle(api.now());
        self.try_grant(api);
    }
}

impl Component for Bus {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Timer(TAG_REQ_DONE) => self.request_phase_done(api),
            MsgKind::Timer(TAG_RESP_DONE) => self.response_phase_done(api),
            MsgKind::Timer(TAG_RETRY) => {
                self.retry_armed = false;
                self.try_grant(api);
            }
            MsgKind::Start => {}
            _ => {
                let msg = match msg.user::<BusRequest>() {
                    Ok(req) => {
                        self.enqueue_request(api, req);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok(reply) = msg.user::<SlaveReply>() {
                    self.reply_arrived(api, reply);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfaces::{MasterPort, RegisterFile, SlaveAdapter};
    use drcf_kernel::testing::ok;

    /// A master that runs a fixed sequence of reads/writes back-to-back.
    struct SeqMaster {
        port: MasterPort,
        program: Vec<(BusOp, u64, Vec<u64>)>, // (op, addr, write data) reads use burst=data capacity
        pc: usize,
        pub responses: Vec<BusResponse>,
    }

    impl SeqMaster {
        fn new(bus: ComponentId, program: Vec<(BusOp, u64, Vec<u64>)>) -> Self {
            SeqMaster {
                port: MasterPort::new(bus, 1),
                program,
                pc: 0,
                responses: vec![],
            }
        }

        fn issue_next(&mut self, api: &mut Api<'_>) {
            if let Some((op, addr, data)) = self.program.get(self.pc).cloned() {
                self.pc += 1;
                match op {
                    BusOp::Read => {
                        let burst = data.first().map(|&b| b as usize).unwrap_or(1);
                        self.port.read(api, addr, burst);
                    }
                    BusOp::Write => {
                        self.port.write(api, addr, data);
                    }
                }
            }
        }
    }

    impl Component for SeqMaster {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match msg.kind {
                MsgKind::Start => self.issue_next(api),
                _ => {
                    if let Ok(resp) = self.port.take_response(api, msg) {
                        self.responses.push(resp);
                        self.issue_next(api);
                    }
                }
            }
        }
    }

    fn build(mode: BusMode) -> (Simulator, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        // ids: 0 = master, 1 = bus, 2 = slave
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let cfg = BusConfig {
            mode,
            ..BusConfig::default()
        };
        let master = sim.add(
            "master",
            SeqMaster::new(
                1,
                vec![
                    (BusOp::Write, 0x100, vec![7, 8]),
                    (BusOp::Read, 0x100, vec![2]), // burst 2
                ],
            ),
        );
        let bus = sim.add("bus", Bus::new(cfg, map));
        let _slave = sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        (sim, master, bus)
    }

    #[test]
    fn write_then_read_roundtrip_split() {
        let (mut sim, master, bus) = build(BusMode::Split);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 2);
        assert!(m.responses.iter().all(|r| r.is_ok()));
        assert_eq!(m.responses[1].data, vec![7, 8]);
        let b = sim.get::<Bus>(bus);
        assert_eq!(b.stats.requests, 2);
        assert_eq!(b.stats.responses, 2);
        assert_eq!(b.stats.words, 4); // 2 written + 2 read
        assert_eq!(b.stats.decode_errors, 0);
    }

    #[test]
    fn write_then_read_roundtrip_blocking() {
        let (mut sim, master, _) = build(BusMode::Blocking);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 2);
        assert_eq!(m.responses[1].data, vec![7, 8]);
    }

    #[test]
    fn decode_error_reported() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let master = sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0xDEAD, vec![1])]),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 1);
        assert_eq!(m.responses[0].status, BusStatus::DecodeError);
        assert_eq!(m.port.errors, 1);
    }

    #[test]
    fn burst_crossing_slaves_is_decode_error() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x103, 2));
        let master = sim.add(
            "master",
            // Read 8 words starting at 0x100: runs past the slave.
            SeqMaster::new(1, vec![(BusOp::Read, 0x100, vec![8])]),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 4, 1), 100),
        );
        ok(sim.run());
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses[0].status, BusStatus::DecodeError);
    }

    #[test]
    fn timing_blocking_single_read() {
        // Blocking read of 1 word at 100 MHz (10ns cycles), setup 1,
        // cpw 1, slave 1 cycle:
        //   request phase  = 1 cycle  (10 ns)
        //   slave service  = 1 cycle  (10 ns)
        //   response phase = 1 setup + 1 word = 2 cycles (20 ns)
        // plus delta deliveries at zero time. Total simulated time = 40 ns.
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xF, 2));
        let cfg = BusConfig {
            mode: BusMode::Blocking,
            ..BusConfig::default()
        };
        sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0x0, vec![1])]),
        );
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x0, 16, 1), 100),
        );
        ok(sim.run());
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(40));
    }

    #[test]
    fn split_mode_overlaps_two_masters() {
        // Two masters each read from a slow slave (20 cycles). In split
        // mode the second request's address phase proceeds while the first
        // slave access is in flight, so total time is well below the
        // blocking-mode serialization.
        let run = |mode: BusMode| {
            let mut sim = Simulator::new();
            let mut map = AddressMap::new();
            ok(map.add(0x0, 0xFF, 3));
            let cfg = BusConfig {
                mode,
                ..BusConfig::default()
            };
            sim.add("m0", SeqMaster::new(2, vec![(BusOp::Read, 0x0, vec![1])]));
            sim.add("m1", SeqMaster::new(2, vec![(BusOp::Read, 0x10, vec![1])]));
            sim.add("bus", Bus::new(cfg, map));
            sim.add(
                "slave",
                SlaveAdapter::new(RegisterFile::new("rf", 0x0, 256, 20), 100),
            );
            assert!(sim.run().is_ok());
            sim.now().as_fs()
        };
        let split = run(BusMode::Split);
        let blocking = run(BusMode::Blocking);
        assert!(
            split < blocking,
            "split {split} should finish before blocking {blocking}"
        );
    }

    #[test]
    fn tdma_bus_grants_only_in_owner_slots() {
        // Two masters, TDMA slots of 1us each. Master 1 owns even slots,
        // master 0 (id 0) owns odd... owners = [0, 3] means master ids.
        let mut sim = Simulator::new();
        // ids: m0=0, m1=1, bus=2, slave=3.
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xFF, 3));
        let cfg = BusConfig {
            arbiter: ArbiterKind::Tdma {
                owners: vec![0, 1],
                slot: SimDuration::us(1),
            },
            ..BusConfig::default()
        };
        sim.add("m0", SeqMaster::new(2, vec![(BusOp::Read, 0x0, vec![1])]));
        sim.add("m1", SeqMaster::new(2, vec![(BusOp::Read, 0x1, vec![1])]));
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x0, 256, 1), 100),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        // Both complete; master 1's request had to wait for its slot
        // (slot 1 starts at 1us).
        let m0 = sim.get::<SeqMaster>(0);
        let m1 = sim.get::<SeqMaster>(1);
        assert_eq!(m0.responses.len(), 1);
        assert_eq!(m1.responses.len(), 1);
        assert!(
            sim.now() >= SimTime::ZERO + SimDuration::us(1),
            "master 1 must have waited for its TDMA slot, ended {}",
            sim.now()
        );
    }

    #[test]
    fn tdma_retry_fires_when_no_owner_pending() {
        // Only the slot-1 owner requests during slot 0: the bus must arm a
        // retry at the slot boundary instead of idling forever.
        let mut sim = Simulator::new();
        // ids: m0=0, bus=1, slave=2.
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xFF, 2));
        let cfg = BusConfig {
            arbiter: ArbiterKind::Tdma {
                owners: vec![99, 0], // slot 0 owned by an absent master
                slot: SimDuration::us(1),
            },
            ..BusConfig::default()
        };
        sim.add("m0", SeqMaster::new(1, vec![(BusOp::Read, 0x0, vec![1])]));
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x0, 256, 1), 100),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m0 = sim.get::<SeqMaster>(0);
        assert_eq!(m0.responses.len(), 1, "request served in master 0's slot");
        assert!(sim.now() >= SimTime::ZERO + SimDuration::us(1));
    }

    #[test]
    fn injected_fault_range_fails_the_run() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let cfg = BusConfig {
            fault_ranges: vec![(0x108, 0x10B)],
            ..BusConfig::default()
        };
        let master = sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0x108, vec![1])]),
        );
        let bus = sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        let err = sim.run().expect_err("injected fault must fail the run");
        assert_eq!(err.kind, SimErrorKind::Fault);
        assert_eq!(err.component.as_deref(), Some("bus"));
        // The master still observed a well-formed error response.
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 1);
        assert_eq!(m.responses[0].status, BusStatus::SlaveError);
        assert_eq!(m.port.errors, 1);
        assert_eq!(sim.get::<Bus>(bus).stats.injected_faults, 1);
    }

    #[test]
    fn fault_ranges_catch_bursts_that_graze_the_range() {
        let cfg = BusConfig {
            fault_ranges: vec![(0x108, 0x10B)],
            ..BusConfig::default()
        };
        assert!(cfg.fault_at(0x108, 1));
        assert!(cfg.fault_at(0x100, 16), "burst overlapping from below");
        assert!(cfg.fault_at(0x10B, 4), "burst starting at the top word");
        assert!(!cfg.fault_at(0x100, 8));
        assert!(!cfg.fault_at(0x10C, 4));
    }

    #[test]
    fn escalated_decode_miss_is_a_typed_error() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let cfg = BusConfig {
            escalate_decode_errors: true,
            ..BusConfig::default()
        };
        let master = sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0xDEAD, vec![1])]),
        );
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        let err = sim.run().expect_err("unmapped access must fail the run");
        assert_eq!(err.kind, SimErrorKind::Decode);
        // The DecodeError response is still delivered either way.
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses[0].status, BusStatus::DecodeError);
    }

    #[test]
    fn malformed_request_is_a_typed_bus_error() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xFF, 1));
        // id 0 = bus. Inject a zero-burst request straight at it.
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "rogue",
            FnComponent::new(|api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.send(
                        0,
                        BusRequest {
                            id: 1,
                            master: 1,
                            op: BusOp::Read,
                            addr: 0x0,
                            burst: 0,
                            data: vec![],
                            priority: 0,
                        },
                        Delay::Delta,
                    );
                }
            }),
        );
        let err = sim.run().expect_err("zero burst must fail the run");
        assert_eq!(err.kind, SimErrorKind::BusError);
        assert_eq!(err.component.as_deref(), Some("bus"));
    }

    #[test]
    fn transactions_trace_balanced_spans_and_per_master_waits() {
        let (mut sim, master, bus) = build(BusMode::Split);
        sim.enable_observe(4096);
        ok(sim.run());
        let evs = sim.observe_events();
        let begins = evs
            .iter()
            .filter(|e| e.kind == TraceEventKind::Begin)
            .count();
        let ends = evs.iter().filter(|e| e.kind == TraceEventKind::End).count();
        assert!(begins > 0, "bus phases must open spans");
        assert_eq!(begins, ends, "every bus span must close");
        assert!(evs
            .iter()
            .any(|e| e.name == "grant" && e.value == master as u64));
        let b = sim.get::<Bus>(bus);
        let c = b.stats.contention(|id| sim.component_name(id).to_string());
        assert_eq!(
            c.rows.iter().map(|r| r.grants).sum::<u64>(),
            b.stats.total_grants()
        );
        assert!(c.rows.iter().any(|r| r.master == "master"));
    }

    #[test]
    fn bus_utilization_is_sane() {
        let (mut sim, _, bus) = build(BusMode::Split);
        ok(sim.run());
        let now = sim.now();
        let b = sim.get::<Bus>(bus);
        let u = b.stats.utilization(now);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        assert!(b.stats.max_queue >= 1);
        assert_eq!(b.stats.total_grants(), b.stats.requests + b.stats.responses);
    }
}
