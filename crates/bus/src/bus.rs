//! The shared system bus.
//!
//! Bus-cycle-level timing (the "bus-cycle accurate" level of the ADRIATIC
//! flow, Fig. 3): every transaction pays an arbitration/address setup cost
//! plus per-word data cycles; a configurable arbiter picks among pending
//! masters; and the bus runs in one of two modes:
//!
//! * **Blocking** — the bus is held from grant until the slave's reply has
//!   been returned to the master, like a blocking interface-method call in
//!   the paper's SystemC listing. If a slave needs the *same* bus to make
//!   progress (a DRCF loading a context), the system deadlocks — the exact
//!   failure of §5.4, limitation 3, which the kernel detects and reports.
//! * **Split** — the bus is released between the address phase and the
//!   response phase, so slaves may master the bus while owing responses.

use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

use crate::arbiter::{Arbiter, ArbiterKind, Candidate};
use crate::map::AddressMap;
use crate::monitor::BusStats;
use crate::protocol::{
    Addr, BulkAccess, BusOp, BusRequest, BusResponse, BusStatus, ConfigTrain,
    ConfigTrainDecoalesced, ConfigTrainDone, ConfigTrainRejected, InFlightBurst, ServeBurst,
    SlaveAccess, SlaveReply, TrainBurst,
};

/// Blocking or split operation; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusMode {
    /// Hold the bus across the slave's processing time.
    Blocking,
    /// Release the bus between address and response phases.
    Split,
}

/// Static bus parameters.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Bus clock in MHz.
    pub clock_mhz: u64,
    /// Arbitration + address cycles paid by every phase.
    pub setup_cycles: u64,
    /// Data cycles per word transferred (a 64-bit word on a 32-bit bus
    /// would be 2; on a 64-bit bus, 1).
    pub cycles_per_word: u64,
    /// Operation mode.
    pub mode: BusMode,
    /// Arbitration policy.
    pub arbiter: ArbiterKind,
    /// Fault injection: inclusive `[low, high]` address ranges whose
    /// accesses are granted normally but answered with a
    /// [`BusStatus::SlaveError`] response, raising a typed
    /// [`SimErrorKind::Fault`] so the enclosing run returns `Err`.
    pub fault_ranges: Vec<(Addr, Addr)>,
    /// When true, a decode miss escalates to a typed
    /// [`SimErrorKind::Decode`] run error in addition to the
    /// [`BusStatus::DecodeError`] response the master receives either way.
    pub escalate_decode_errors: bool,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            clock_mhz: 100,
            setup_cycles: 1,
            cycles_per_word: 1,
            mode: BusMode::Split,
            arbiter: ArbiterKind::Priority,
            fault_ranges: Vec::new(),
            escalate_decode_errors: false,
        }
    }
}

impl BusConfig {
    /// Cycles occupied on the bus by the request phase (address, plus write
    /// data travelling with it).
    pub fn request_cycles(&self, op: BusOp, burst: usize) -> u64 {
        self.setup_cycles
            + match op {
                BusOp::Write => burst as u64 * self.cycles_per_word,
                BusOp::Read => 0,
            }
    }

    /// Cycles occupied by the response phase (read data returning; writes
    /// acknowledge in the setup cycles alone).
    pub fn response_cycles(&self, op: BusOp, burst: usize) -> u64 {
        self.setup_cycles
            + match op {
                BusOp::Read => burst as u64 * self.cycles_per_word,
                BusOp::Write => 0,
            }
    }

    /// Duration of `cycles` bus cycles.
    pub fn cycles(&self, cycles: u64) -> SimDuration {
        SimDuration::cycles_at_mhz(cycles, self.clock_mhz)
    }

    /// Does the burst `[addr, addr + burst)` touch an injected fault range?
    pub fn fault_at(&self, addr: Addr, burst: usize) -> bool {
        let end = addr.saturating_add(burst.saturating_sub(1) as u64);
        self.fault_ranges
            .iter()
            .any(|&(low, high)| addr <= high && low <= end)
    }
}

/// Deterministic service timing of a slave, registered with the bus via
/// [`Bus::register_slave_timing`] so coalesced configuration trains can be
/// scheduled analytically. The contract: for a burst the bus delivers at
/// time `t`, the slave's [`SlaveReply`] arrives back at
/// `max(t, previous reply) + service(op, words)`. For
/// [`crate::memory::Memory`] this is exactly
/// [`crate::memory::MemoryConfig::slave_timing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveTiming {
    /// Slave clock in MHz.
    pub clock_mhz: u64,
    /// Cycles to the first word of a read.
    pub read_latency: u64,
    /// Cycles to accept the first word of a write.
    pub write_latency: u64,
    /// Additional cycles per burst word after the first.
    pub per_word: u64,
}

impl SlaveTiming {
    /// Service duration of one burst access.
    pub fn service(&self, op: BusOp, burst: usize) -> SimDuration {
        let first = match op {
            BusOp::Read => self.read_latency,
            BusOp::Write => self.write_latency,
        };
        let cycles = first + burst.saturating_sub(1) as u64 * self.per_word;
        SimDuration::cycles_at_mhz(cycles, self.clock_mhz)
    }
}

/// The four per-burst phase boundaries of one train burst: request granted
/// at `grant`, slave access delivered at `access`, slave reply back at
/// `reply`, response delivered to the master at `end` (== next grant).
#[derive(Debug, Clone, Copy)]
struct BurstSched {
    grant: SimTime,
    access: SimTime,
    reply: SimTime,
    end: SimTime,
}

/// An accepted, currently-active configuration train.
struct TrainRun {
    master: ComponentId,
    priority: u8,
    tag: u64,
    slave: ComponentId,
    started: SimTime,
    /// The slave-occupancy model's value when the window opened, for
    /// rewinding it on a de-coalesce before any burst reached the slave.
    slave_busy_at_start: SimTime,
    bursts: Vec<TrainBurst>,
    sched: Vec<BurstSched>,
    timer: TimerHandle,
}

enum Pending {
    Request {
        req: BusRequest,
        arrival: u64,
        arrived_at: SimTime,
    },
    Response {
        reply: SlaveReply,
        arrival: u64,
        arrived_at: SimTime,
    },
}

impl Pending {
    fn candidate(&self) -> Candidate {
        match self {
            Pending::Request { req, arrival, .. } => Candidate {
                master: req.master,
                priority: req.priority,
                arrival: *arrival,
                is_response: false,
            },
            Pending::Response { reply, arrival, .. } => Candidate {
                master: reply.master,
                priority: u8::MAX,
                arrival: *arrival,
                is_response: true,
            },
        }
    }
}

enum State {
    Idle,
    /// Request phase in progress; at the timer, the access goes to `slave`.
    RequestPhase {
        req: BusRequest,
        slave: ComponentId,
    },
    /// Blocking mode only: bus held while the slave processes.
    WaitSlave,
    /// Response data returning to the master.
    ResponsePhase {
        reply: SlaveReply,
    },
}

const TAG_REQ_DONE: u64 = 1;
const TAG_RESP_DONE: u64 = 2;
const TAG_RETRY: u64 = 3;
const TAG_TRAIN_DONE: u64 = 4;

/// Transaction-id space the bus draws from for in-flight bursts handed back
/// at de-coalesce time; master ports count up from 1 and never reach it.
const TRAIN_TXN_BASE: u64 = 1 << 63;

/// The shared bus component.
pub struct Bus {
    cfg: BusConfig,
    map: AddressMap,
    arbiter: Box<dyn Arbiter>,
    pending: Vec<Pending>,
    arrivals: u64,
    state: State,
    retry_armed: bool,
    /// Registered analytic timings, keyed by slave component, together
    /// with the bus's model of when that slave's port frees up. The model
    /// mirrors the slave's own arrival-order port schedule, so a train's
    /// analytic window can account for service still draining from earlier
    /// traffic.
    slave_timings: Vec<(ComponentId, SlaveTiming, SimTime)>,
    /// Split-mode slave accesses whose replies have not returned yet.
    outstanding_split: usize,
    /// The active coalesced configuration train, if any.
    train: Option<TrainRun>,
    /// Ids handed out for de-coalesced in-flight bursts.
    train_txns: u64,
    /// Accumulated statistics.
    pub stats: BusStats,
}

impl Bus {
    /// New bus with the given configuration and decode map.
    pub fn new(cfg: BusConfig, map: AddressMap) -> Self {
        crate::snapshot::register_bus_codecs();
        let arbiter = cfg.arbiter.build();
        Bus {
            cfg,
            map,
            arbiter,
            pending: Vec::new(),
            arrivals: 0,
            state: State::Idle,
            retry_armed: false,
            slave_timings: Vec::new(),
            outstanding_split: 0,
            train: None,
            train_txns: 0,
            stats: BusStats::default(),
        }
    }

    /// Register the deterministic service timing of `slave`, enabling the
    /// coalesced configuration-train fast path for bursts that decode to
    /// it. The timing must match the slave's actual reply behavior exactly,
    /// or coalesced and per-burst runs will diverge.
    pub fn register_slave_timing(&mut self, slave: ComponentId, timing: SlaveTiming) {
        if let Some(e) = self.slave_timings.iter_mut().find(|e| e.0 == slave) {
            e.1 = timing;
        } else {
            self.slave_timings.push((slave, timing, SimTime::ZERO));
        }
    }

    /// Fold one slave access into the slave-occupancy model: the slave
    /// starts serving when its port frees, and holds it for the
    /// deterministic service time. No-op for slaves without a registered
    /// timing.
    fn note_slave_access(&mut self, now: SimTime, slave: ComponentId, op: BusOp, burst: usize) {
        if let Some(e) = self.slave_timings.iter_mut().find(|e| e.0 == slave) {
            let start = e.2.max(now);
            e.2 = start + e.1.service(op, burst);
        }
    }

    /// When the given slave's port frees up, per the occupancy model.
    fn slave_free_at(&self, slave: ComponentId) -> SimTime {
        self.slave_timings
            .iter()
            .find(|e| e.0 == slave)
            .map_or(SimTime::ZERO, |e| e.2)
    }

    /// Overwrite the occupancy model for `slave` (train bookkeeping).
    fn set_slave_busy_until(&mut self, slave: ComponentId, until: SimTime) {
        if let Some(e) = self.slave_timings.iter_mut().find(|e| e.0 == slave) {
            e.2 = until;
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// The decode map.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    fn enqueue_request(&mut self, api: &mut Api<'_>, req: BusRequest) {
        if let Err(e) = req.validate() {
            api.raise(
                SimErrorKind::BusError,
                format!("malformed bus request: {e}"),
            );
            let resp = BusResponse {
                id: req.id,
                op: req.op,
                addr: req.addr,
                status: BusStatus::SlaveError,
                data: vec![],
            };
            api.send(req.master, resp, Delay::Delta);
            return;
        }
        self.stats.requests += 1;
        api.trace_instant(TraceCategory::Bus, "request", req.master as u64);
        let arrival = self.arrivals;
        self.arrivals += 1;
        self.pending.push(Pending::Request {
            req,
            arrival,
            arrived_at: api.now(),
        });
        self.stats.max_queue = self.stats.max_queue.max(self.pending.len());
        api.trace_counter(TraceCategory::Bus, "queue_depth", self.pending.len() as u64);
        self.try_grant(api);
    }

    fn enqueue_response(&mut self, api: &mut Api<'_>, reply: SlaveReply) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        self.pending.push(Pending::Response {
            reply,
            arrival,
            arrived_at: api.now(),
        });
        self.stats.max_queue = self.stats.max_queue.max(self.pending.len());
        self.try_grant(api);
    }

    fn try_grant(&mut self, api: &mut Api<'_>) {
        if !matches!(self.state, State::Idle) || self.pending.is_empty() {
            return;
        }
        let candidates: Vec<Candidate> = self.pending.iter().map(Pending::candidate).collect();
        let Some(idx) = self.arbiter.pick(api.now(), &candidates) else {
            // TDMA outside the owner's slot: retry at the next boundary.
            self.arm_retry(api);
            return;
        };
        let item = self.pending.swap_remove(idx);
        self.stats.busy.set_busy(api.now());
        match item {
            Pending::Request {
                req, arrived_at, ..
            } => {
                self.stats.record_grant(req.master);
                self.stats
                    .record_wait(req.master, api.now().since(arrived_at));
                api.trace_instant(TraceCategory::Bus, "grant", req.master as u64);
                if self.cfg.fault_at(req.addr, req.burst) {
                    self.stats.injected_faults += 1;
                    api.trace_instant(TraceCategory::Bus, "injected_fault", req.addr);
                    api.raise(
                        SimErrorKind::Fault,
                        format!(
                            "injected bus fault: addr {:#x} burst {}",
                            req.addr, req.burst
                        ),
                    );
                    let resp = BusResponse {
                        id: req.id,
                        op: req.op,
                        addr: req.addr,
                        status: BusStatus::SlaveError,
                        data: vec![],
                    };
                    self.stats.responses += 1;
                    api.send(req.master, resp, Delay::Delta);
                    self.stats.busy.set_idle(api.now());
                    self.try_grant(api);
                    return;
                }
                match self.map.decode_burst(req.addr, req.burst) {
                    Some(slave) => {
                        let cycles = self.cfg.request_cycles(req.op, req.burst);
                        if req.op == BusOp::Write {
                            self.stats.words += req.burst as u64;
                        }
                        api.timer_in(self.cfg.cycles(cycles), TAG_REQ_DONE);
                        api.trace_begin(TraceCategory::Bus, "request_phase", req.master as u64);
                        self.state = State::RequestPhase { req, slave };
                    }
                    None => {
                        self.stats.decode_errors += 1;
                        api.trace_instant(TraceCategory::Bus, "decode_error", req.addr);
                        let text = format!(
                            "decode error: addr {:#x} burst {} claimed by no slave",
                            req.addr, req.burst
                        );
                        if self.cfg.escalate_decode_errors {
                            api.raise(SimErrorKind::Decode, text);
                        } else {
                            api.log(Severity::Warning, text);
                        }
                        let resp = BusResponse {
                            id: req.id,
                            op: req.op,
                            addr: req.addr,
                            status: BusStatus::DecodeError,
                            data: vec![],
                        };
                        self.stats.responses += 1;
                        api.send(req.master, resp, Delay::Delta);
                        self.stats.busy.set_idle(api.now());
                        self.try_grant(api);
                    }
                }
            }
            Pending::Response {
                reply, arrived_at, ..
            } => {
                self.stats.record_grant(reply.master);
                self.stats
                    .record_wait(reply.master, api.now().since(arrived_at));
                api.trace_instant(TraceCategory::Bus, "grant", reply.master as u64);
                let cycles = self
                    .cfg
                    .response_cycles(reply.resp.op, reply.resp.data.len().max(1));
                if reply.resp.op == BusOp::Read {
                    self.stats.words += reply.resp.data.len() as u64;
                }
                api.timer_in(self.cfg.cycles(cycles), TAG_RESP_DONE);
                api.trace_begin(TraceCategory::Bus, "response_phase", reply.master as u64);
                self.state = State::ResponsePhase { reply };
            }
        }
    }

    fn arm_retry(&mut self, api: &mut Api<'_>) {
        if self.retry_armed {
            return;
        }
        if let ArbiterKind::Tdma { slot, .. } = &self.cfg.arbiter {
            let slot_fs = slot.as_fs();
            let next = (api.now().as_fs() / slot_fs + 1) * slot_fs;
            let delay = SimDuration::fs(next - api.now().as_fs());
            self.retry_armed = true;
            api.timer_in(delay, TAG_RETRY);
        }
    }

    fn request_phase_done(&mut self, api: &mut Api<'_>) {
        let State::RequestPhase { req, slave } = std::mem::replace(&mut self.state, State::Idle)
        else {
            api.raise(
                SimErrorKind::Internal,
                "request-done timer fired outside the request phase",
            );
            return;
        };
        api.trace_end(TraceCategory::Bus, "request_phase", req.master as u64);
        let me = api.me();
        self.note_slave_access(api.now(), slave, req.op, req.burst);
        api.send(slave, SlaveAccess { req, bus: me }, Delay::Delta);
        match self.cfg.mode {
            BusMode::Blocking => {
                // Bus stays granted (and busy) until the reply returns.
                api.trace_begin(TraceCategory::Bus, "wait_slave", 0);
                self.state = State::WaitSlave;
            }
            BusMode::Split => {
                self.outstanding_split += 1;
                self.stats.busy.set_idle(api.now());
                self.try_grant(api);
            }
        }
    }

    fn reply_arrived(&mut self, api: &mut Api<'_>, reply: SlaveReply) {
        if self.cfg.mode == BusMode::Split {
            self.outstanding_split = self.outstanding_split.saturating_sub(1);
        }
        match self.cfg.mode {
            BusMode::Blocking => {
                debug_assert!(
                    matches!(self.state, State::WaitSlave),
                    "blocking bus got a reply while not waiting"
                );
                api.trace_end(TraceCategory::Bus, "wait_slave", 0);
                let cycles = self
                    .cfg
                    .response_cycles(reply.resp.op, reply.resp.data.len().max(1));
                if reply.resp.op == BusOp::Read {
                    self.stats.words += reply.resp.data.len() as u64;
                }
                api.timer_in(self.cfg.cycles(cycles), TAG_RESP_DONE);
                api.trace_begin(TraceCategory::Bus, "response_phase", reply.master as u64);
                self.state = State::ResponsePhase { reply };
            }
            BusMode::Split => self.enqueue_response(api, reply),
        }
    }

    fn response_phase_done(&mut self, api: &mut Api<'_>) {
        let State::ResponsePhase { reply } = std::mem::replace(&mut self.state, State::Idle) else {
            api.raise(
                SimErrorKind::Internal,
                "response-done timer fired outside the response phase",
            );
            return;
        };
        self.stats.responses += 1;
        api.trace_end(TraceCategory::Bus, "response_phase", reply.master as u64);
        api.send(reply.master, reply.resp, Delay::Delta);
        self.stats.busy.set_idle(api.now());
        self.try_grant(api);
    }

    /// Can this train run as one analytic window right now? Returns the
    /// target slave and its registered timing when every validity condition
    /// holds: split mode, a work-conserving arbiter, tracing off (per-burst
    /// spans are observable), bus idle with nothing queued, every burst
    /// decoding to the same timing-registered slave, and no fault range
    /// overlapping any burst (those must take the per-burst path so the
    /// fault fires exactly as it would have). Outstanding split replies are
    /// fine: if one lands mid-window, `decoalesce` reconstructs the exact
    /// per-burst bus state before it is processed.
    fn train_target(&self, api: &Api<'_>, t: &ConfigTrain) -> Option<(ComponentId, SlaveTiming)> {
        if self.cfg.mode != BusMode::Split
            || matches!(self.cfg.arbiter, ArbiterKind::Tdma { .. })
            || api.tracing_enabled()
            || !matches!(self.state, State::Idle)
            || !self.pending.is_empty()
            || self.retry_armed
            || t.bursts.is_empty()
        {
            return None;
        }
        let mut slave = None;
        for b in &t.bursts {
            if b.words == 0 || self.cfg.fault_at(b.addr, b.words) {
                return None;
            }
            let s = self.map.decode_burst(b.addr, b.words)?;
            match slave {
                None => slave = Some(s),
                Some(prev) if prev != s => return None,
                _ => {}
            }
        }
        let slave = slave?;
        let timing = self.slave_timings.iter().find(|e| e.0 == slave)?.1;
        Some((slave, timing))
    }

    /// A master offered a configuration train: accept it by precomputing
    /// the whole per-burst phase schedule and arming one timer at the
    /// window end, or reject it so the master falls back to per-burst.
    fn train_offered(&mut self, api: &mut Api<'_>, t: ConfigTrain) {
        let Some((slave, timing)) = self.train_target(api, &t) else {
            api.send(t.master, ConfigTrainRejected { tag: t.tag }, Delay::Delta);
            return;
        };
        let now = api.now();
        let mut sched = Vec::with_capacity(t.bursts.len());
        let mut grant = now;
        // The slave may still be draining service from earlier traffic;
        // the first reply can start no earlier than that point.
        let slave_busy_at_start = self.slave_free_at(slave);
        let mut slave_free = now.max(slave_busy_at_start);
        for b in &t.bursts {
            let access = grant + self.cfg.cycles(self.cfg.request_cycles(b.op, b.words));
            let reply = access.max(slave_free) + timing.service(b.op, b.words);
            slave_free = reply;
            let end = reply + self.cfg.cycles(self.cfg.response_cycles(b.op, b.words));
            sched.push(BurstSched {
                grant,
                access,
                reply,
                end,
            });
            grant = end;
        }
        // Non-empty is guaranteed by `train_target`.
        let end = sched.last().map(|s| s.end).unwrap_or(now);
        let last_reply = sched.last().map(|s| s.reply).unwrap_or(now);
        let timer = api.timer_cancellable(end.since(now), TAG_TRAIN_DONE);
        self.set_slave_busy_until(slave, last_reply);
        self.train = Some(TrainRun {
            master: t.master,
            priority: t.priority,
            tag: t.tag,
            slave,
            started: now,
            slave_busy_at_start,
            bursts: t.bursts,
            sched,
            timer,
        });
    }

    /// Replay the request-grant side of one train burst into the stats,
    /// exactly as `try_grant` + `request_phase_done` would have recorded it
    /// (uncontended: zero wait, queue depth one, busy from grant to slave
    /// access). The arrivals counter advances too, so arbiter arrival
    /// tiebreaks after the window match the per-burst world.
    fn replay_request_grant(&mut self, master: ComponentId, b: &TrainBurst, s: &BurstSched) {
        self.stats.requests += 1;
        self.arrivals += 1;
        self.stats.max_queue = self.stats.max_queue.max(1);
        self.stats.busy.set_busy(s.grant);
        self.stats.record_grant(master);
        self.stats.record_wait(master, SimDuration::ZERO);
        if b.op == BusOp::Write {
            self.stats.words += b.words as u64;
        }
        self.stats.busy.set_idle(s.access);
    }

    /// Replay the response-grant side of one train burst (the reply queued
    /// and granted at `s.reply` with zero wait).
    fn replay_response_grant(&mut self, master: ComponentId, b: &TrainBurst, s: &BurstSched) {
        self.arrivals += 1;
        self.stats.max_queue = self.stats.max_queue.max(1);
        self.stats.busy.set_busy(s.reply);
        self.stats.record_grant(master);
        self.stats.record_wait(master, SimDuration::ZERO);
        if b.op == BusOp::Read {
            self.stats.words += b.words as u64;
        }
    }

    /// Replay the response-phase completion of one train burst.
    fn replay_response_done(&mut self, s: &BurstSched) {
        self.stats.responses += 1;
        self.stats.busy.set_idle(s.end);
    }

    /// Replay the first `upto` bursts of a train as fully completed.
    fn replay_train_prefix(&mut self, tr: &TrainRun, upto: usize) {
        for (b, s) in tr.bursts.iter().zip(&tr.sched).take(upto) {
            let s = *s;
            self.replay_request_grant(tr.master, b, &s);
            self.replay_response_grant(tr.master, b, &s);
            self.replay_response_done(&s);
        }
    }

    /// The train window elapsed with no interference: replay every burst
    /// into the stats, fast-forward the slave, and tell the master.
    fn train_window_done(&mut self, api: &mut Api<'_>) {
        let Some(tr) = self.train.take() else {
            api.raise(
                SimErrorKind::Internal,
                "train-done timer fired with no active train",
            );
            return;
        };
        self.replay_train_prefix(&tr, tr.bursts.len());
        let words: u64 = tr.bursts.iter().map(|b| b.words as u64).sum();
        let busy_until = tr.sched.last().map(|s| s.reply).unwrap_or(tr.started);
        let tag = tr.tag;
        let master = tr.master;
        api.send(
            tr.slave,
            BulkAccess {
                bursts: tr.bursts,
                busy_until,
                serve: None,
            },
            Delay::Delta,
        );
        api.send(master, ConfigTrainDone { tag, words }, Delay::Delta);
    }

    /// Foreign traffic arrived mid-window: collapse the train back into the
    /// per-burst world at the current instant. Completed bursts are
    /// replayed; the burst mid-transaction (if any) is rebuilt onto the
    /// real bus machinery so it finishes through the normal phases; the
    /// rest is handed back to the master, which continues per-burst (or
    /// re-offers a train once the contention clears). Runs *before* the
    /// foreign message is processed, so the foreign grant/queue decisions
    /// see exactly the state the per-burst world would have had.
    fn decoalesce(&mut self, api: &mut Api<'_>) {
        let Some(tr) = self.train.take() else { return };
        api.cancel_timer(tr.timer);
        let now = api.now();
        let done = tr.sched.iter().take_while(|s| s.end <= now).count();
        self.replay_train_prefix(&tr, done);
        let mut in_flight = None;
        let mut serve = None;
        let mut slave_prefix = done;
        if done < tr.bursts.len() {
            let b = tr.bursts[done];
            let s = tr.sched[done];
            // The burst is mid-transaction iff its grant already happened.
            // A grant exactly *at* `now` only counts for the first burst:
            // the train offer (== the per-burst request) was granted
            // earlier in this very timestep, whereas later bursts would be
            // re-issued only after their predecessor's response delta.
            let granted = s.grant < now || (done == 0 && s.grant == now);
            if granted {
                let id = TRAIN_TXN_BASE | self.train_txns;
                self.train_txns += 1;
                self.replay_request_grant(tr.master, &b, &s);
                let req = BusRequest {
                    id,
                    master: tr.master,
                    op: b.op,
                    addr: b.addr,
                    burst: b.words,
                    data: match b.op {
                        BusOp::Write => vec![0; b.words],
                        BusOp::Read => vec![],
                    },
                    priority: tr.priority,
                };
                if now < s.access {
                    // Request phase: rebuild it; the slave access and reply
                    // then flow through the real machinery.
                    api.timer_in(s.access.since(now), TAG_REQ_DONE);
                    self.state = State::RequestPhase {
                        req,
                        slave: tr.slave,
                    };
                } else if now < s.reply {
                    // The slave is servicing the burst: hand it the access
                    // so it owes the real reply at the scheduled time.
                    self.outstanding_split += 1;
                    serve = Some(ServeBurst {
                        req,
                        bus: api.me(),
                        reply_at: s.reply,
                    });
                } else {
                    // Response phase: rebuild it. Read payloads are the
                    // implied zeros — configuration traffic is timing-only,
                    // the master discards data content.
                    self.replay_response_grant(tr.master, &b, &s);
                    api.timer_in(s.end.since(now), TAG_RESP_DONE);
                    let data = match b.op {
                        BusOp::Read => vec![0; b.words],
                        BusOp::Write => vec![],
                    };
                    self.state = State::ResponsePhase {
                        reply: SlaveReply {
                            resp: BusResponse {
                                id,
                                op: b.op,
                                addr: b.addr,
                                status: BusStatus::Ok,
                                data,
                            },
                            master: tr.master,
                        },
                    };
                    // The slave already serviced this burst.
                    slave_prefix = done + 1;
                }
                in_flight = Some(InFlightBurst {
                    id,
                    op: b.op,
                    addr: b.addr,
                    words: b.words,
                    issued_at: s.grant,
                });
            }
        }
        // Rewind the slave-occupancy model to the bursts that actually
        // reached the slave; a burst still in its request phase re-enters
        // it through the normal `request_phase_done` path.
        let accessed = tr.sched.iter().take_while(|s| s.access <= now).count();
        let slave_busy = if accessed == 0 {
            tr.slave_busy_at_start
        } else {
            tr.sched[accessed - 1].reply
        };
        self.set_slave_busy_until(tr.slave, slave_busy);
        if slave_prefix > 0 || serve.is_some() {
            let busy_until = if slave_prefix > 0 {
                tr.sched[slave_prefix - 1].reply
            } else {
                tr.started
            };
            api.send(
                tr.slave,
                BulkAccess {
                    bursts: tr.bursts[..slave_prefix].to_vec(),
                    busy_until,
                    serve,
                },
                Delay::Delta,
            );
        }
        api.send(
            tr.master,
            ConfigTrainDecoalesced {
                tag: tr.tag,
                done_bursts: done,
                in_flight,
            },
            Delay::Delta,
        );
    }
}

impl Bus {
    fn pending_json(&self) -> Json {
        use crate::snapshot::{reply_json, req_json, time_json};
        Json::Arr(
            self.pending
                .iter()
                .map(|p| match p {
                    Pending::Request {
                        req,
                        arrival,
                        arrived_at,
                    } => Json::obj()
                        .with("kind", "req".into())
                        .with("req", req_json(req))
                        .with("arrival", ju64(*arrival))
                        .with("arrived_at", time_json(*arrived_at)),
                    Pending::Response {
                        reply,
                        arrival,
                        arrived_at,
                    } => Json::obj()
                        .with("kind", "resp".into())
                        .with("reply", reply_json(reply))
                        .with("arrival", ju64(*arrival))
                        .with("arrived_at", time_json(*arrived_at)),
                })
                .collect(),
        )
    }

    fn restore_pending(&mut self, state: &Json) -> SimResult<()> {
        use crate::snapshot::{reply_of, req_of, time_of};
        self.pending.clear();
        for p in snap::arr_field(state, "pending")? {
            let arrival = snap::u64_field(p, "arrival")?;
            let arrived_at =
                time_of(snap::field(p, "arrived_at")?).ok_or_else(|| snap::err("bad time"))?;
            let entry = match snap::str_field(p, "kind")? {
                "req" => Pending::Request {
                    req: req_of(snap::field(p, "req")?)
                        .ok_or_else(|| snap::err("malformed pending bus request"))?,
                    arrival,
                    arrived_at,
                },
                "resp" => Pending::Response {
                    reply: reply_of(snap::field(p, "reply")?)
                        .ok_or_else(|| snap::err("malformed pending slave reply"))?,
                    arrival,
                    arrived_at,
                },
                other => return Err(snap::err(format!("unknown pending kind `{other}`"))),
            };
            self.pending.push(entry);
        }
        Ok(())
    }

    fn state_json(&self) -> Json {
        use crate::snapshot::{reply_json, req_json};
        match &self.state {
            State::Idle => Json::obj().with("kind", "idle".into()),
            State::RequestPhase { req, slave } => Json::obj()
                .with("kind", "request".into())
                .with("req", req_json(req))
                .with("slave", ju64(*slave as u64)),
            State::WaitSlave => Json::obj().with("kind", "wait_slave".into()),
            State::ResponsePhase { reply } => Json::obj()
                .with("kind", "response".into())
                .with("reply", reply_json(reply)),
        }
    }

    fn restore_state(&mut self, state: &Json) -> SimResult<()> {
        use crate::snapshot::{reply_of, req_of};
        let j = snap::field(state, "state")?;
        self.state = match snap::str_field(j, "kind")? {
            "idle" => State::Idle,
            "request" => State::RequestPhase {
                req: req_of(snap::field(j, "req")?)
                    .ok_or_else(|| snap::err("malformed in-phase bus request"))?,
                slave: snap::usize_field(j, "slave")?,
            },
            "wait_slave" => State::WaitSlave,
            "response" => State::ResponsePhase {
                reply: reply_of(snap::field(j, "reply")?)
                    .ok_or_else(|| snap::err("malformed in-phase slave reply"))?,
            },
            other => return Err(snap::err(format!("unknown bus state `{other}`"))),
        };
        Ok(())
    }

    fn train_json(&self) -> Json {
        use crate::snapshot::{burst_json, time_json};
        match &self.train {
            None => Json::Null,
            Some(t) => Json::obj()
                .with("master", ju64(t.master as u64))
                .with("priority", ju64(t.priority as u64))
                .with("tag", ju64(t.tag))
                .with("slave", ju64(t.slave as u64))
                .with("started", time_json(t.started))
                .with("slave_busy_at_start", time_json(t.slave_busy_at_start))
                .with(
                    "bursts",
                    Json::Arr(t.bursts.iter().map(burst_json).collect()),
                )
                .with(
                    "sched",
                    Json::Arr(
                        t.sched
                            .iter()
                            .map(|s| {
                                Json::Arr(vec![
                                    time_json(s.grant),
                                    time_json(s.access),
                                    time_json(s.reply),
                                    time_json(s.end),
                                ])
                            })
                            .collect(),
                    ),
                )
                .with("timer", ju64(t.timer.raw())),
        }
    }

    fn restore_train(&mut self, state: &Json) -> SimResult<()> {
        use crate::snapshot::{burst_of, time_of};
        let j = snap::field(state, "train")?;
        if matches!(j, Json::Null) {
            self.train = None;
            return Ok(());
        }
        let bursts = snap::arr_field(j, "bursts")?
            .iter()
            .map(burst_of)
            .collect::<Option<Vec<TrainBurst>>>()
            .ok_or_else(|| snap::err("malformed train burst"))?;
        let mut sched = Vec::new();
        for s in snap::arr_field(j, "sched")? {
            let q = s
                .as_arr()
                .filter(|q| q.len() == 4)
                .ok_or_else(|| snap::err("malformed train schedule entry"))?;
            let mut times = [SimTime::ZERO; 4];
            for (slot, t) in times.iter_mut().zip(q.iter()) {
                *slot = time_of(t).ok_or_else(|| snap::err("bad time"))?;
            }
            sched.push(BurstSched {
                grant: times[0],
                access: times[1],
                reply: times[2],
                end: times[3],
            });
        }
        self.train = Some(TrainRun {
            master: snap::usize_field(j, "master")?,
            priority: snap::u64_field(j, "priority")? as u8,
            tag: snap::u64_field(j, "tag")?,
            slave: snap::usize_field(j, "slave")?,
            started: time_of(snap::field(j, "started")?).ok_or_else(|| snap::err("bad time"))?,
            slave_busy_at_start: time_of(snap::field(j, "slave_busy_at_start")?)
                .ok_or_else(|| snap::err("bad time"))?,
            bursts,
            sched,
            timer: TimerHandle::from_raw(snap::u64_field(j, "timer")?),
        });
        Ok(())
    }
}

impl Component for Bus {
    fn snapshot(&mut self) -> SimResult<Json> {
        use crate::snapshot::time_json;
        Ok(Json::obj()
            .with("arbiter", self.arbiter.snapshot_state())
            .with("pending", self.pending_json())
            .with("arrivals", ju64(self.arrivals))
            .with("state", self.state_json())
            .with("retry_armed", Json::Bool(self.retry_armed))
            .with(
                "slave_busy",
                Json::Arr(
                    self.slave_timings
                        .iter()
                        .map(|&(id, _, busy)| Json::Arr(vec![ju64(id as u64), time_json(busy)]))
                        .collect(),
                ),
            )
            .with("outstanding_split", ju64(self.outstanding_split as u64))
            .with("train", self.train_json())
            .with("train_txns", ju64(self.train_txns))
            .with("stats", self.stats.snapshot_json()))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        use crate::snapshot::time_of;
        self.arbiter
            .restore_state(snap::field(state, "arbiter")?)
            .map_err(snap::err)?;
        self.restore_pending(state)?;
        self.arrivals = snap::u64_field(state, "arrivals")?;
        self.restore_state(state)?;
        self.retry_armed = snap::bool_field(state, "retry_armed")?;
        for e in snap::arr_field(state, "slave_busy")? {
            let pair = e
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| snap::err("malformed slave-busy entry"))?;
            let id = drcf_kernel::json::ju64_of(&pair[0])
                .ok_or_else(|| snap::err("slave-busy id is not a u64"))?
                as ComponentId;
            let busy = time_of(&pair[1]).ok_or_else(|| snap::err("bad time"))?;
            let slot = self
                .slave_timings
                .iter_mut()
                .find(|t| t.0 == id)
                .ok_or_else(|| {
                    snap::err(format!("snapshot names unregistered slave timing {id}"))
                })?;
            slot.2 = busy;
        }
        self.outstanding_split = snap::usize_field(state, "outstanding_split")?;
        self.restore_train(state)?;
        self.train_txns = snap::u64_field(state, "train_txns")?;
        self.stats.restore_json(snap::field(state, "stats")?)?;
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Timer(TAG_REQ_DONE) => self.request_phase_done(api),
            MsgKind::Timer(TAG_RESP_DONE) => self.response_phase_done(api),
            MsgKind::Timer(TAG_RETRY) => {
                self.retry_armed = false;
                self.try_grant(api);
            }
            MsgKind::Timer(TAG_TRAIN_DONE) => self.train_window_done(api),
            MsgKind::Start => {}
            _ => {
                let msg = match msg.user::<BusRequest>() {
                    Ok(req) => {
                        if self.train.is_some() {
                            self.decoalesce(api);
                        }
                        self.enqueue_request(api, req);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.user::<SlaveReply>() {
                    Ok(reply) => {
                        if self.train.is_some() {
                            self.decoalesce(api);
                        }
                        self.reply_arrived(api, reply);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok(t) = msg.user::<ConfigTrain>() {
                    if self.train.is_some() {
                        self.decoalesce(api);
                    }
                    self.train_offered(api, t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfaces::{MasterPort, RegisterFile, SlaveAdapter};
    use drcf_kernel::testing::ok;

    /// A master that runs a fixed sequence of reads/writes back-to-back.
    struct SeqMaster {
        port: MasterPort,
        program: Vec<(BusOp, u64, Vec<u64>)>, // (op, addr, write data) reads use burst=data capacity
        pc: usize,
        pub responses: Vec<BusResponse>,
    }

    impl SeqMaster {
        fn new(bus: ComponentId, program: Vec<(BusOp, u64, Vec<u64>)>) -> Self {
            SeqMaster {
                port: MasterPort::new(bus, 1),
                program,
                pc: 0,
                responses: vec![],
            }
        }

        fn issue_next(&mut self, api: &mut Api<'_>) {
            if let Some((op, addr, data)) = self.program.get(self.pc).cloned() {
                self.pc += 1;
                match op {
                    BusOp::Read => {
                        let burst = data.first().map(|&b| b as usize).unwrap_or(1);
                        self.port.read(api, addr, burst);
                    }
                    BusOp::Write => {
                        self.port.write(api, addr, data);
                    }
                }
            }
        }
    }

    impl Component for SeqMaster {
        fn snapshot(&mut self) -> SimResult<Json> {
            Ok(Json::obj()
                .with("port", self.port.snapshot_json())
                .with("pc", ju64(self.pc as u64))
                .with(
                    "responses",
                    Json::Arr(
                        self.responses
                            .iter()
                            .map(crate::snapshot::resp_json)
                            .collect(),
                    ),
                ))
        }

        fn restore(&mut self, state: &Json) -> SimResult<()> {
            self.port.restore_json(snap::field(state, "port")?)?;
            self.pc = snap::usize_field(state, "pc")?;
            self.responses = snap::arr_field(state, "responses")?
                .iter()
                .map(crate::snapshot::resp_of)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| snap::err("malformed recorded response"))?;
            Ok(())
        }

        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match msg.kind {
                MsgKind::Start => self.issue_next(api),
                _ => {
                    if let Ok(resp) = self.port.take_response(api, msg) {
                        self.responses.push(resp);
                        self.issue_next(api);
                    }
                }
            }
        }
    }

    fn build(mode: BusMode) -> (Simulator, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        // ids: 0 = master, 1 = bus, 2 = slave
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let cfg = BusConfig {
            mode,
            ..BusConfig::default()
        };
        let master = sim.add(
            "master",
            SeqMaster::new(
                1,
                vec![
                    (BusOp::Write, 0x100, vec![7, 8]),
                    (BusOp::Read, 0x100, vec![2]), // burst 2
                ],
            ),
        );
        let bus = sim.add("bus", Bus::new(cfg, map));
        let _slave = sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        (sim, master, bus)
    }

    #[test]
    fn write_then_read_roundtrip_split() {
        let (mut sim, master, bus) = build(BusMode::Split);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 2);
        assert!(m.responses.iter().all(|r| r.is_ok()));
        assert_eq!(m.responses[1].data, vec![7, 8]);
        let b = sim.get::<Bus>(bus);
        assert_eq!(b.stats.requests, 2);
        assert_eq!(b.stats.responses, 2);
        assert_eq!(b.stats.words, 4); // 2 written + 2 read
        assert_eq!(b.stats.decode_errors, 0);
    }

    #[test]
    fn write_then_read_roundtrip_blocking() {
        let (mut sim, master, _) = build(BusMode::Blocking);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 2);
        assert_eq!(m.responses[1].data, vec![7, 8]);
    }

    #[test]
    fn decode_error_reported() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let master = sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0xDEAD, vec![1])]),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 1);
        assert_eq!(m.responses[0].status, BusStatus::DecodeError);
        assert_eq!(m.port.errors, 1);
    }

    #[test]
    fn burst_crossing_slaves_is_decode_error() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x103, 2));
        let master = sim.add(
            "master",
            // Read 8 words starting at 0x100: runs past the slave.
            SeqMaster::new(1, vec![(BusOp::Read, 0x100, vec![8])]),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 4, 1), 100),
        );
        ok(sim.run());
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses[0].status, BusStatus::DecodeError);
    }

    #[test]
    fn timing_blocking_single_read() {
        // Blocking read of 1 word at 100 MHz (10ns cycles), setup 1,
        // cpw 1, slave 1 cycle:
        //   request phase  = 1 cycle  (10 ns)
        //   slave service  = 1 cycle  (10 ns)
        //   response phase = 1 setup + 1 word = 2 cycles (20 ns)
        // plus delta deliveries at zero time. Total simulated time = 40 ns.
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xF, 2));
        let cfg = BusConfig {
            mode: BusMode::Blocking,
            ..BusConfig::default()
        };
        sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0x0, vec![1])]),
        );
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x0, 16, 1), 100),
        );
        ok(sim.run());
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(40));
    }

    #[test]
    fn split_mode_overlaps_two_masters() {
        // Two masters each read from a slow slave (20 cycles). In split
        // mode the second request's address phase proceeds while the first
        // slave access is in flight, so total time is well below the
        // blocking-mode serialization.
        let run = |mode: BusMode| {
            let mut sim = Simulator::new();
            let mut map = AddressMap::new();
            ok(map.add(0x0, 0xFF, 3));
            let cfg = BusConfig {
                mode,
                ..BusConfig::default()
            };
            sim.add("m0", SeqMaster::new(2, vec![(BusOp::Read, 0x0, vec![1])]));
            sim.add("m1", SeqMaster::new(2, vec![(BusOp::Read, 0x10, vec![1])]));
            sim.add("bus", Bus::new(cfg, map));
            sim.add(
                "slave",
                SlaveAdapter::new(RegisterFile::new("rf", 0x0, 256, 20), 100),
            );
            assert!(sim.run().is_ok());
            sim.now().as_fs()
        };
        let split = run(BusMode::Split);
        let blocking = run(BusMode::Blocking);
        assert!(
            split < blocking,
            "split {split} should finish before blocking {blocking}"
        );
    }

    #[test]
    fn tdma_bus_grants_only_in_owner_slots() {
        // Two masters, TDMA slots of 1us each. Master 1 owns even slots,
        // master 0 (id 0) owns odd... owners = [0, 3] means master ids.
        let mut sim = Simulator::new();
        // ids: m0=0, m1=1, bus=2, slave=3.
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xFF, 3));
        let cfg = BusConfig {
            arbiter: ArbiterKind::Tdma {
                owners: vec![0, 1],
                slot: SimDuration::us(1),
            },
            ..BusConfig::default()
        };
        sim.add("m0", SeqMaster::new(2, vec![(BusOp::Read, 0x0, vec![1])]));
        sim.add("m1", SeqMaster::new(2, vec![(BusOp::Read, 0x1, vec![1])]));
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x0, 256, 1), 100),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        // Both complete; master 1's request had to wait for its slot
        // (slot 1 starts at 1us).
        let m0 = sim.get::<SeqMaster>(0);
        let m1 = sim.get::<SeqMaster>(1);
        assert_eq!(m0.responses.len(), 1);
        assert_eq!(m1.responses.len(), 1);
        assert!(
            sim.now() >= SimTime::ZERO + SimDuration::us(1),
            "master 1 must have waited for its TDMA slot, ended {}",
            sim.now()
        );
    }

    #[test]
    fn tdma_retry_fires_when_no_owner_pending() {
        // Only the slot-1 owner requests during slot 0: the bus must arm a
        // retry at the slot boundary instead of idling forever.
        let mut sim = Simulator::new();
        // ids: m0=0, bus=1, slave=2.
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xFF, 2));
        let cfg = BusConfig {
            arbiter: ArbiterKind::Tdma {
                owners: vec![99, 0], // slot 0 owned by an absent master
                slot: SimDuration::us(1),
            },
            ..BusConfig::default()
        };
        sim.add("m0", SeqMaster::new(1, vec![(BusOp::Read, 0x0, vec![1])]));
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x0, 256, 1), 100),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m0 = sim.get::<SeqMaster>(0);
        assert_eq!(m0.responses.len(), 1, "request served in master 0's slot");
        assert!(sim.now() >= SimTime::ZERO + SimDuration::us(1));
    }

    #[test]
    fn injected_fault_range_fails_the_run() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let cfg = BusConfig {
            fault_ranges: vec![(0x108, 0x10B)],
            ..BusConfig::default()
        };
        let master = sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0x108, vec![1])]),
        );
        let bus = sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        let err = sim.run().expect_err("injected fault must fail the run");
        assert_eq!(err.kind, SimErrorKind::Fault);
        assert_eq!(err.component.as_deref(), Some("bus"));
        // The master still observed a well-formed error response.
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses.len(), 1);
        assert_eq!(m.responses[0].status, BusStatus::SlaveError);
        assert_eq!(m.port.errors, 1);
        assert_eq!(sim.get::<Bus>(bus).stats.injected_faults, 1);
    }

    #[test]
    fn fault_ranges_catch_bursts_that_graze_the_range() {
        let cfg = BusConfig {
            fault_ranges: vec![(0x108, 0x10B)],
            ..BusConfig::default()
        };
        assert!(cfg.fault_at(0x108, 1));
        assert!(cfg.fault_at(0x100, 16), "burst overlapping from below");
        assert!(cfg.fault_at(0x10B, 4), "burst starting at the top word");
        assert!(!cfg.fault_at(0x100, 8));
        assert!(!cfg.fault_at(0x10C, 4));
    }

    #[test]
    fn escalated_decode_miss_is_a_typed_error() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x100, 0x10F, 2));
        let cfg = BusConfig {
            escalate_decode_errors: true,
            ..BusConfig::default()
        };
        let master = sim.add(
            "master",
            SeqMaster::new(1, vec![(BusOp::Read, 0xDEAD, vec![1])]),
        );
        sim.add("bus", Bus::new(cfg, map));
        sim.add(
            "slave",
            SlaveAdapter::new(RegisterFile::new("rf", 0x100, 16, 1), 100),
        );
        let err = sim.run().expect_err("unmapped access must fail the run");
        assert_eq!(err.kind, SimErrorKind::Decode);
        // The DecodeError response is still delivered either way.
        let m = sim.get::<SeqMaster>(master);
        assert_eq!(m.responses[0].status, BusStatus::DecodeError);
    }

    #[test]
    fn malformed_request_is_a_typed_bus_error() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0, 0xFF, 1));
        // id 0 = bus. Inject a zero-burst request straight at it.
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "rogue",
            FnComponent::new(|api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.send(
                        0,
                        BusRequest {
                            id: 1,
                            master: 1,
                            op: BusOp::Read,
                            addr: 0x0,
                            burst: 0,
                            data: vec![],
                            priority: 0,
                        },
                        Delay::Delta,
                    );
                }
            }),
        );
        let err = sim.run().expect_err("zero burst must fail the run");
        assert_eq!(err.kind, SimErrorKind::BusError);
        assert_eq!(err.component.as_deref(), Some("bus"));
    }

    #[test]
    fn transactions_trace_balanced_spans_and_per_master_waits() {
        let (mut sim, master, bus) = build(BusMode::Split);
        sim.enable_observe(4096);
        ok(sim.run());
        let evs = sim.observe_events();
        let begins = evs
            .iter()
            .filter(|e| e.kind == TraceEventKind::Begin)
            .count();
        let ends = evs.iter().filter(|e| e.kind == TraceEventKind::End).count();
        assert!(begins > 0, "bus phases must open spans");
        assert_eq!(begins, ends, "every bus span must close");
        assert!(evs
            .iter()
            .any(|e| e.name == "grant" && e.value == master as u64));
        let b = sim.get::<Bus>(bus);
        let c = b.stats.contention(|id| sim.component_name(id).to_string());
        assert_eq!(
            c.rows.iter().map(|r| r.grants).sum::<u64>(),
            b.stats.total_grants()
        );
        assert!(c.rows.iter().any(|r| r.master == "master"));
    }

    #[test]
    fn bus_utilization_is_sane() {
        let (mut sim, _, bus) = build(BusMode::Split);
        ok(sim.run());
        let now = sim.now();
        let b = sim.get::<Bus>(bus);
        let u = b.stats.utilization(now);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        assert!(b.stats.max_queue >= 1);
        assert_eq!(b.stats.total_grants(), b.stats.requests + b.stats.responses);
    }

    // ---- configuration-train fast path -------------------------------

    use crate::memory::{Memory, MemoryConfig};
    use crate::protocol::{
        ConfigTrain, ConfigTrainDecoalesced, ConfigTrainDone, ConfigTrainRejected, TrainBurst,
    };

    /// Offers its whole burst list as one [`ConfigTrain`] and falls back to
    /// per-burst transactions on rejection or de-coalesce, exactly like the
    /// fabric's configuration controller.
    struct TrainMaster {
        bus: ComponentId,
        port: MasterPort,
        bursts: Vec<TrainBurst>,
        pc: usize,
        outcome: Option<&'static str>,
        done_words: u64,
        deco: Option<ConfigTrainDecoalesced>,
        finished_at: Option<SimTime>,
    }

    impl TrainMaster {
        fn new(bus: ComponentId, bursts: Vec<TrainBurst>) -> Self {
            TrainMaster {
                bus,
                port: MasterPort::new(bus, 1),
                bursts,
                pc: 0,
                outcome: None,
                done_words: 0,
                deco: None,
                finished_at: None,
            }
        }

        fn issue_next(&mut self, api: &mut Api<'_>) {
            if let Some(b) = self.bursts.get(self.pc).cloned() {
                self.pc += 1;
                match b.op {
                    BusOp::Read => {
                        self.port.read(api, b.addr, b.words);
                    }
                    BusOp::Write => {
                        self.port.write(api, b.addr, vec![0; b.words]);
                    }
                }
            } else {
                self.finished_at = Some(api.now());
            }
        }
    }

    impl Component for TrainMaster {
        fn snapshot(&mut self) -> SimResult<Json> {
            use crate::snapshot::time_json;
            Ok(Json::obj()
                .with("port", self.port.snapshot_json())
                .with("pc", ju64(self.pc as u64))
                .with(
                    "outcome",
                    self.outcome.map_or(Json::Null, |s| Json::Str(s.into())),
                )
                .with("done_words", ju64(self.done_words))
                .with(
                    "deco",
                    match &self.deco {
                        None => Json::Null,
                        Some(d) => drcf_kernel::snapshot::encode_payload(d)?,
                    },
                )
                .with(
                    "finished_at",
                    self.finished_at.map_or(Json::Null, time_json),
                ))
        }

        fn restore(&mut self, state: &Json) -> SimResult<()> {
            use crate::snapshot::time_of;
            self.port.restore_json(snap::field(state, "port")?)?;
            self.pc = snap::usize_field(state, "pc")?;
            self.outcome = match snap::field(state, "outcome")? {
                Json::Null => None,
                j => match j.as_str() {
                    Some("done") => Some("done"),
                    Some("rejected") => Some("rejected"),
                    Some("decoalesced") => Some("decoalesced"),
                    _ => return Err(snap::err("unknown train outcome")),
                },
            };
            self.done_words = snap::u64_field(state, "done_words")?;
            self.deco = match snap::field(state, "deco")? {
                Json::Null => None,
                j => Some(
                    *drcf_kernel::snapshot::decode_payload(j)?
                        .downcast::<ConfigTrainDecoalesced>()
                        .map_err(|_| snap::err("deco payload has the wrong type"))?,
                ),
            };
            self.finished_at = match snap::field(state, "finished_at")? {
                Json::Null => None,
                j => Some(time_of(j).ok_or_else(|| snap::err("bad time"))?),
            };
            Ok(())
        }

        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            let msg = match msg.kind {
                MsgKind::Start => {
                    api.send(
                        self.bus,
                        ConfigTrain {
                            master: api.me(),
                            priority: 1,
                            tag: 42,
                            bursts: self.bursts.clone(),
                        },
                        Delay::Delta,
                    );
                    return;
                }
                _ => msg,
            };
            let msg = match msg.user::<ConfigTrainDone>() {
                Ok(d) => {
                    self.outcome = Some("done");
                    self.done_words = d.words;
                    self.finished_at = Some(api.now());
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.user::<ConfigTrainRejected>() {
                Ok(_) => {
                    self.outcome = Some("rejected");
                    self.issue_next(api);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.user::<ConfigTrainDecoalesced>() {
                Ok(d) => {
                    self.outcome = Some("decoalesced");
                    self.deco = Some(d);
                    self.pc = d.done_bursts;
                    if let Some(f) = d.in_flight {
                        self.port.adopt(api, f.id, f.issued_at);
                        self.pc += 1;
                    } else {
                        self.issue_next(api);
                    }
                    return;
                }
                Err(m) => m,
            };
            if self.port.take_response(api, msg).is_ok() {
                self.issue_next(api);
            }
        }
    }

    /// A rival master that issues one read after a fixed delay.
    struct DelayedReader {
        port: MasterPort,
        delay: SimDuration,
        got: bool,
    }

    impl Component for DelayedReader {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match msg.kind {
                MsgKind::Start => api.timer_in(self.delay, 0),
                MsgKind::Timer(_) => {
                    self.port.read(api, 0x210, 2);
                }
                _ => {
                    if self.port.take_response(api, msg).is_ok() {
                        self.got = true;
                    }
                }
            }
        }
    }

    fn train_bursts() -> Vec<TrainBurst> {
        vec![
            TrainBurst {
                op: BusOp::Write,
                addr: 0x200,
                words: 8,
            },
            TrainBurst {
                op: BusOp::Read,
                addr: 0x208,
                words: 8,
            },
            TrainBurst {
                op: BusOp::Read,
                addr: 0x210,
                words: 8,
            },
        ]
    }

    /// ids: 0 = train/seq master, 1 = bus, 2 = memory, 3 = rival (optional).
    /// `rival_delay` arms the delayed reader; `train` selects the offering
    /// master vs the per-burst reference master with the same program.
    fn build_train_world(
        train: bool,
        register_timing: bool,
        rival_delay: Option<SimDuration>,
    ) -> (Simulator, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x200, 0x3FF, 2));
        let mem_cfg = MemoryConfig {
            base: 0x200,
            size_words: 0x200,
            ..MemoryConfig::default()
        };
        let master = if train {
            sim.add("train", TrainMaster::new(1, train_bursts()))
        } else {
            let program: Vec<(BusOp, u64, Vec<u64>)> = train_bursts()
                .into_iter()
                .map(|b| {
                    let payload = match b.op {
                        BusOp::Read => vec![b.words as u64],
                        BusOp::Write => vec![0; b.words],
                    };
                    (b.op, b.addr, payload)
                })
                .collect();
            sim.add("train", SeqMaster::new(1, program))
        };
        let mut bus = Bus::new(BusConfig::default(), map);
        if register_timing {
            bus.register_slave_timing(2, mem_cfg.slave_timing());
        }
        let bus = sim.add("bus", bus);
        let _mem = sim.add("mem", Memory::new(mem_cfg));
        if let Some(delay) = rival_delay {
            sim.add(
                "rival",
                DelayedReader {
                    port: MasterPort::new(1, 2),
                    delay,
                    got: false,
                },
            );
        }
        (sim, master, bus)
    }

    /// Reference observables: finish time plus the bus statistics the train
    /// path must reproduce bit for bit.
    fn observe(train: bool, rival_delay: Option<SimDuration>) -> (SimTime, u64, u64, u64, String) {
        let (mut sim, master, bus) = build_train_world(train, true, rival_delay);
        ok(sim.run());
        // Sanity: the master observed the end of its whole program.
        if train {
            assert!(sim.get::<TrainMaster>(master).finished_at.is_some());
        } else {
            assert_eq!(sim.get::<SeqMaster>(master).responses.len(), 3);
        }
        let b = sim.get::<Bus>(bus);
        let waits = format!("{:?}", b.stats.contention(|id| format!("m{id}")));
        (
            // Quiescent time covers the master's and the rival's traffic.
            sim.now(),
            b.stats.requests,
            b.stats.responses,
            b.stats.words,
            waits,
        )
    }

    #[test]
    fn config_train_accepted_and_matches_per_burst_timing() {
        let (mut sim, master, _) = build_train_world(true, true, None);
        ok(sim.run());
        let m = sim.get::<TrainMaster>(master);
        assert_eq!(m.outcome, Some("done"));
        assert_eq!(m.done_words, 24);
        // The per-burst reference world ends at the same simulated time
        // with identical bus statistics and per-master waits.
        assert_eq!(observe(true, None), observe(false, None));
    }

    #[test]
    fn config_train_rejected_without_registered_slave_timing() {
        let (mut sim, master, _) = build_train_world(true, false, None);
        ok(sim.run());
        let m = sim.get::<TrainMaster>(master);
        assert_eq!(m.outcome, Some("rejected"));
        // The fallback still moves every word.
        assert!(m.finished_at.is_some());
    }

    #[test]
    fn config_train_decoalesces_on_foreign_traffic_and_stays_equivalent() {
        // Sweep the rival's arrival across the window so every de-coalesce
        // case (request phase, slave service, response phase, done prefix)
        // is exercised; each must match the per-burst world exactly.
        let mut saw_decoalesce = false;
        for ns in (0..400).step_by(7) {
            let delay = SimDuration::ns(ns);
            let (mut sim, master, _) = build_train_world(true, true, Some(delay));
            ok(sim.run());
            let m = sim.get::<TrainMaster>(master);
            if m.outcome == Some("decoalesced") {
                saw_decoalesce = true;
                let d = m.deco.as_ref().map(|d| d.done_bursts);
                assert!(d.unwrap_or(0) <= 3, "prefix within the train: {d:?}");
            }
            assert_eq!(
                observe(true, Some(delay)),
                observe(false, Some(delay)),
                "divergence with rival at {ns}ns"
            );
        }
        assert!(saw_decoalesce, "the sweep must hit mid-window arrivals");
    }

    /// Everything the split-world run can externally observe, for
    /// restore-vs-straight comparisons.
    fn split_observables(sim: &Simulator, master: ComponentId, bus: ComponentId) -> String {
        let m = sim.get::<SeqMaster>(master);
        let b = sim.get::<Bus>(bus);
        format!(
            "now={:?} responses={:?} stats={}",
            sim.now(),
            m.responses,
            b.stats.snapshot_json(),
        )
    }

    #[test]
    fn snapshot_mid_split_transaction_restores_bit_identical() {
        // Run to 15 ns: the write's 3-cycle request phase (30 ns) is still
        // in flight, so the bus is mid-transaction with a timer pending.
        let (mut sim, master, bus) = build(BusMode::Split);
        ok(sim.run_until(SimTime::ZERO + SimDuration::ns(15)));
        assert!(
            !matches!(sim.get::<Bus>(bus).state, State::Idle),
            "snapshot must land mid-transaction"
        );
        let snap = ok(sim.snapshot());

        let (mut fresh, master2, bus2) = build(BusMode::Split);
        ok(fresh.restore(&snap));
        ok(fresh.run());
        ok(sim.run());
        assert_eq!(
            split_observables(&sim, master, bus),
            split_observables(&fresh, master2, bus2),
        );
    }

    #[test]
    fn snapshot_mid_config_train_restores_bit_identical() {
        // Run into the analytic train window, snapshot while the train is
        // active, and check the restored world finishes identically.
        let (mut sim, master, bus) = build_train_world(true, true, None);
        ok(sim.run_until(SimTime::ZERO + SimDuration::ns(100)));
        assert!(
            sim.get::<Bus>(bus).train.is_some(),
            "snapshot must land inside the train window"
        );
        let snap = ok(sim.snapshot());

        let (mut fresh, master2, bus2) = build_train_world(true, true, None);
        ok(fresh.restore(&snap));
        ok(fresh.run());
        ok(sim.run());

        let view = |s: &Simulator, master: ComponentId, bus: ComponentId| {
            let m = s.get::<TrainMaster>(master);
            let b = s.get::<Bus>(bus);
            format!(
                "now={:?} outcome={:?} words={} finished={:?} stats={}",
                s.now(),
                m.outcome,
                m.done_words,
                m.finished_at,
                b.stats.snapshot_json(),
            )
        };
        assert_eq!(view(&sim, master, bus), view(&fresh, master2, bus2));
        assert_eq!(sim.get::<TrainMaster>(master).outcome, Some("done"));
    }
}
