//! Snapshot support for the bus substrate.
//!
//! Two things live here:
//!
//! * JSON encoders/decoders for the protocol payloads
//!   ([`crate::protocol`], [`crate::dma`]) — needed whenever a
//!   `Simulator::snapshot` catches one of them in flight on the timed
//!   queue;
//! * [`register_bus_codecs`], which registers every payload type with the
//!   kernel's codec registry. Component constructors call it, so any system
//!   containing a bus-crate component can be snapshot without further
//!   setup.
//!
//! The `Snapshotable` impls for concrete components live next to their
//! private fields (`bus.rs`, `dma.rs`, ...); this module only holds the
//! shared, payload-level encoding.

use std::sync::Once;

use drcf_kernel::json::{ju64, ju64_of, Json};
use drcf_kernel::prelude::{SimDuration, SimTime};
use drcf_kernel::snapshot::{register_payload_codec, PayloadCodec};

use crate::dma::{DmaAutoRepeat, DmaDone, DmaProgram};
use crate::protocol::{
    BulkAccess, BusOp, BusRequest, BusResponse, BusStatus, ConfigTrain, ConfigTrainDecoalesced,
    ConfigTrainDone, ConfigTrainRejected, DirectReadDone, DirectReadReq, InFlightBurst, ServeBurst,
    SlaveAccess, SlaveReply, TrainBurst, Word,
};

/// Encode a [`BusOp`].
pub fn op_json(op: BusOp) -> Json {
    Json::from(match op {
        BusOp::Read => "read",
        BusOp::Write => "write",
    })
}

/// Decode a [`BusOp`].
pub fn op_of(j: &Json) -> Option<BusOp> {
    match j.as_str()? {
        "read" => Some(BusOp::Read),
        "write" => Some(BusOp::Write),
        _ => None,
    }
}

/// Encode a [`BusStatus`].
pub fn status_json(s: BusStatus) -> Json {
    Json::from(match s {
        BusStatus::Ok => "ok",
        BusStatus::DecodeError => "decode_error",
        BusStatus::SlaveError => "slave_error",
    })
}

/// Decode a [`BusStatus`].
pub fn status_of(j: &Json) -> Option<BusStatus> {
    match j.as_str()? {
        "ok" => Some(BusStatus::Ok),
        "decode_error" => Some(BusStatus::DecodeError),
        "slave_error" => Some(BusStatus::SlaveError),
        _ => None,
    }
}

/// Encode a word list losslessly (words use the full `u64` range).
pub fn words_json(words: &[Word]) -> Json {
    Json::Arr(words.iter().map(|&w| ju64(w)).collect())
}

/// Decode a word list.
pub fn words_of(j: &Json) -> Option<Vec<Word>> {
    j.as_arr()?.iter().map(ju64_of).collect()
}

/// Encode an absolute time.
pub fn time_json(t: SimTime) -> Json {
    ju64(t.as_fs())
}

/// Decode an absolute time.
pub fn time_of(j: &Json) -> Option<SimTime> {
    Some(SimTime(ju64_of(j)?))
}

/// Encode a duration.
pub fn dur_json(d: SimDuration) -> Json {
    ju64(d.as_fs())
}

/// Decode a duration.
pub fn dur_of(j: &Json) -> Option<SimDuration> {
    Some(SimDuration::fs(ju64_of(j)?))
}

/// Encode a [`SlaveAccess`].
pub fn access_json(a: &SlaveAccess) -> Json {
    Json::obj()
        .with("req", req_json(&a.req))
        .with("bus", ju64(a.bus as u64))
}

/// Decode a [`SlaveAccess`].
pub fn access_of(j: &Json) -> Option<SlaveAccess> {
    Some(SlaveAccess {
        req: req_of(j.get("req")?)?,
        bus: usizef(j, "bus")?,
    })
}

fn u64f(j: &Json, key: &str) -> Option<u64> {
    ju64_of(j.get(key)?)
}

fn usizef(j: &Json, key: &str) -> Option<usize> {
    usize::try_from(u64f(j, key)?).ok()
}

/// Encode a [`BusRequest`].
pub fn req_json(req: &BusRequest) -> Json {
    Json::obj()
        .with("id", ju64(req.id))
        .with("master", ju64(req.master as u64))
        .with("op", op_json(req.op))
        .with("addr", ju64(req.addr))
        .with("burst", ju64(req.burst as u64))
        .with("data", words_json(&req.data))
        .with("priority", Json::Num(req.priority as f64))
}

/// Decode a [`BusRequest`].
pub fn req_of(j: &Json) -> Option<BusRequest> {
    Some(BusRequest {
        id: u64f(j, "id")?,
        master: usizef(j, "master")?,
        op: op_of(j.get("op")?)?,
        addr: u64f(j, "addr")?,
        burst: usizef(j, "burst")?,
        data: words_of(j.get("data")?)?,
        priority: u8::try_from(u64f(j, "priority")?).ok()?,
    })
}

/// Encode a [`BusResponse`].
pub fn resp_json(resp: &BusResponse) -> Json {
    Json::obj()
        .with("id", ju64(resp.id))
        .with("op", op_json(resp.op))
        .with("addr", ju64(resp.addr))
        .with("status", status_json(resp.status))
        .with("data", words_json(&resp.data))
}

/// Decode a [`BusResponse`].
pub fn resp_of(j: &Json) -> Option<BusResponse> {
    Some(BusResponse {
        id: u64f(j, "id")?,
        op: op_of(j.get("op")?)?,
        addr: u64f(j, "addr")?,
        status: status_of(j.get("status")?)?,
        data: words_of(j.get("data")?)?,
    })
}

/// Encode a [`SlaveReply`].
pub fn reply_json(r: &SlaveReply) -> Json {
    Json::obj()
        .with("resp", resp_json(&r.resp))
        .with("master", ju64(r.master as u64))
}

/// Decode a [`SlaveReply`].
pub fn reply_of(j: &Json) -> Option<SlaveReply> {
    Some(SlaveReply {
        resp: resp_of(j.get("resp")?)?,
        master: usizef(j, "master")?,
    })
}

/// Encode a [`TrainBurst`].
pub fn burst_json(b: &TrainBurst) -> Json {
    Json::obj()
        .with("op", op_json(b.op))
        .with("addr", ju64(b.addr))
        .with("words", ju64(b.words as u64))
}

/// Decode a [`TrainBurst`].
pub fn burst_of(j: &Json) -> Option<TrainBurst> {
    Some(TrainBurst {
        op: op_of(j.get("op")?)?,
        addr: u64f(j, "addr")?,
        words: usizef(j, "words")?,
    })
}

fn burst_list_json(bursts: &[TrainBurst]) -> Json {
    Json::Arr(bursts.iter().map(burst_json).collect())
}

fn burst_list_of(j: &Json) -> Option<Vec<TrainBurst>> {
    j.as_arr()?.iter().map(burst_of).collect()
}

fn dma_program_json(p: &DmaProgram) -> Json {
    Json::obj()
        .with("src", ju64(p.src))
        .with("dst", ju64(p.dst))
        .with("words", ju64(p.words))
        .with("notify", ju64(p.notify as u64))
        .with("tag", ju64(p.tag))
}

fn dma_program_of(j: &Json) -> Option<DmaProgram> {
    Some(DmaProgram {
        src: u64f(j, "src")?,
        dst: u64f(j, "dst")?,
        words: u64f(j, "words")?,
        notify: usizef(j, "notify")?,
        tag: u64f(j, "tag")?,
    })
}

/// Register payload codecs for every message type the bus crate can leave
/// in flight across a snapshot point. Idempotent and cheap; called from
/// component constructors.
pub fn register_bus_codecs() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        register_payload_codec(PayloadCodec {
            name: "bus.BusRequest",
            encode: |any| any.downcast_ref::<BusRequest>().map(req_json),
            decode: |j| req_of(j).map(|v| Box::new(v) as _),
        });
        register_payload_codec(PayloadCodec {
            name: "bus.BusResponse",
            encode: |any| any.downcast_ref::<BusResponse>().map(resp_json),
            decode: |j| resp_of(j).map(|v| Box::new(v) as _),
        });
        register_payload_codec(PayloadCodec {
            name: "bus.SlaveAccess",
            encode: |any| {
                any.downcast_ref::<SlaveAccess>().map(|a| {
                    Json::obj()
                        .with("req", req_json(&a.req))
                        .with("bus", ju64(a.bus as u64))
                })
            },
            decode: |j| {
                Some(Box::new(SlaveAccess {
                    req: req_of(j.get("req")?)?,
                    bus: usizef(j, "bus")?,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.SlaveReply",
            encode: |any| any.downcast_ref::<SlaveReply>().map(reply_json),
            decode: |j| reply_of(j).map(|v| Box::new(v) as _),
        });
        register_payload_codec(PayloadCodec {
            name: "bus.DirectReadReq",
            encode: |any| {
                any.downcast_ref::<DirectReadReq>().map(|r| {
                    Json::obj()
                        .with("requester", ju64(r.requester as u64))
                        .with("addr", ju64(r.addr))
                        .with("words", ju64(r.words as u64))
                        .with("tag", ju64(r.tag))
                })
            },
            decode: |j| {
                Some(Box::new(DirectReadReq {
                    requester: usizef(j, "requester")?,
                    addr: u64f(j, "addr")?,
                    words: usizef(j, "words")?,
                    tag: u64f(j, "tag")?,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.DirectReadDone",
            encode: |any| {
                any.downcast_ref::<DirectReadDone>().map(|d| {
                    Json::obj()
                        .with("tag", ju64(d.tag))
                        .with("words", ju64(d.words as u64))
                })
            },
            decode: |j| {
                Some(Box::new(DirectReadDone {
                    tag: u64f(j, "tag")?,
                    words: usizef(j, "words")?,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.ConfigTrain",
            encode: |any| {
                any.downcast_ref::<ConfigTrain>().map(|t| {
                    Json::obj()
                        .with("master", ju64(t.master as u64))
                        .with("priority", Json::Num(t.priority as f64))
                        .with("tag", ju64(t.tag))
                        .with("bursts", burst_list_json(&t.bursts))
                })
            },
            decode: |j| {
                Some(Box::new(ConfigTrain {
                    master: usizef(j, "master")?,
                    priority: u8::try_from(u64f(j, "priority")?).ok()?,
                    tag: u64f(j, "tag")?,
                    bursts: burst_list_of(j.get("bursts")?)?,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.ConfigTrainDone",
            encode: |any| {
                any.downcast_ref::<ConfigTrainDone>().map(|d| {
                    Json::obj()
                        .with("tag", ju64(d.tag))
                        .with("words", ju64(d.words))
                })
            },
            decode: |j| {
                Some(Box::new(ConfigTrainDone {
                    tag: u64f(j, "tag")?,
                    words: u64f(j, "words")?,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.ConfigTrainRejected",
            encode: |any| {
                any.downcast_ref::<ConfigTrainRejected>()
                    .map(|r| Json::obj().with("tag", ju64(r.tag)))
            },
            decode: |j| {
                Some(Box::new(ConfigTrainRejected {
                    tag: u64f(j, "tag")?,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.ConfigTrainDecoalesced",
            encode: |any| {
                any.downcast_ref::<ConfigTrainDecoalesced>().map(|d| {
                    Json::obj()
                        .with("tag", ju64(d.tag))
                        .with("done_bursts", ju64(d.done_bursts as u64))
                        .with(
                            "in_flight",
                            match &d.in_flight {
                                Some(f) => Json::obj()
                                    .with("id", ju64(f.id))
                                    .with("op", op_json(f.op))
                                    .with("addr", ju64(f.addr))
                                    .with("words", ju64(f.words as u64))
                                    .with("issued_at", time_json(f.issued_at)),
                                None => Json::Null,
                            },
                        )
                })
            },
            decode: |j| {
                let in_flight = match j.get("in_flight")? {
                    Json::Null => None,
                    f => Some(InFlightBurst {
                        id: u64f(f, "id")?,
                        op: op_of(f.get("op")?)?,
                        addr: u64f(f, "addr")?,
                        words: usizef(f, "words")?,
                        issued_at: time_of(f.get("issued_at")?)?,
                    }),
                };
                Some(Box::new(ConfigTrainDecoalesced {
                    tag: u64f(j, "tag")?,
                    done_bursts: usizef(j, "done_bursts")?,
                    in_flight,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.BulkAccess",
            encode: |any| {
                any.downcast_ref::<BulkAccess>().map(|b| {
                    Json::obj()
                        .with("bursts", burst_list_json(&b.bursts))
                        .with("busy_until", time_json(b.busy_until))
                        .with(
                            "serve",
                            match &b.serve {
                                Some(s) => Json::obj()
                                    .with("req", req_json(&s.req))
                                    .with("bus", ju64(s.bus as u64))
                                    .with("reply_at", time_json(s.reply_at)),
                                None => Json::Null,
                            },
                        )
                })
            },
            decode: |j| {
                let serve = match j.get("serve")? {
                    Json::Null => None,
                    s => Some(ServeBurst {
                        req: req_of(s.get("req")?)?,
                        bus: usizef(s, "bus")?,
                        reply_at: time_of(s.get("reply_at")?)?,
                    }),
                };
                Some(Box::new(BulkAccess {
                    bursts: burst_list_of(j.get("bursts")?)?,
                    busy_until: time_of(j.get("busy_until")?)?,
                    serve,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.DmaProgram",
            encode: |any| any.downcast_ref::<DmaProgram>().map(dma_program_json),
            decode: |j| dma_program_of(j).map(|v| Box::new(v) as _),
        });
        register_payload_codec(PayloadCodec {
            name: "bus.DmaDone",
            encode: |any| {
                any.downcast_ref::<DmaDone>().map(|d| {
                    Json::obj()
                        .with("tag", ju64(d.tag))
                        .with("words", ju64(d.words))
                })
            },
            decode: |j| {
                Some(Box::new(DmaDone {
                    tag: u64f(j, "tag")?,
                    words: u64f(j, "words")?,
                }) as _)
            },
        });
        register_payload_codec(PayloadCodec {
            name: "bus.DmaAutoRepeat",
            encode: |any| {
                any.downcast_ref::<DmaAutoRepeat>().map(|a| {
                    Json::obj()
                        .with("program", dma_program_json(&a.program))
                        .with("period", ju64(a.period.as_fs()))
                        .with("count", ju64(a.count))
                })
            },
            decode: |j| {
                Some(Box::new(DmaAutoRepeat {
                    program: dma_program_of(j.get("program")?)?,
                    period: SimDuration::fs(u64f(j, "period")?),
                    count: u64f(j, "count")?,
                }) as _)
            },
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::snapshot::{decode_payload, encode_payload};

    #[test]
    fn bus_request_payload_round_trips_through_the_registry() {
        register_bus_codecs();
        let req = BusRequest {
            id: (1 << 63) | 5, // train-adopted id: exceeds f64-exact range
            master: 3,
            op: BusOp::Write,
            addr: 0xFFFF_FFFF_FFFF_0000,
            burst: 2,
            data: vec![u64::MAX, 7],
            priority: 9,
        };
        let doc = encode_payload(&req).unwrap_or_else(|e| panic!("encode: {e}"));
        let back = decode_payload(&doc).unwrap_or_else(|e| panic!("decode: {e}"));
        let back = back
            .downcast_ref::<BusRequest>()
            .unwrap_or_else(|| panic!("wrong payload type"));
        assert_eq!(back.id, req.id);
        assert_eq!(back.addr, req.addr);
        assert_eq!(back.data, req.data);
        assert_eq!(back.op, req.op);
        assert_eq!(back.priority, req.priority);
    }

    #[test]
    fn train_outcomes_round_trip() {
        register_bus_codecs();
        let deco = ConfigTrainDecoalesced {
            tag: 42,
            done_bursts: 2,
            in_flight: Some(InFlightBurst {
                id: (1 << 63) | 1,
                op: BusOp::Read,
                addr: 0x208,
                words: 8,
                issued_at: SimTime(123_456_789),
            }),
        };
        let doc = encode_payload(&deco).unwrap_or_else(|e| panic!("encode: {e}"));
        let back = decode_payload(&doc).unwrap_or_else(|e| panic!("decode: {e}"));
        let back = back
            .downcast_ref::<ConfigTrainDecoalesced>()
            .unwrap_or_else(|| panic!("wrong payload type"));
        assert_eq!(back.tag, 42);
        assert_eq!(back.done_bursts, 2);
        let f = back.in_flight.unwrap_or_else(|| panic!("in_flight lost"));
        assert_eq!(f.id, (1 << 63) | 1);
        assert_eq!(f.issued_at, SimTime(123_456_789));
    }
}
