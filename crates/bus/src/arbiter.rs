//! Bus arbitration policies.
//!
//! The arbiter picks which pending request gets the bus when it goes idle.
//! Three classic policies are provided: fixed priority, round-robin, and
//! TDMA. All are deterministic.

use drcf_kernel::json::{ju64, ju64_of, Json};
use drcf_kernel::prelude::{ComponentId, SimDuration, SimTime};

/// Summary of one queued request, as seen by the arbiter.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Requesting master.
    pub master: ComponentId,
    /// Request priority.
    pub priority: u8,
    /// Monotone arrival order (smaller = earlier).
    pub arrival: u64,
    /// True when this is the response phase of a split transaction;
    /// responses outrank fresh requests in every policy so split buses
    /// drain rather than starve.
    pub is_response: bool,
}

/// An arbitration policy.
pub trait Arbiter: 'static {
    /// Choose one of `candidates` (returning its index), or `None` to leave
    /// the bus idle this round (TDMA outside the owner's slot). `candidates`
    /// is never empty.
    fn pick(&mut self, now: SimTime, candidates: &[Candidate]) -> Option<usize>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Capture grant history (for `Simulator::snapshot`). Stateless
    /// policies keep the default.
    fn snapshot_state(&self) -> Json {
        Json::Null
    }

    /// Restore state captured by [`Arbiter::snapshot_state`].
    fn restore_state(&mut self, _state: &Json) -> Result<(), String> {
        Ok(())
    }
}

/// Selects pending responses before requests; among the given subset,
/// applies `key` and takes the minimum. Returns the winning index, or
/// `None` for an empty candidate list (the bus never passes one).
fn pick_min_by<K: Ord>(candidates: &[Candidate], key: impl Fn(&Candidate) -> K) -> Option<usize> {
    let responses_exist = candidates.iter().any(|c| c.is_response);
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| !responses_exist || c.is_response)
        .min_by_key(|(_, c)| key(c))
        .map(|(i, _)| i)
}

/// Fixed priority: highest `priority` wins; ties broken by arrival order.
#[derive(Debug, Default)]
pub struct PriorityArbiter;

impl Arbiter for PriorityArbiter {
    fn pick(&mut self, _now: SimTime, candidates: &[Candidate]) -> Option<usize> {
        pick_min_by(candidates, |c| (std::cmp::Reverse(c.priority), c.arrival))
    }
    fn name(&self) -> &'static str {
        "priority"
    }
}

/// Round-robin over masters: the master that was granted least recently
/// wins; brand-new masters count as least recent.
#[derive(Debug, Default)]
pub struct RoundRobinArbiter {
    /// grant counter per master, in discovery order.
    history: Vec<(ComponentId, u64)>,
    grants: u64,
}

impl RoundRobinArbiter {
    fn last_grant(&self, m: ComponentId) -> u64 {
        self.history
            .iter()
            .find(|&&(id, _)| id == m)
            .map(|&(_, g)| g)
            .unwrap_or(0)
    }

    fn note_grant(&mut self, m: ComponentId) {
        self.grants += 1;
        let g = self.grants;
        if let Some(e) = self.history.iter_mut().find(|e| e.0 == m) {
            e.1 = g;
        } else {
            self.history.push((m, g));
        }
    }
}

impl Arbiter for RoundRobinArbiter {
    fn pick(&mut self, _now: SimTime, candidates: &[Candidate]) -> Option<usize> {
        let idx = pick_min_by(candidates, |c| (self.last_grant(c.master), c.arrival))?;
        self.note_grant(candidates[idx].master);
        Some(idx)
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn snapshot_state(&self) -> Json {
        Json::obj()
            .with(
                "history",
                Json::Arr(
                    self.history
                        .iter()
                        .map(|&(id, g)| Json::Arr(vec![ju64(id as u64), ju64(g)]))
                        .collect(),
                ),
            )
            .with("grants", ju64(self.grants))
    }

    fn restore_state(&mut self, state: &Json) -> Result<(), String> {
        let hist = state
            .get("history")
            .and_then(Json::as_arr)
            .ok_or("round-robin history missing")?;
        self.history.clear();
        for e in hist {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let (id, g) = pair
                .and_then(|p| Some((ju64_of(&p[0])?, ju64_of(&p[1])?)))
                .ok_or("malformed round-robin history entry")?;
            self.history.push((id as ComponentId, g));
        }
        self.grants = state
            .get("grants")
            .and_then(ju64_of)
            .ok_or("round-robin grants missing")?;
        Ok(())
    }
}

/// TDMA: time is divided into fixed slots, each owned by one master; a
/// request is granted only in its owner's slot. Responses are always
/// granted (they already own the transaction).
#[derive(Debug)]
pub struct TdmaArbiter {
    /// Slot owners, cycled in order.
    pub owners: Vec<ComponentId>,
    /// Slot length.
    pub slot: SimDuration,
}

impl TdmaArbiter {
    /// New TDMA schedule.
    pub fn new(owners: Vec<ComponentId>, slot: SimDuration) -> Self {
        assert!(!owners.is_empty(), "TDMA needs at least one slot owner");
        assert!(!slot.is_zero(), "TDMA slot must be nonzero");
        TdmaArbiter { owners, slot }
    }

    /// Which master owns the bus at `now`.
    pub fn owner_at(&self, now: SimTime) -> ComponentId {
        let slot_idx = (now.as_fs() / self.slot.as_fs()) as usize % self.owners.len();
        self.owners[slot_idx]
    }
}

impl Arbiter for TdmaArbiter {
    fn pick(&mut self, now: SimTime, candidates: &[Candidate]) -> Option<usize> {
        if candidates.iter().any(|c| c.is_response) {
            return pick_min_by(candidates, |c| c.arrival);
        }
        let owner = self.owner_at(now);
        candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.master == owner)
            .min_by_key(|(_, c)| c.arrival)
            .map(|(i, _)| i)
    }
    fn name(&self) -> &'static str {
        "tdma"
    }
}

/// Arbiter selection for configuration structs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbiterKind {
    /// [`PriorityArbiter`].
    Priority,
    /// [`RoundRobinArbiter`].
    RoundRobin,
    /// [`TdmaArbiter`] with the given owners and slot.
    Tdma {
        /// Slot owners in rotation order.
        owners: Vec<ComponentId>,
        /// Slot duration.
        slot: SimDuration,
    },
}

impl ArbiterKind {
    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::Priority => Box::new(PriorityArbiter),
            ArbiterKind::RoundRobin => Box::new(RoundRobinArbiter::default()),
            ArbiterKind::Tdma { owners, slot } => Box::new(TdmaArbiter::new(owners.clone(), *slot)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::testing::some;

    fn cand(master: ComponentId, priority: u8, arrival: u64) -> Candidate {
        Candidate {
            master,
            priority,
            arrival,
            is_response: false,
        }
    }

    #[test]
    fn priority_prefers_higher_then_earlier() {
        let mut a = PriorityArbiter;
        let c = vec![cand(1, 0, 0), cand(2, 5, 1), cand(3, 5, 2)];
        assert_eq!(a.pick(SimTime::ZERO, &c), Some(1));
    }

    #[test]
    fn responses_outrank_requests() {
        let mut a = PriorityArbiter;
        let mut c = vec![cand(1, 200, 0), cand(2, 0, 1)];
        c[1].is_response = true;
        assert_eq!(a.pick(SimTime::ZERO, &c), Some(1));
    }

    #[test]
    fn round_robin_alternates_between_masters() {
        let mut a = RoundRobinArbiter::default();
        let c = vec![cand(1, 0, 0), cand(2, 0, 1)];
        let first = some(a.pick(SimTime::ZERO, &c));
        assert_eq!(first, 0, "earlier arrival wins among unseen masters");
        // Master 1 was just granted; master 2 must win now.
        let second = some(a.pick(SimTime::ZERO, &c));
        assert_eq!(second, 1);
        // And back to master 1.
        let third = some(a.pick(SimTime::ZERO, &c));
        assert_eq!(third, 0);
    }

    #[test]
    fn round_robin_fairness_bound() {
        // Over many rounds with both masters always pending, grants differ
        // by at most one.
        let mut a = RoundRobinArbiter::default();
        let c = vec![cand(1, 0, 0), cand(2, 0, 1)];
        let mut counts = [0u32; 2];
        for _ in 0..101 {
            let w = some(a.pick(SimTime::ZERO, &c));
            counts[w] += 1;
        }
        assert!(counts[0].abs_diff(counts[1]) <= 1, "{counts:?}");
    }

    #[test]
    fn tdma_grants_only_slot_owner() {
        let mut a = TdmaArbiter::new(vec![10, 20], SimDuration::ns(100));
        let c = vec![cand(10, 0, 0), cand(20, 0, 1)];
        // t = 50ns: slot 0, owner 10.
        assert_eq!(a.pick(SimTime::ZERO + SimDuration::ns(50), &c), Some(0));
        // t = 150ns: slot 1, owner 20.
        assert_eq!(a.pick(SimTime::ZERO + SimDuration::ns(150), &c), Some(1));
        // t = 250ns: wraps to owner 10.
        assert_eq!(a.pick(SimTime::ZERO + SimDuration::ns(250), &c), Some(0));
        // Owner absent -> idle.
        let only20 = vec![cand(20, 0, 0)];
        assert_eq!(a.pick(SimTime::ZERO, &only20), None);
    }

    #[test]
    fn tdma_always_lets_responses_through() {
        let mut a = TdmaArbiter::new(vec![10], SimDuration::ns(10));
        let mut c = vec![cand(99, 0, 0)];
        c[0].is_response = true;
        assert_eq!(a.pick(SimTime::ZERO, &c), Some(0));
    }

    #[test]
    fn kind_builds_the_right_policy() {
        assert_eq!(ArbiterKind::Priority.build().name(), "priority");
        assert_eq!(ArbiterKind::RoundRobin.build().name(), "round-robin");
        let k = ArbiterKind::Tdma {
            owners: vec![1],
            slot: SimDuration::ns(5),
        };
        assert_eq!(k.build().name(), "tdma");
    }
}
