//! Bus transaction records.
//!
//! These are the message payloads exchanged between masters, the shared
//! bus, and slaves. They correspond to the interface-method calls of the
//! paper's `bus_mst_if`/`bus_slv_if`: a blocking `read`/`write` call in
//! SystemC becomes a `BusRequest` → `BusResponse` split transaction here,
//! with the requesting master holding a kernel *obligation* in between (so
//! a never-answered call is a detectable deadlock, not silent quiescence).

use drcf_kernel::prelude::{ComponentId, SimTime};

/// Bus address, in word units (the whole workspace addresses memory at
/// word granularity, matching the `sc_uint<ADDW>` addresses of the paper's
/// listings).
pub type Addr = u64;
/// Bus data word.
pub type Word = u64;
/// Transaction identifier, unique per master port.
pub type TxnId = u64;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// Transfer from slave to master.
    Read,
    /// Transfer from master to slave.
    Write,
}

/// Completion status of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusStatus {
    /// Completed normally.
    Ok,
    /// No slave claimed the address.
    DecodeError,
    /// The slave rejected the access.
    SlaveError,
}

/// A master's request, sent to the bus component.
#[derive(Debug, Clone)]
pub struct BusRequest {
    /// Transaction id (chosen by the master port).
    pub id: TxnId,
    /// Component to deliver the [`BusResponse`] to.
    pub master: ComponentId,
    /// Operation.
    pub op: BusOp,
    /// Start address.
    pub addr: Addr,
    /// Number of words transferred (burst length, >= 1).
    pub burst: usize,
    /// Write payload (`burst` words) — empty for reads.
    pub data: Vec<Word>,
    /// Arbitration priority (higher wins under the priority arbiter).
    pub priority: u8,
}

impl BusRequest {
    /// Validate internal consistency (burst/data agreement).
    pub fn validate(&self) -> Result<(), String> {
        if self.burst == 0 {
            return Err("burst length must be >= 1".into());
        }
        match self.op {
            BusOp::Read => {
                if !self.data.is_empty() {
                    return Err("read request must not carry data".into());
                }
            }
            BusOp::Write => {
                if self.data.len() != self.burst {
                    return Err(format!(
                        "write burst {} does not match payload length {}",
                        self.burst,
                        self.data.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The bus's answer to a master, delivered when the transaction completes.
#[derive(Debug, Clone)]
pub struct BusResponse {
    /// Transaction id from the request.
    pub id: TxnId,
    /// Operation of the original request.
    pub op: BusOp,
    /// Start address of the original request.
    pub addr: Addr,
    /// Completion status.
    pub status: BusStatus,
    /// Read payload — empty for writes and failed reads.
    pub data: Vec<Word>,
}

impl BusResponse {
    /// True when the transaction completed normally.
    pub fn is_ok(&self) -> bool {
        self.status == BusStatus::Ok
    }
}

/// Bus → slave: an access that has completed its address (and, for writes,
/// data) phase on the bus and is now the slave's to process.
#[derive(Debug, Clone)]
pub struct SlaveAccess {
    /// The transaction, as the bus decoded it.
    pub req: BusRequest,
    /// The bus component expecting the [`SlaveReply`].
    pub bus: ComponentId,
}

/// Slave → bus: the processed result.
#[derive(Debug, Clone)]
pub struct SlaveReply {
    /// The completed (or failed) transaction.
    pub resp: BusResponse,
    /// Master the response must ultimately be routed to.
    pub master: ComponentId,
}

/// Memory → requester on a *direct* (non-bus) port; see
/// [`crate::memory::Memory`]. Used for dedicated configuration-memory ports
/// in the paper's memory-organization study.
#[derive(Debug, Clone)]
pub struct DirectReadReq {
    /// Who to notify on completion.
    pub requester: ComponentId,
    /// Start address.
    pub addr: Addr,
    /// Words to read.
    pub words: usize,
    /// Caller-chosen tag echoed in the reply.
    pub tag: u64,
}

/// Completion of a [`DirectReadReq`]; data content is not carried (direct
/// ports are used for configuration streaming where only timing matters).
#[derive(Debug, Clone)]
pub struct DirectReadDone {
    /// Tag from the request.
    pub tag: u64,
    /// Words transferred.
    pub words: usize,
}

/// One burst of a coalesced configuration train. Trains are timing-only
/// traffic: write payloads are implied zeros and read data is discarded by
/// the fabric, so only `(op, addr, words)` needs to travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainBurst {
    /// Read (image/state fetch) or write (state save).
    pub op: BusOp,
    /// Start address.
    pub addr: Addr,
    /// Words in this burst (>= 1).
    pub words: usize,
}

/// Master → bus: offer to run a whole multi-burst configuration load as a
/// single analytically-timed bus-occupancy window. The bus either accepts
/// (answering later with [`ConfigTrainDone`] or [`ConfigTrainDecoalesced`])
/// or answers [`ConfigTrainRejected`] immediately, in which case the master
/// falls back to per-burst transactions.
#[derive(Debug, Clone)]
pub struct ConfigTrain {
    /// Component to deliver the outcome to.
    pub master: ComponentId,
    /// Arbitration priority the per-burst requests would have used.
    pub priority: u8,
    /// Caller-chosen tag echoed in every outcome message.
    pub tag: u64,
    /// The bursts, in issue order.
    pub bursts: Vec<TrainBurst>,
}

/// Bus → master: the whole train completed without interference; simulated
/// time now equals the instant the last per-burst response would have been
/// delivered.
#[derive(Debug, Clone, Copy)]
pub struct ConfigTrainDone {
    /// Tag from the [`ConfigTrain`].
    pub tag: u64,
    /// Total words transferred.
    pub words: u64,
}

/// Bus → master: the train could not be accepted (wrong bus mode, pending
/// traffic, fault-range overlap, unregistered slave timing, ...).
#[derive(Debug, Clone, Copy)]
pub struct ConfigTrainRejected {
    /// Tag from the [`ConfigTrain`].
    pub tag: u64,
}

/// The single burst that was mid-transaction when a train de-coalesced,
/// rebuilt onto the real bus machinery. The master adopts transaction `id`
/// and receives its [`BusResponse`] through the normal split-transaction
/// path.
#[derive(Debug, Clone, Copy)]
pub struct InFlightBurst {
    /// Bus-chosen transaction id (outside any master port's id space).
    pub id: TxnId,
    /// Operation.
    pub op: BusOp,
    /// Start address.
    pub addr: Addr,
    /// Burst length in words.
    pub words: usize,
    /// When the per-burst request would have been issued (its grant time).
    pub issued_at: SimTime,
}

/// Bus → master: foreign traffic arrived mid-window, so the remainder of
/// the train falls back to per-burst transactions. `done_bursts` bursts
/// completed inside the window exactly as their per-burst counterparts
/// would have; `in_flight`, when present, is the burst currently on the
/// bus/slave, which completes through the real machinery.
#[derive(Debug, Clone, Copy)]
pub struct ConfigTrainDecoalesced {
    /// Tag from the [`ConfigTrain`].
    pub tag: u64,
    /// Fully-completed burst count (prefix of the train's burst list).
    pub done_bursts: usize,
    /// The burst mid-transaction at de-coalesce time, if any.
    pub in_flight: Option<InFlightBurst>,
}

/// Bus → slave: fast-forward the slave over a completed train prefix (stat
/// counters, functional writes of the implied zeros, and port occupancy),
/// plus an optional burst to service for real (its reply is owed at
/// [`ServeBurst::reply_at`]).
#[derive(Debug, Clone)]
pub struct BulkAccess {
    /// Completed bursts to account for.
    pub bursts: Vec<TrainBurst>,
    /// Port occupancy after the last completed burst (ignored when earlier
    /// than the slave's current horizon).
    pub busy_until: SimTime,
    /// A burst the slave was servicing at de-coalesce time.
    pub serve: Option<ServeBurst>,
}

/// The in-service burst carried by a [`BulkAccess`].
#[derive(Debug, Clone)]
pub struct ServeBurst {
    /// The reconstructed request (write payloads are the implied zeros).
    pub req: BusRequest,
    /// Bus expecting the [`SlaveReply`].
    pub bus: ComponentId,
    /// Absolute time the reply must arrive at the bus.
    pub reply_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_req() -> BusRequest {
        BusRequest {
            id: 1,
            master: 0,
            op: BusOp::Read,
            addr: 0x100,
            burst: 4,
            data: vec![],
            priority: 0,
        }
    }

    #[test]
    fn valid_read_and_write_pass() {
        assert!(read_req().validate().is_ok());
        let w = BusRequest {
            op: BusOp::Write,
            burst: 2,
            data: vec![5, 6],
            ..read_req()
        };
        assert!(w.validate().is_ok());
    }

    #[test]
    fn zero_burst_rejected() {
        let r = BusRequest {
            burst: 0,
            ..read_req()
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn read_with_payload_rejected() {
        let r = BusRequest {
            data: vec![1],
            ..read_req()
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn write_burst_mismatch_rejected() {
        let w = BusRequest {
            op: BusOp::Write,
            burst: 3,
            data: vec![1, 2],
            ..read_req()
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn response_status_helpers() {
        let ok = BusResponse {
            id: 1,
            op: BusOp::Read,
            addr: 0,
            status: BusStatus::Ok,
            data: vec![0],
        };
        assert!(ok.is_ok());
        let bad = BusResponse {
            status: BusStatus::DecodeError,
            ..ok.clone()
        };
        assert!(!bad.is_ok());
    }
}
