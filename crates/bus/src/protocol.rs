//! Bus transaction records.
//!
//! These are the message payloads exchanged between masters, the shared
//! bus, and slaves. They correspond to the interface-method calls of the
//! paper's `bus_mst_if`/`bus_slv_if`: a blocking `read`/`write` call in
//! SystemC becomes a `BusRequest` → `BusResponse` split transaction here,
//! with the requesting master holding a kernel *obligation* in between (so
//! a never-answered call is a detectable deadlock, not silent quiescence).

use drcf_kernel::prelude::ComponentId;

/// Bus address, in word units (the whole workspace addresses memory at
/// word granularity, matching the `sc_uint<ADDW>` addresses of the paper's
/// listings).
pub type Addr = u64;
/// Bus data word.
pub type Word = u64;
/// Transaction identifier, unique per master port.
pub type TxnId = u64;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// Transfer from slave to master.
    Read,
    /// Transfer from master to slave.
    Write,
}

/// Completion status of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusStatus {
    /// Completed normally.
    Ok,
    /// No slave claimed the address.
    DecodeError,
    /// The slave rejected the access.
    SlaveError,
}

/// A master's request, sent to the bus component.
#[derive(Debug, Clone)]
pub struct BusRequest {
    /// Transaction id (chosen by the master port).
    pub id: TxnId,
    /// Component to deliver the [`BusResponse`] to.
    pub master: ComponentId,
    /// Operation.
    pub op: BusOp,
    /// Start address.
    pub addr: Addr,
    /// Number of words transferred (burst length, >= 1).
    pub burst: usize,
    /// Write payload (`burst` words) — empty for reads.
    pub data: Vec<Word>,
    /// Arbitration priority (higher wins under the priority arbiter).
    pub priority: u8,
}

impl BusRequest {
    /// Validate internal consistency (burst/data agreement).
    pub fn validate(&self) -> Result<(), String> {
        if self.burst == 0 {
            return Err("burst length must be >= 1".into());
        }
        match self.op {
            BusOp::Read => {
                if !self.data.is_empty() {
                    return Err("read request must not carry data".into());
                }
            }
            BusOp::Write => {
                if self.data.len() != self.burst {
                    return Err(format!(
                        "write burst {} does not match payload length {}",
                        self.burst,
                        self.data.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The bus's answer to a master, delivered when the transaction completes.
#[derive(Debug, Clone)]
pub struct BusResponse {
    /// Transaction id from the request.
    pub id: TxnId,
    /// Operation of the original request.
    pub op: BusOp,
    /// Start address of the original request.
    pub addr: Addr,
    /// Completion status.
    pub status: BusStatus,
    /// Read payload — empty for writes and failed reads.
    pub data: Vec<Word>,
}

impl BusResponse {
    /// True when the transaction completed normally.
    pub fn is_ok(&self) -> bool {
        self.status == BusStatus::Ok
    }
}

/// Bus → slave: an access that has completed its address (and, for writes,
/// data) phase on the bus and is now the slave's to process.
#[derive(Debug, Clone)]
pub struct SlaveAccess {
    /// The transaction, as the bus decoded it.
    pub req: BusRequest,
    /// The bus component expecting the [`SlaveReply`].
    pub bus: ComponentId,
}

/// Slave → bus: the processed result.
#[derive(Debug, Clone)]
pub struct SlaveReply {
    /// The completed (or failed) transaction.
    pub resp: BusResponse,
    /// Master the response must ultimately be routed to.
    pub master: ComponentId,
}

/// Memory → requester on a *direct* (non-bus) port; see
/// [`crate::memory::Memory`]. Used for dedicated configuration-memory ports
/// in the paper's memory-organization study.
#[derive(Debug, Clone)]
pub struct DirectReadReq {
    /// Who to notify on completion.
    pub requester: ComponentId,
    /// Start address.
    pub addr: Addr,
    /// Words to read.
    pub words: usize,
    /// Caller-chosen tag echoed in the reply.
    pub tag: u64,
}

/// Completion of a [`DirectReadReq`]; data content is not carried (direct
/// ports are used for configuration streaming where only timing matters).
#[derive(Debug, Clone)]
pub struct DirectReadDone {
    /// Tag from the request.
    pub tag: u64,
    /// Words transferred.
    pub words: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_req() -> BusRequest {
        BusRequest {
            id: 1,
            master: 0,
            op: BusOp::Read,
            addr: 0x100,
            burst: 4,
            data: vec![],
            priority: 0,
        }
    }

    #[test]
    fn valid_read_and_write_pass() {
        assert!(read_req().validate().is_ok());
        let w = BusRequest {
            op: BusOp::Write,
            burst: 2,
            data: vec![5, 6],
            ..read_req()
        };
        assert!(w.validate().is_ok());
    }

    #[test]
    fn zero_burst_rejected() {
        let r = BusRequest {
            burst: 0,
            ..read_req()
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn read_with_payload_rejected() {
        let r = BusRequest {
            data: vec![1],
            ..read_req()
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn write_burst_mismatch_rejected() {
        let w = BusRequest {
            op: BusOp::Write,
            burst: 3,
            data: vec![1, 2],
            ..read_req()
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn response_status_helpers() {
        let ok = BusResponse {
            id: 1,
            op: BusOp::Read,
            addr: 0,
            status: BusStatus::Ok,
            data: vec![0],
        };
        assert!(ok.is_ok());
        let bad = BusResponse {
            status: BusStatus::DecodeError,
            ..ok.clone()
        };
        assert!(!bad.is_ok());
    }
}
