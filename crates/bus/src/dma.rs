//! DMA controller.
//!
//! Moves blocks of words from a source to a destination address by
//! mastering the bus with burst transactions, like the DMA controllers in
//! both of the paper's reference architectures (Fig. 1) and MorphoSys's
//! context/frame transfer engine. Programmable two ways:
//!
//! * over the bus, through four registers (SRC, DST, LEN, CTRL) — how a CPU
//!   model kicks off a transfer;
//! * by a direct [`DmaProgram`] message — how another component (e.g. a
//!   testbench) requests a transfer.
//!
//! On completion the programmer receives a [`DmaDone`].

use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

use crate::interfaces::MasterPort;
use crate::protocol::{Addr, BusOp, BusResponse, SlaveAccess, SlaveReply, Word};
use crate::snapshot::{words_json, words_of};

/// Register offsets from the DMA's base address.
pub mod regs {
    /// Source address register.
    pub const SRC: u64 = 0;
    /// Destination address register.
    pub const DST: u64 = 1;
    /// Length (words) register.
    pub const LEN: u64 = 2;
    /// Control/status: write 1 to start (poll CTRL for DONE), write
    /// [`super::ctrl::START_IRQ`] to start with a completion notification
    /// ([`super::DmaDone`]) sent to the programming master. Reads back
    /// 0 = idle, 1 = busy, 2 = done.
    pub const CTRL: u64 = 3;
}

/// CTRL write commands.
pub mod ctrl {
    /// Start; completion is observed by polling CTRL.
    pub const START: u64 = 1;
    /// Start; completion additionally raises a `DmaDone` message to the
    /// master that wrote the register (interrupt-style).
    pub const START_IRQ: u64 = 3;
}

/// Status codes readable from the CTRL register.
pub mod status {
    /// No transfer programmed.
    pub const IDLE: u64 = 0;
    /// Transfer in progress.
    pub const BUSY: u64 = 1;
    /// Last transfer completed.
    pub const DONE: u64 = 2;
}

/// Direct programming message.
#[derive(Debug, Clone)]
pub struct DmaProgram {
    /// Source start address.
    pub src: Addr,
    /// Destination start address.
    pub dst: Addr,
    /// Words to move.
    pub words: u64,
    /// Component to notify on completion.
    pub notify: ComponentId,
    /// Tag echoed in the completion message.
    pub tag: u64,
}

/// Completion notification.
#[derive(Debug, Clone, Copy)]
pub struct DmaDone {
    /// Tag from the program.
    pub tag: u64,
    /// Words moved.
    pub words: u64,
}

/// Self-re-arming transfer request: run `program`, then re-run it until
/// `count` transfers have completed, idling `period` between a completion
/// and the next start. Models a recurring bursty master (a descriptor-ring
/// DMA draining a periodic source) without an external driver component;
/// each repetition raises its own [`DmaDone`].
#[derive(Debug, Clone)]
pub struct DmaAutoRepeat {
    /// The transfer to repeat.
    pub program: DmaProgram,
    /// Idle gap between a completion and the next start.
    pub period: SimDuration,
    /// Total number of transfers (0 is ignored).
    pub count: u64,
}

/// DMA parameters.
#[derive(Debug, Clone)]
pub struct DmaConfig {
    /// Register block base address.
    pub base: Addr,
    /// Largest burst per bus transaction.
    pub max_burst: usize,
    /// Bus priority of DMA transactions.
    pub priority: u8,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            base: 0xD000,
            max_burst: 16,
            priority: 2,
        }
    }
}

enum State {
    Idle,
    /// A read burst is in flight.
    Reading,
    /// A write burst is in flight.
    Writing,
}

/// Armed auto-repeat state.
struct AutoRepeat {
    program: DmaProgram,
    period: SimDuration,
    /// Transfers not yet started.
    left: u64,
}

/// Timer tag: start the next auto-repeat transfer.
const TAG_AUTO_NEXT: u64 = 1;

/// The DMA controller component.
pub struct Dma {
    cfg: DmaConfig,
    regs: [Word; 4],
    port: MasterPort,
    state: State,
    remaining: u64,
    cur_src: Addr,
    cur_dst: Addr,
    notify: Option<(ComponentId, u64)>,
    auto: Option<AutoRepeat>,
    /// Total words moved across all transfers.
    pub words_moved: u64,
    /// Completed transfers.
    pub transfers: u64,
}

impl Dma {
    /// New controller mastering `bus`.
    pub fn new(cfg: DmaConfig, bus: ComponentId) -> Self {
        let priority = cfg.priority;
        Dma {
            cfg,
            regs: [0; 4],
            port: MasterPort::new(bus, priority),
            state: State::Idle,
            remaining: 0,
            cur_src: 0,
            cur_dst: 0,
            notify: None,
            auto: None,
            words_moved: 0,
            transfers: 0,
        }
    }

    /// Register block base.
    pub fn base(&self) -> Addr {
        self.cfg.base
    }

    /// Register block top (inclusive).
    pub fn high(&self) -> Addr {
        self.cfg.base + 3
    }

    fn start(&mut self, api: &mut Api<'_>, src: Addr, dst: Addr, words: u64) {
        if words == 0 {
            self.regs[regs::CTRL as usize] = status::DONE;
            self.finish(api);
            return;
        }
        self.remaining = words;
        self.cur_src = src;
        self.cur_dst = dst;
        self.regs[regs::CTRL as usize] = status::BUSY;
        self.issue_read(api);
    }

    fn issue_read(&mut self, api: &mut Api<'_>) {
        let burst = (self.remaining as usize).min(self.cfg.max_burst);
        self.port.read(api, self.cur_src, burst);
        self.state = State::Reading;
    }

    fn finish(&mut self, api: &mut Api<'_>) {
        self.state = State::Idle;
        self.transfers += 1;
        if let Some((target, tag)) = self.notify.take() {
            let words = self.regs[regs::LEN as usize];
            api.send(target, DmaDone { tag, words }, Delay::Delta);
        }
        match &self.auto {
            Some(a) if a.left > 0 => api.timer_in(a.period, TAG_AUTO_NEXT),
            Some(_) => self.auto = None,
            None => {}
        }
    }

    /// Start the next transfer of an armed auto-repeat sequence.
    fn start_auto(&mut self, api: &mut Api<'_>) {
        let Some(a) = self.auto.as_mut() else {
            return;
        };
        a.left -= 1;
        let p = a.program.clone();
        self.notify = Some((p.notify, p.tag));
        self.regs[regs::SRC as usize] = p.src;
        self.regs[regs::DST as usize] = p.dst;
        self.regs[regs::LEN as usize] = p.words;
        self.start(api, p.src, p.dst, p.words);
    }

    fn on_response(&mut self, api: &mut Api<'_>, resp: BusResponse) {
        if !resp.is_ok() {
            api.raise(
                SimErrorKind::BusError,
                format!(
                    "DMA transaction failed at {:#x}: {:?}",
                    resp.addr, resp.status
                ),
            );
            self.regs[regs::CTRL as usize] = status::IDLE;
            self.finish(api);
            return;
        }
        match self.state {
            State::Reading => {
                let n = resp.data.len() as u64;
                let dst = self.cur_dst;
                self.port.write(api, dst, resp.data);
                self.cur_src += n;
                self.cur_dst += n;
                self.remaining -= n;
                self.words_moved += n;
                self.state = State::Writing;
            }
            State::Writing => {
                if self.remaining > 0 {
                    self.issue_read(api);
                } else {
                    self.regs[regs::CTRL as usize] = status::DONE;
                    self.finish(api);
                }
            }
            State::Idle => {
                api.log(Severity::Warning, "DMA response while idle".to_string());
            }
        }
    }

    fn on_slave_access(&mut self, api: &mut Api<'_>, access: SlaveAccess) {
        use crate::protocol::{BusRequest, BusStatus};
        let req: &BusRequest = &access.req;
        let mut status_code = BusStatus::Ok;
        let mut data = Vec::new();
        let off = req.addr.wrapping_sub(self.cfg.base);
        if off > 3 || req.burst != 1 {
            status_code = BusStatus::SlaveError;
        } else {
            match req.op {
                BusOp::Read => data.push(self.regs[off as usize]),
                BusOp::Write => {
                    // The bus validates burst/payload agreement, but a
                    // directly-addressed access may not be well-formed.
                    let v = req.data.first().copied().unwrap_or(0);
                    self.regs[off as usize] = v;
                    if off == regs::CTRL && v != 0 && matches!(self.state, State::Idle) {
                        if v == ctrl::START_IRQ {
                            // Interrupt-style completion to the programmer.
                            self.notify = Some((req.master, 0));
                        }
                        let (src, dst, len) = (
                            self.regs[regs::SRC as usize],
                            self.regs[regs::DST as usize],
                            self.regs[regs::LEN as usize],
                        );
                        self.start(api, src, dst, len);
                    }
                }
            }
        }
        let resp = BusResponse {
            id: req.id,
            op: req.op,
            addr: req.addr,
            status: status_code,
            data,
        };
        // Register access takes one bus-clock-ish cycle; modeled as 10 ns.
        api.send_in(
            access.bus,
            SlaveReply {
                resp,
                master: access.req.master,
            },
            SimDuration::ns(10),
        );
    }
}

impl Component for Dma {
    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("regs", words_json(&self.regs))
            .with("port", self.port.snapshot_json())
            .with(
                "state",
                Json::from(match self.state {
                    State::Idle => "idle",
                    State::Reading => "reading",
                    State::Writing => "writing",
                }),
            )
            .with("remaining", ju64(self.remaining))
            .with("cur_src", ju64(self.cur_src))
            .with("cur_dst", ju64(self.cur_dst))
            .with(
                "notify",
                match self.notify {
                    Some((target, tag)) => Json::Arr(vec![ju64(target as u64), ju64(tag)]),
                    None => Json::Null,
                },
            )
            .with(
                "auto",
                match &self.auto {
                    Some(a) => Json::obj()
                        .with("src", ju64(a.program.src))
                        .with("dst", ju64(a.program.dst))
                        .with("words", ju64(a.program.words))
                        .with("notify", ju64(a.program.notify as u64))
                        .with("tag", ju64(a.program.tag))
                        .with("period", ju64(a.period.as_fs()))
                        .with("left", ju64(a.left)),
                    None => Json::Null,
                },
            )
            .with("words_moved", ju64(self.words_moved))
            .with("transfers", ju64(self.transfers)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        let regs = words_of(snap::field(state, "regs")?)
            .filter(|r| r.len() == 4)
            .ok_or_else(|| snap::err("DMA registers malformed"))?;
        self.regs.copy_from_slice(&regs);
        self.port.restore_json(snap::field(state, "port")?)?;
        self.state = match snap::str_field(state, "state")? {
            "idle" => State::Idle,
            "reading" => State::Reading,
            "writing" => State::Writing,
            other => return Err(snap::err(format!("unknown DMA state {other:?}"))),
        };
        self.remaining = snap::u64_field(state, "remaining")?;
        self.cur_src = snap::u64_field(state, "cur_src")?;
        self.cur_dst = snap::u64_field(state, "cur_dst")?;
        self.notify = match snap::field(state, "notify")? {
            Json::Null => None,
            j => {
                let pair = j.as_arr().filter(|p| p.len() == 2);
                let (target, tag) = pair
                    .and_then(|p| {
                        Some((
                            drcf_kernel::json::ju64_of(&p[0])?,
                            drcf_kernel::json::ju64_of(&p[1])?,
                        ))
                    })
                    .ok_or_else(|| snap::err("malformed DMA notify entry"))?;
                Some((target as ComponentId, tag))
            }
        };
        self.auto = match snap::field(state, "auto")? {
            Json::Null => None,
            a => Some(AutoRepeat {
                program: DmaProgram {
                    src: snap::u64_field(a, "src")?,
                    dst: snap::u64_field(a, "dst")?,
                    words: snap::u64_field(a, "words")?,
                    notify: snap::usize_field(a, "notify")?,
                    tag: snap::u64_field(a, "tag")?,
                },
                period: SimDuration::fs(snap::u64_field(a, "period")?),
                left: snap::u64_field(a, "left")?,
            }),
        };
        self.words_moved = snap::u64_field(state, "words_moved")?;
        self.transfers = snap::u64_field(state, "transfers")?;
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        if matches!(msg.kind, MsgKind::Timer(TAG_AUTO_NEXT)) {
            self.start_auto(api);
            return;
        }
        let msg = match self.port.take_response(api, msg) {
            Ok(resp) => {
                self.on_response(api, resp);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.user::<SlaveAccess>() {
            Ok(access) => {
                self.on_slave_access(api, access);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.user::<DmaProgram>() {
            Ok(prog) => {
                if matches!(self.state, State::Idle) {
                    self.notify = Some((prog.notify, prog.tag));
                    self.regs[regs::SRC as usize] = prog.src;
                    self.regs[regs::DST as usize] = prog.dst;
                    self.regs[regs::LEN as usize] = prog.words;
                    self.start(api, prog.src, prog.dst, prog.words);
                } else {
                    api.log(
                        Severity::Warning,
                        "DMA program rejected: controller busy".to_string(),
                    );
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(auto) = msg.user::<DmaAutoRepeat>() {
            if auto.count == 0 {
                return;
            }
            if !matches!(self.state, State::Idle) || self.auto.is_some() {
                api.log(
                    Severity::Warning,
                    "DMA auto-repeat rejected: controller busy".to_string(),
                );
                return;
            }
            self.auto = Some(AutoRepeat {
                program: auto.program,
                period: auto.period,
                left: auto.count,
            });
            self.start_auto(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Bus, BusConfig};
    use crate::map::AddressMap;
    use crate::memory::{Memory, MemoryConfig};
    use drcf_kernel::testing::ok;

    /// Build: driver(0) -> bus(1); memory(2) holds both src and dst
    /// regions; dma(3).
    fn build() -> Simulator {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0000, 0x0FFF, 2)); // memory
        ok(map.add(0xD000, 0xD003, 3)); // DMA registers
        sim.add(
            "driver",
            FnComponent::new(move |api, msg| match &msg.kind {
                MsgKind::Start => {
                    api.send(
                        3,
                        DmaProgram {
                            src: 0x000,
                            dst: 0x800,
                            words: 40,
                            notify: 0,
                            tag: 5,
                        },
                        Delay::Delta,
                    );
                    api.obligation_begin();
                }
                _ => {
                    if msg.user_ref::<DmaDone>().is_some() {
                        api.obligation_end();
                    }
                }
            }),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        let mut mem = Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        });
        for i in 0..40 {
            mem.poke(i, 1000 + i);
        }
        sim.add("mem", mem);
        sim.add("dma", Dma::new(DmaConfig::default(), 1));
        sim
    }

    #[test]
    fn dma_copies_a_block() {
        let mut sim = build();
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let mem = sim.get::<Memory>(2);
        for i in 0..40u64 {
            assert_eq!(mem.peek(0x800 + i), Some(1000 + i), "word {i}");
        }
        let dma = sim.get::<Dma>(3);
        assert_eq!(dma.words_moved, 40);
        assert_eq!(dma.transfers, 1);
        // 40 words at max_burst 16 -> bursts of 16,16,8 -> 3 reads + 3 writes.
        assert_eq!(dma.port.issued, 6);
        assert_eq!(dma.port.completed, 6);
    }

    #[test]
    fn dma_programmable_via_registers() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0000, 0x0FFF, 2));
        ok(map.add(0xD000, 0xD003, 3));
        // A register-programming master: writes SRC/DST/LEN/CTRL then polls
        // CTRL until DONE.
        struct Prog {
            port: MasterPort,
            step: usize,
            pub done_seen: bool,
        }
        impl Component for Prog {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match &msg.kind {
                    MsgKind::Start => {
                        self.port.write(api, 0xD000 + regs::SRC, vec![0x10]);
                    }
                    _ => {
                        if let Ok(resp) = self.port.take_response(api, msg) {
                            assert!(resp.is_ok());
                            self.step += 1;
                            match self.step {
                                1 => {
                                    self.port.write(api, 0xD000 + regs::DST, vec![0x400]);
                                }
                                2 => {
                                    self.port.write(api, 0xD000 + regs::LEN, vec![8]);
                                }
                                3 => {
                                    self.port.write(api, 0xD000 + regs::CTRL, vec![1]);
                                }
                                _ => {
                                    // Poll status.
                                    if resp.op == BusOp::Read && resp.data == vec![status::DONE] {
                                        self.done_seen = true;
                                    } else {
                                        self.port.read(api, 0xD000 + regs::CTRL, 1);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        sim.add(
            "prog",
            Prog {
                port: MasterPort::new(1, 0),
                step: 0,
                done_seen: false,
            },
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        let mut mem = Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        });
        for i in 0..8 {
            mem.poke(0x10 + i, 7 + i);
        }
        sim.add("mem", mem);
        sim.add("dma", Dma::new(DmaConfig::default(), 1));
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert!(sim.get::<Prog>(0).done_seen, "CTRL never read back DONE");
        let mem = sim.get::<Memory>(2);
        for i in 0..8u64 {
            assert_eq!(mem.peek(0x400 + i), Some(7 + i));
        }
    }

    #[test]
    fn auto_repeat_runs_count_transfers_with_gaps() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0000, 0x0FFF, 2));
        ok(map.add(0xD000, 0xD003, 3));
        let times = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let t2 = times.clone();
        sim.add(
            "driver",
            FnComponent::new(move |api, msg| match &msg.kind {
                MsgKind::Start => {
                    api.send(
                        3,
                        DmaAutoRepeat {
                            program: DmaProgram {
                                src: 0x000,
                                dst: 0x800,
                                words: 8,
                                notify: 0,
                                tag: 9,
                            },
                            period: SimDuration::us(1),
                            count: 3,
                        },
                        Delay::Delta,
                    );
                }
                _ => {
                    if let Some(d) = msg.user_ref::<DmaDone>() {
                        assert_eq!(d.tag, 9);
                        t2.borrow_mut().push(api.now());
                    }
                }
            }),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "mem",
            Memory::new(MemoryConfig {
                size_words: 0x1000,
                ..MemoryConfig::default()
            }),
        );
        sim.add("dma", Dma::new(DmaConfig::default(), 1));
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let dma = sim.get::<Dma>(3);
        assert_eq!(dma.transfers, 3);
        assert_eq!(dma.words_moved, 24);
        let times = times.borrow();
        assert_eq!(times.len(), 3);
        // Each repetition starts one period after the previous completion.
        assert!(times[1].since(times[0]) >= SimDuration::us(1));
        assert!(times[2].since(times[1]) >= SimDuration::us(1));
    }

    #[test]
    fn zero_length_transfer_completes_immediately() {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        ok(map.add(0x0000, 0x0FFF, 2));
        ok(map.add(0xD000, 0xD003, 3));
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        let d2 = done.clone();
        sim.add(
            "driver",
            FnComponent::new(move |api, msg| match &msg.kind {
                MsgKind::Start => {
                    api.obligation_begin();
                    api.send(
                        3,
                        DmaProgram {
                            src: 0,
                            dst: 0,
                            words: 0,
                            notify: 0,
                            tag: 1,
                        },
                        Delay::Delta,
                    );
                }
                _ => {
                    if msg.user_ref::<DmaDone>().is_some() {
                        d2.set(true);
                        api.obligation_end();
                    }
                }
            }),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add("mem", Memory::new(MemoryConfig::default()));
        sim.add("dma", Dma::new(DmaConfig::default(), 1));
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert!(done.get());
        assert_eq!(sim.get::<Dma>(3).words_moved, 0);
    }
}
