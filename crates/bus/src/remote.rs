//! Remote bridge stubs: [`BusBridge`](crate::bridge::BusBridge) split in
//! half across a shard boundary.
//!
//! When the partitioner cuts a system at a bus bridge, the bridge's two
//! roles land in different logical processes: the *upstream* LP keeps a
//! slave that claims the bridge's address window, and the *downstream* LP
//! keeps a master that replays forwarded transactions on the remote bus.
//! [`BridgeUpstream`] and [`BridgeDownstream`] are those halves. They talk
//! over a pair of shard links ([`drcf_kernel::shard`]) carrying
//! [`LinkMsg`] envelopes:
//!
//! - **request link** (upstream → downstream), lookahead
//!   [`BridgeConfig::min_latency`] — the forward latency the monolithic
//!   bridge pays with its forwarding timer;
//! - **response link** (downstream → upstream), lookahead
//!   [`BridgeConfig::return_latency`] — the return latency the monolithic
//!   bridge pays when replying upstream.
//!
//! Each forwarded transaction is keyed by a *correlation id* assigned in
//! issue order by the upstream half (the envelope's `tag`); the payload
//! words carry the request or response verbatim. Because the shard
//! executor stamps every envelope with its send time and a per-link
//! sequence number and merges them deterministically, a cut bridge delays
//! every transaction by exactly the cycles the monolithic bridge charges —
//! cross-shard transport is free, the declared latencies are the
//! lookahead.
//!
//! The upstream half holds a kernel *obligation* for every transaction in
//! flight across the cut, so an LP that goes quiescent while waiting on a
//! remote response defers its deadlock verdict to the coordinator's
//! global re-check instead of failing locally.

use drcf_kernel::json::{ju64, ju64_of, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

use crate::bridge::BridgeConfig;
use crate::interfaces::MasterPort;
use crate::protocol::{BusOp, BusRequest, BusResponse, BusStatus, SlaveAccess, SlaveReply, TxnId};

/// Encode a decoded bus request into link payload words:
/// `[op, addr, burst, priority, data...]`. The transaction id and master
/// are *not* shipped — the upstream stub keeps them, keyed by the
/// envelope's correlation tag.
pub fn encode_request(req: &BusRequest) -> Vec<u64> {
    let mut words = Vec::with_capacity(4 + req.data.len());
    words.push(match req.op {
        BusOp::Read => 0,
        BusOp::Write => 1,
    });
    words.push(req.addr);
    words.push(req.burst as u64);
    words.push(u64::from(req.priority));
    words.extend_from_slice(&req.data);
    words
}

/// Decode link payload words back into the forwarded request. The caller
/// supplies the local transaction id and master (the downstream stub's
/// port identity). Returns `None` on a malformed envelope.
pub fn decode_request(words: &[u64]) -> Option<(BusOp, u64, usize, Vec<u64>)> {
    let (&op, rest) = words.split_first()?;
    let (&addr, rest) = rest.split_first()?;
    let (&burst, rest) = rest.split_first()?;
    let (_priority, data) = rest.split_first()?;
    let op = match op {
        0 => BusOp::Read,
        1 => BusOp::Write,
        _ => return None,
    };
    Some((op, addr, usize::try_from(burst).ok()?, data.to_vec()))
}

/// Encode a downstream response into link payload words:
/// `[status, op, addr, data...]`.
pub fn encode_response(resp: &BusResponse) -> Vec<u64> {
    let mut words = Vec::with_capacity(3 + resp.data.len());
    words.push(match resp.status {
        BusStatus::Ok => 0,
        BusStatus::DecodeError => 1,
        BusStatus::SlaveError => 2,
    });
    words.push(match resp.op {
        BusOp::Read => 0,
        BusOp::Write => 1,
    });
    words.push(resp.addr);
    words.extend_from_slice(&resp.data);
    words
}

/// Decode link payload words into `(status, op, addr, data)`. Returns
/// `None` on a malformed envelope.
pub fn decode_response(words: &[u64]) -> Option<(BusStatus, BusOp, u64, Vec<u64>)> {
    let (&status, rest) = words.split_first()?;
    let (&op, rest) = rest.split_first()?;
    let (&addr, data) = rest.split_first()?;
    let status = match status {
        0 => BusStatus::Ok,
        1 => BusStatus::DecodeError,
        2 => BusStatus::SlaveError,
        _ => return None,
    };
    let op = match op {
        0 => BusOp::Read,
        1 => BusOp::Write,
        _ => return None,
    };
    Some((status, op, addr, data.to_vec()))
}

/// A transaction the upstream half has forwarded and not yet answered.
struct Crossing {
    corr: u64,
    upstream_txn: TxnId,
    upstream_master: ComponentId,
    upstream_bus: ComponentId,
}

/// Upstream half of a cut bridge: a bus slave claiming the bridge's
/// remote address window. Forwards each [`SlaveAccess`] over the request
/// link and answers the originating bus when the matching response
/// envelope returns.
pub struct BridgeUpstream {
    tx: Option<LinkTx>,
    next_corr: u64,
    crossing: Vec<Crossing>,
    /// Transactions forwarded across the cut.
    pub forwarded: u64,
    /// Responses returned upstream.
    pub returned: u64,
    /// Payload words shipped on the request link.
    pub forwarded_words: u64,
    /// Payload words received on the response link.
    pub returned_words: u64,
}

impl BridgeUpstream {
    /// New upstream half. Call [`LinkEndpoint::attach_tx`] with the
    /// request link's handle before adding it to the simulator.
    pub fn new() -> Self {
        crate::snapshot::register_bus_codecs();
        BridgeUpstream {
            tx: None,
            next_corr: 0,
            crossing: Vec::new(),
            forwarded: 0,
            returned: 0,
            forwarded_words: 0,
            returned_words: 0,
        }
    }

    /// Transactions currently crossing the cut.
    pub fn outstanding(&self) -> usize {
        self.crossing.len()
    }

    fn on_access(&mut self, api: &mut Api<'_>, access: SlaveAccess) {
        let Some(tx) = self.tx else {
            api.raise(
                SimErrorKind::Internal,
                "bridge upstream stub has no request link attached",
            );
            return;
        };
        let corr = self.next_corr;
        self.next_corr += 1;
        self.crossing.push(Crossing {
            corr,
            upstream_txn: access.req.id,
            upstream_master: access.req.master,
            upstream_bus: access.bus,
        });
        // The response may be many windows away; hold an obligation so a
        // locally-quiescent LP defers its deadlock verdict to the
        // coordinator instead of failing while the transaction is remote.
        api.obligation_begin();
        let words = encode_request(&access.req);
        self.forwarded_words += words.len() as u64;
        tx.send(api, LinkMsg { tag: corr, words });
        self.forwarded += 1;
    }

    fn on_response(&mut self, api: &mut Api<'_>, pkt: LinkPacket) {
        let Some(pos) = self.crossing.iter().position(|c| c.corr == pkt.msg.tag) else {
            api.raise(
                SimErrorKind::Internal,
                format!(
                    "bridge upstream stub got unknown correlation {}",
                    pkt.msg.tag
                ),
            );
            return;
        };
        let c = self.crossing.remove(pos);
        self.returned_words += pkt.msg.words.len() as u64;
        let Some((status, op, addr, data)) = decode_response(&pkt.msg.words) else {
            api.raise(
                SimErrorKind::Decode,
                "bridge upstream stub got a malformed response envelope",
            );
            return;
        };
        api.obligation_end();
        api.send(
            c.upstream_bus,
            SlaveReply {
                resp: BusResponse {
                    id: c.upstream_txn,
                    op,
                    addr,
                    status,
                    data,
                },
                master: c.upstream_master,
            },
            Delay::Delta,
        );
        self.returned += 1;
    }
}

impl Default for BridgeUpstream {
    fn default() -> Self {
        BridgeUpstream::new()
    }
}

impl Component for BridgeUpstream {
    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("next_corr", ju64(self.next_corr))
            .with(
                "crossing",
                Json::Arr(
                    self.crossing
                        .iter()
                        .map(|c| {
                            Json::obj()
                                .with("corr", ju64(c.corr))
                                .with("upstream_txn", ju64(c.upstream_txn))
                                .with("upstream_master", ju64(c.upstream_master as u64))
                                .with("upstream_bus", ju64(c.upstream_bus as u64))
                        })
                        .collect(),
                ),
            )
            .with("forwarded", ju64(self.forwarded))
            .with("returned", ju64(self.returned))
            .with("forwarded_words", ju64(self.forwarded_words))
            .with("returned_words", ju64(self.returned_words)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.next_corr = snap::u64_field(state, "next_corr")?;
        self.crossing.clear();
        for c in snap::arr_field(state, "crossing")? {
            self.crossing.push(Crossing {
                corr: snap::u64_field(c, "corr")?,
                upstream_txn: snap::u64_field(c, "upstream_txn")?,
                upstream_master: snap::usize_field(c, "upstream_master")?,
                upstream_bus: snap::usize_field(c, "upstream_bus")?,
            });
        }
        self.forwarded = snap::u64_field(state, "forwarded")?;
        self.returned = snap::u64_field(state, "returned")?;
        self.forwarded_words = snap::u64_field(state, "forwarded_words")?;
        self.returned_words = snap::u64_field(state, "returned_words")?;
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => {}
            _ => match msg.user::<SlaveAccess>() {
                Ok(access) => self.on_access(api, access),
                Err(msg) => {
                    if let Ok(pkt) = msg.user::<LinkPacket>() {
                        self.on_response(api, pkt);
                    }
                }
            },
        }
    }
}

impl LinkEndpoint for BridgeUpstream {
    fn attach_tx(&mut self, tx: LinkTx) {
        self.tx = Some(tx);
    }
}

/// Downstream half of a cut bridge: a master on the remote bus. Replays
/// each request envelope through its [`MasterPort`] (at the bridge's
/// configured priority) and ships the bus response back over the response
/// link.
pub struct BridgeDownstream {
    port: MasterPort,
    tx: Option<LinkTx>,
    /// `(downstream transaction, correlation id)` for replayed requests.
    in_flight: Vec<(TxnId, u64)>,
    /// Requests replayed on the downstream bus.
    pub replayed: u64,
    /// Responses shipped back across the cut.
    pub returned: u64,
    /// Payload words received on the request link.
    pub replayed_words: u64,
    /// Payload words shipped on the response link.
    pub returned_words: u64,
}

impl BridgeDownstream {
    /// New downstream half mastering `downstream_bus` at the bridge's
    /// priority. Call [`LinkEndpoint::attach_tx`] with the response link's
    /// handle before adding it to the simulator.
    pub fn new(cfg: &BridgeConfig, downstream_bus: ComponentId) -> Self {
        BridgeDownstream {
            port: MasterPort::new(downstream_bus, cfg.priority),
            tx: None,
            in_flight: Vec::new(),
            replayed: 0,
            returned: 0,
            replayed_words: 0,
            returned_words: 0,
        }
    }

    /// Transactions outstanding on the downstream bus.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    fn on_request(&mut self, api: &mut Api<'_>, pkt: LinkPacket) {
        self.replayed_words += pkt.msg.words.len() as u64;
        let Some((op, addr, burst, data)) = decode_request(&pkt.msg.words) else {
            api.raise(
                SimErrorKind::Decode,
                "bridge downstream stub got a malformed request envelope",
            );
            return;
        };
        let txn = match op {
            BusOp::Read => self.port.read(api, addr, burst),
            BusOp::Write => self.port.write(api, addr, data),
        };
        self.in_flight.push((txn, pkt.msg.tag));
        self.replayed += 1;
    }

    fn on_local_response(&mut self, api: &mut Api<'_>, resp: BusResponse) {
        let Some(pos) = self.in_flight.iter().position(|&(txn, _)| txn == resp.id) else {
            api.raise(
                SimErrorKind::Internal,
                "bridge downstream stub got a response for an unknown transaction",
            );
            return;
        };
        let (_, corr) = self.in_flight.remove(pos);
        let Some(tx) = self.tx else {
            api.raise(
                SimErrorKind::Internal,
                "bridge downstream stub has no response link attached",
            );
            return;
        };
        let words = encode_response(&resp);
        self.returned_words += words.len() as u64;
        tx.send(api, LinkMsg { tag: corr, words });
        self.returned += 1;
    }
}

impl Component for BridgeDownstream {
    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("port", self.port.snapshot_json())
            .with(
                "in_flight",
                Json::Arr(
                    self.in_flight
                        .iter()
                        .map(|&(txn, corr)| Json::Arr(vec![ju64(txn), ju64(corr)]))
                        .collect(),
                ),
            )
            .with("replayed", ju64(self.replayed))
            .with("returned", ju64(self.returned))
            .with("replayed_words", ju64(self.replayed_words))
            .with("returned_words", ju64(self.returned_words)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.port.restore_json(snap::field(state, "port")?)?;
        self.in_flight.clear();
        for pair in snap::arr_field(state, "in_flight")? {
            let items = pair
                .as_arr()
                .ok_or_else(|| snap::err("malformed in-flight pair"))?;
            let txn = items
                .first()
                .and_then(ju64_of)
                .ok_or_else(|| snap::err("malformed in-flight txn"))?;
            let corr = items
                .get(1)
                .and_then(ju64_of)
                .ok_or_else(|| snap::err("malformed in-flight corr"))?;
            self.in_flight.push((txn, corr));
        }
        self.replayed = snap::u64_field(state, "replayed")?;
        self.returned = snap::u64_field(state, "returned")?;
        self.replayed_words = snap::u64_field(state, "replayed_words")?;
        self.returned_words = snap::u64_field(state, "returned_words")?;
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => {}
            _ => {
                let msg = match self.port.take_response(api, msg) {
                    Ok(resp) => {
                        self.on_local_response(api, resp);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok(pkt) = msg.user::<LinkPacket>() {
                    self.on_request(api, pkt);
                }
            }
        }
    }
}

impl LinkEndpoint for BridgeDownstream {
    fn attach_tx(&mut self, tx: LinkTx) {
        self.tx = Some(tx);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn request_envelope_roundtrip() {
        let req = BusRequest {
            id: 42,
            master: 7,
            op: BusOp::Write,
            addr: 0x1_0040,
            burst: 3,
            data: vec![1, 2, 3],
            priority: 5,
        };
        let words = encode_request(&req);
        let (op, addr, burst, data) = decode_request(&words).unwrap();
        assert_eq!(op, BusOp::Write);
        assert_eq!(addr, 0x1_0040);
        assert_eq!(burst, 3);
        assert_eq!(data, vec![1, 2, 3]);
        // Reads carry no payload but still decode.
        let read = BusRequest {
            op: BusOp::Read,
            data: vec![],
            ..req
        };
        let words = encode_request(&read);
        let (op, _, burst, data) = decode_request(&words).unwrap();
        assert_eq!(op, BusOp::Read);
        assert_eq!(burst, 3);
        assert!(data.is_empty());
    }

    #[test]
    fn response_envelope_roundtrip() {
        for status in [BusStatus::Ok, BusStatus::DecodeError, BusStatus::SlaveError] {
            let resp = BusResponse {
                id: 9,
                op: BusOp::Read,
                addr: 0x8000,
                status,
                data: vec![0xDEAD, 0xBEEF],
            };
            let (s, op, addr, data) = decode_response(&encode_response(&resp)).unwrap();
            assert_eq!(s, status);
            assert_eq!(op, BusOp::Read);
            assert_eq!(addr, 0x8000);
            assert_eq!(data, vec![0xDEAD, 0xBEEF]);
        }
    }

    #[test]
    fn malformed_envelopes_are_rejected() {
        assert!(decode_request(&[]).is_none());
        assert!(decode_request(&[9, 0, 1, 0]).is_none(), "bad opcode");
        assert!(decode_response(&[7, 0, 0]).is_none(), "bad status");
        assert!(decode_response(&[0, 9, 0]).is_none(), "bad opcode");
        assert!(decode_response(&[0, 0]).is_none(), "truncated");
    }
}
