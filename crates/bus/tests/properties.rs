//! Property tests for the bus substrate: decode correctness, arbitration
//! fairness, request/response conservation, and end-to-end data integrity
//! through the full bus + memory stack.

use drcf_bus::prelude::*;
use drcf_kernel::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------- decode

proptest! {
    /// Non-overlapping ranges decode every inside address to the right
    /// slave and miss everywhere else.
    #[test]
    fn address_map_decode(bounds in proptest::collection::vec(1u64..50, 1..8)) {
        // Build adjacent-but-disjoint ranges with 1-word gaps.
        let mut map = AddressMap::new();
        let mut lows = Vec::new();
        let mut cursor = 0u64;
        for (i, len) in bounds.iter().enumerate() {
            let low = cursor;
            let high = low + len - 1;
            map.add(low, high, i + 100).unwrap();
            lows.push((low, high, i + 100));
            cursor = high + 2; // leave a gap at high+1
        }
        for &(low, high, slave) in &lows {
            prop_assert_eq!(map.decode(low), Some(slave));
            prop_assert_eq!(map.decode(high), Some(slave));
            prop_assert_eq!(map.decode(high + 1), None, "gap must miss");
            prop_assert_eq!(map.decode_burst(low, (high - low + 1) as usize), Some(slave));
            prop_assert_eq!(map.decode_burst(low, (high - low + 2) as usize), None);
        }
    }

    /// Any range overlapping an existing one is rejected and leaves the map
    /// unchanged.
    #[test]
    fn address_map_overlap_rejection(lo in 0u64..100, len in 1u64..50,
                                     olo in 0u64..150, olen in 1u64..50) {
        let mut map = AddressMap::new();
        map.add(lo, lo + len - 1, 1).unwrap();
        let result = map.add(olo, olo + olen - 1, 2);
        let overlaps = olo < lo + len && lo < olo + olen;
        prop_assert_eq!(result.is_err(), overlaps);
        prop_assert_eq!(map.len(), if overlaps { 1 } else { 2 });
    }

    /// Round-robin grants every always-pending master within one full
    /// rotation (starvation freedom).
    #[test]
    fn round_robin_starvation_freedom(n_masters in 2usize..6, rounds in 10u64..60) {
        let mut arb = drcf_bus::arbiter::RoundRobinArbiter::default();
        let candidates: Vec<Candidate> = (0..n_masters)
            .map(|m| Candidate { master: m, priority: 0, arrival: m as u64, is_response: false })
            .collect();
        let mut since_grant = vec![0u64; n_masters];
        for _ in 0..rounds {
            let w = arb.pick(SimTime::ZERO, &candidates).unwrap();
            for (i, s) in since_grant.iter_mut().enumerate() {
                if i == w { *s = 0 } else { *s += 1 }
            }
            prop_assert!(since_grant.iter().all(|&s| s < n_masters as u64),
                "a master waited a full rotation: {since_grant:?}");
        }
    }
}

// ------------------------------------------------- full-stack conservation

/// Master that issues a random program of reads and writes with bounded
/// outstanding transactions.
struct RandomMaster {
    port: MasterPort,
    program: Vec<(bool, Addr, u64)>, // (is_write, addr, value_or_burst)
    pc: usize,
    window: usize,
    pub reads_back: Vec<(Addr, Word)>,
}

impl RandomMaster {
    fn pump(&mut self, api: &mut Api<'_>) {
        while self.pc < self.program.len() && self.port.outstanding() < self.window {
            let (is_write, addr, v) = self.program[self.pc];
            self.pc += 1;
            if is_write {
                self.port.write(api, addr, vec![v]);
            } else {
                self.port.read(api, addr, 1);
            }
        }
    }
}

impl Component for RandomMaster {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match &msg.kind {
            MsgKind::Start => self.pump(api),
            _ => {
                if let Ok(resp) = self.port.take_response(api, msg) {
                    assert!(resp.is_ok(), "unexpected bus error: {resp:?}");
                    if resp.op == BusOp::Read {
                        self.reads_back.push((resp.addr, resp.data[0]));
                    }
                    self.pump(api);
                }
            }
        }
    }
}

fn run_stack(
    mode: BusMode,
    arbiter: ArbiterKind,
    programs: Vec<Vec<(bool, Addr, u64)>>,
    window: usize,
) -> (Simulator, Vec<ComponentId>, ComponentId) {
    let mut sim = Simulator::new();
    let n = programs.len();
    let bus_id = n; // masters are 0..n, bus is n, memory n+1
    let mut map = AddressMap::new();
    map.add(0x0, 0xFFF, n + 1).unwrap();
    let mut master_ids = Vec::new();
    for p in programs {
        let id = sim.add(
            "master",
            RandomMaster {
                port: MasterPort::new(bus_id, 1),
                program: p,
                pc: 0,
                window,
                reads_back: vec![],
            },
        );
        master_ids.push(id);
    }
    sim.add(
        "bus",
        Bus::new(
            BusConfig {
                mode,
                arbiter,
                ..BusConfig::default()
            },
            map,
        ),
    );
    sim.add(
        "mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    (sim, master_ids, bus_id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every issued transaction completes exactly once, in both bus modes,
    /// under both plain arbiters, with multiple masters. The bus never
    /// deadlocks when slaves are pure slaves.
    #[test]
    fn conservation_of_transactions(
        progs in proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 0u64..0x800, 0u64..1000), 1..20),
            1..4),
        mode_split in any::<bool>(),
        rr in any::<bool>(),
        window in 1usize..4,
    ) {
        let mode = if mode_split { BusMode::Split } else { BusMode::Blocking };
        let arb = if rr { ArbiterKind::RoundRobin } else { ArbiterKind::Priority };
        let totals: Vec<usize> = progs.iter().map(Vec::len).collect();
        let (mut sim, masters, bus) = run_stack(mode, arb, progs, window);
        prop_assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let mut req_total = 0;
        for (id, want) in masters.iter().zip(&totals) {
            let m = sim.get::<RandomMaster>(*id);
            prop_assert_eq!(m.port.issued as usize, *want);
            prop_assert_eq!(m.port.completed as usize, *want);
            prop_assert_eq!(m.port.outstanding(), 0);
            prop_assert_eq!(m.port.errors, 0);
            req_total += want;
        }
        let b = sim.get::<Bus>(bus);
        prop_assert_eq!(b.stats.requests as usize, req_total);
        prop_assert_eq!(b.stats.responses as usize, req_total);
        prop_assert_eq!(b.stats.decode_errors, 0);
    }

    /// Single-master read-your-writes through the full stack: a read after
    /// a write to the same address returns the written value (the master
    /// serializes with window=1).
    #[test]
    fn read_your_writes(ops in proptest::collection::vec((0u64..32, 0u64..1000), 1..24)) {
        // program: write v to addr, then read addr back immediately.
        let mut program = Vec::new();
        for &(addr, v) in &ops {
            program.push((true, addr, v));
            program.push((false, addr, 0));
        }
        let (mut sim, masters, _) =
            run_stack(BusMode::Split, ArbiterKind::Priority, vec![program], 1);
        prop_assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.get::<RandomMaster>(masters[0]);
        // Each read observes the latest write to that address at that point:
        // replay the oracle.
        let mut shadow = std::collections::HashMap::new();
        let mut reads = m.reads_back.iter();
        for &(addr, v) in &ops {
            shadow.insert(addr, v);
            let &(got_addr, got_v) = reads.next().expect("one read per op");
            prop_assert_eq!(got_addr, addr);
            prop_assert_eq!(got_v, shadow[&addr]);
        }
    }

    /// Split mode never finishes later than blocking mode for the same
    /// multi-master workload (it can only overlap more).
    #[test]
    fn split_no_slower_than_blocking(
        progs in proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 0u64..0x100, 0u64..10), 1..10),
            2..4),
    ) {
        let t = |mode| {
            let (mut sim, _, _) =
                run_stack(mode, ArbiterKind::Priority, progs.clone(), 2);
            assert_eq!(sim.run(), Ok(StopReason::Quiescent));
            sim.now().as_fs()
        };
        prop_assert!(t(BusMode::Split) <= t(BusMode::Blocking));
    }
}
