//! Full-stack DRCF tests: master → bus → fabric, with configuration data
//! streaming from a real memory. Includes the reproduction of the paper's
//! §5.4 limitation 3 — the blocking-bus deadlock — and the functional
//! equivalence between a DRCF and the standalone accelerators it replaces.

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_kernel::prelude::*;

/// A master that performs a scripted sequence of single-word accesses,
/// issuing the next only after the previous response (like a blocking
/// SystemC thread).
struct ScriptedMaster {
    port: MasterPort,
    script: Vec<(BusOp, Addr, Word)>,
    pc: usize,
    pub replies: Vec<(SimTime, BusResponse)>,
}

impl ScriptedMaster {
    fn new(bus: ComponentId, script: Vec<(BusOp, Addr, Word)>) -> Self {
        ScriptedMaster {
            port: MasterPort::new(bus, 1),
            script,
            pc: 0,
            replies: vec![],
        }
    }

    fn next(&mut self, api: &mut Api<'_>) {
        if let Some(&(op, addr, v)) = self.script.get(self.pc) {
            self.pc += 1;
            match op {
                BusOp::Read => {
                    self.port.read(api, addr, 1);
                }
                BusOp::Write => {
                    self.port.write(api, addr, vec![v]);
                }
            }
        }
    }
}

impl Component for ScriptedMaster {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match &msg.kind {
            MsgKind::Start => self.next(api),
            _ => {
                if let Ok(r) = self.port.take_response(api, msg) {
                    self.replies.push((api.now(), r));
                    self.next(api);
                }
            }
        }
    }
}

/// Two accelerators folded into a DRCF whose configuration lives in the
/// system memory and loads over the system bus.
///
/// Component ids: 0 master, 1 bus, 2 memory, 3 drcf.
fn build_system(bus_mode: BusMode, script: Vec<(BusOp, Addr, Word)>) -> Simulator {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 2).unwrap(); // memory (config images live here)
    map.add(0x2000, 0x20FF, 3).unwrap(); // DRCF interface range

    sim.add("cpu", ScriptedMaster::new(1, script));
    sim.add(
        "bus",
        Bus::new(
            BusConfig {
                mode: bus_mode,
                ..BusConfig::default()
            },
            map,
        ),
    );
    sim.add(
        "mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    let contexts = vec![
        Context::new(
            Box::new(RegisterFile::new("hwa_a", 0x2000, 16, 2)),
            ContextParams {
                config_addr: 0x100,
                config_size_words: 64,
                ..ContextParams::default()
            },
        ),
        Context::new(
            Box::new(RegisterFile::new("hwa_b", 0x2080, 16, 2)),
            ContextParams {
                config_addr: 0x140,
                config_size_words: 64,
                ..ContextParams::default()
            },
        ),
    ];
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::SystemBus {
                    bus: 1,
                    priority: 3,
                    burst: 16,
                },
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: false,
            },
            contexts,
        ),
    );
    sim
}

#[test]
fn drcf_over_split_bus_works_end_to_end() {
    let mut sim = build_system(
        BusMode::Split,
        vec![
            (BusOp::Write, 0x2000, 11), // context A: miss, load over bus
            (BusOp::Read, 0x2000, 0),   // hit
            (BusOp::Write, 0x2080, 22), // context B: miss, switch
            (BusOp::Read, 0x2080, 0),
            (BusOp::Read, 0x2000, 0), // back to A: switch again
        ],
    );
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let m = sim.get::<ScriptedMaster>(0);
    assert_eq!(m.replies.len(), 5);
    assert!(m.replies.iter().all(|(_, r)| r.is_ok()));
    assert_eq!(m.replies[1].1.data, vec![11]);
    assert_eq!(m.replies[3].1.data, vec![22]);
    assert_eq!(m.replies[4].1.data, vec![11], "state survives eviction");

    let f = sim.get::<Drcf>(3);
    assert_eq!(f.stats.switches, 3);
    assert_eq!(f.stats.hits, 2);
    assert_eq!(f.stats.misses, 3);
    assert_eq!(f.stats.config_words, 3 * 64);
    assert!(f.stats.invariant_holds(sim.now()));

    // The configuration traffic really crossed the bus and hit the memory.
    let mem = sim.get::<Memory>(2);
    assert_eq!(mem.stats.words_read, 3 * 64);
    let port = f.config_port().expect("system-bus path");
    assert_eq!(port.issued, 3 * (64 / 16)); // 4 bursts of 16 per load
    assert_eq!(port.completed, port.issued);

    let bus = sim.get::<Bus>(1);
    // 5 CPU transactions + 12 config bursts.
    assert_eq!(bus.stats.requests, 5 + 12);
}

/// §5.4 limitation 3, reproduced:
///
/// > "If this is not the case, a data transfer to a component in DRCF
/// >  would block the bus until the transfer is completed and the DRCF
/// >  could not load a new context, since the bus is already blocked.
/// >  This results in deadlock of the bus."
#[test]
fn blocking_bus_deadlocks_on_context_load() {
    let mut sim = build_system(BusMode::Blocking, vec![(BusOp::Write, 0x2000, 1)]);
    let err = sim.run().expect_err("blocking bus must deadlock");
    assert!(err.is_deadlock(), "expected deadlock, got {err}");
    // CPU's transaction + the DRCF's stuck config read.
    let pending = err.pending_obligations().unwrap_or(0);
    assert!(pending >= 2, "pending = {pending}");
    // And the fix the paper prescribes — split transactions — resolves it
    // with an otherwise identical system:
    let mut fixed = build_system(BusMode::Split, vec![(BusOp::Write, 0x2000, 1)]);
    assert_eq!(fixed.run(), Ok(StopReason::Quiescent));
}

/// Dedicated configuration port (memory organization study): loads bypass
/// the system bus entirely.
#[test]
fn direct_config_port_generates_no_bus_traffic() {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 2).unwrap();
    map.add(0x2000, 0x20FF, 3).unwrap();
    sim.add(
        "cpu",
        ScriptedMaster::new(1, vec![(BusOp::Write, 0x2000, 5), (BusOp::Read, 0x2000, 0)]),
    );
    sim.add("bus", Bus::new(BusConfig::default(), map));
    sim.add(
        "cfgmem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            dual_port: true,
            ..MemoryConfig::default()
        }),
    );
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::DirectPort { memory: 2 },
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: false,
            },
            vec![Context::new(
                Box::new(RegisterFile::new("hwa", 0x2000, 16, 2)),
                ContextParams {
                    config_addr: 0x100,
                    config_size_words: 128,
                    ..ContextParams::default()
                },
            )],
        ),
    );
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let m = sim.get::<ScriptedMaster>(0);
    assert_eq!(m.replies.len(), 2);
    assert_eq!(m.replies[1].1.data, vec![5]);
    let bus = sim.get::<Bus>(1);
    assert_eq!(bus.stats.requests, 2, "only the CPU's own transactions");
    let mem = sim.get::<Memory>(2);
    assert_eq!(mem.stats.direct_words, 128);
    let f = sim.get::<Drcf>(3);
    assert_eq!(f.stats.config_words, 128);
}

/// The same access script produces identical functional results whether the
/// accelerators are standalone bus slaves or DRCF contexts (the §5.2
/// transformation's behavior-preservation claim, full-stack version).
#[test]
fn functional_equivalence_standalone_vs_drcf() {
    let script = vec![
        (BusOp::Write, 0x2000, 7),
        (BusOp::Write, 0x2081, 9),
        (BusOp::Read, 0x2000, 0),
        (BusOp::Write, 0x2002, 13),
        (BusOp::Read, 0x2081, 0),
        (BusOp::Read, 0x2002, 0),
    ];

    // Architecture (a): two standalone accelerators.
    let standalone: Vec<Vec<Word>> = {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        map.add(0x2000, 0x200F, 2).unwrap();
        map.add(0x2080, 0x208F, 3).unwrap();
        sim.add("cpu", ScriptedMaster::new(1, script.clone()));
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "hwa_a",
            SlaveAdapter::new(RegisterFile::new("hwa_a", 0x2000, 16, 2), 100),
        );
        sim.add(
            "hwa_b",
            SlaveAdapter::new(RegisterFile::new("hwa_b", 0x2080, 16, 2), 100),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        sim.get::<ScriptedMaster>(0)
            .replies
            .iter()
            .map(|(_, r)| r.data.clone())
            .collect()
    };

    // Architecture (b): the same models folded into a DRCF.
    let drcf: Vec<Vec<Word>> = {
        let mut sim = build_system(BusMode::Split, script);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        sim.get::<ScriptedMaster>(0)
            .replies
            .iter()
            .map(|(_, r)| r.data.clone())
            .collect()
    };

    assert_eq!(standalone, drcf, "bus-visible data must be identical");
}

/// Stateful contexts over the real bus: save bursts (writes) and restore
/// bursts (reads) interleave correctly with the configuration stream and
/// the data lands in memory without deadlock.
#[test]
fn stateful_context_over_system_bus() {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 2).unwrap();
    map.add(0x2000, 0x20FF, 3).unwrap();
    sim.add(
        "cpu",
        ScriptedMaster::new(
            1,
            vec![
                (BusOp::Write, 0x2000, 1), // A: first load (no restore)
                (BusOp::Write, 0x2080, 2), // B: evicts A -> saves A's state
                (BusOp::Read, 0x2000, 0),  // A again: image + restore
            ],
        ),
    );
    sim.add("bus", Bus::new(BusConfig::default(), map));
    sim.add(
        "mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    let ctx_a = Context::new(
        Box::new(RegisterFile::new("hwa_a", 0x2000, 16, 2)),
        ContextParams {
            config_addr: 0x100,
            config_size_words: 64,
            state_words: 48,
            state_addr: 0x400,
            ..ContextParams::default()
        },
    );
    ctx_a.params.validate().unwrap();
    let ctx_b = Context::new(
        Box::new(RegisterFile::new("hwa_b", 0x2080, 16, 2)),
        ContextParams {
            config_addr: 0x140,
            config_size_words: 64,
            ..ContextParams::default()
        },
    );
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::SystemBus {
                    bus: 1,
                    priority: 3,
                    burst: 16,
                },
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: false,
            },
            vec![ctx_a, ctx_b],
        ),
    );
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let m = sim.get::<ScriptedMaster>(0);
    assert_eq!(m.replies.len(), 3);
    assert!(m.replies.iter().all(|(_, r)| r.is_ok()));
    assert_eq!(m.replies[2].1.data, vec![1], "functional state preserved");
    let f = sim.get::<Drcf>(3);
    assert_eq!(f.stats.switches, 3);
    assert_eq!(f.stats.config_words, 3 * 64);
    assert_eq!(f.stats.state_words, 48 + 48, "one save + one restore");
    let mem = sim.get::<Memory>(2);
    assert_eq!(mem.stats.writes, 3, "3 save bursts of 16 words");
    assert_eq!(mem.stats.words_written, 48);
}

/// Reconfiguration takes longer when the context image is larger — the
/// first-order relationship every DSE sweep builds on.
#[test]
fn larger_contexts_cost_proportionally_more() {
    let t = |words: u64| {
        let mut sim = Simulator::new();
        let mut map = AddressMap::new();
        map.add(0x0000, 0x3FFF, 2).unwrap();
        map.add(0x8000, 0x80FF, 3).unwrap();
        sim.add(
            "cpu",
            ScriptedMaster::new(1, vec![(BusOp::Write, 0x8000, 1)]),
        );
        sim.add("bus", Bus::new(BusConfig::default(), map));
        sim.add(
            "mem",
            Memory::new(MemoryConfig {
                size_words: 0x4000,
                ..MemoryConfig::default()
            }),
        );
        sim.add(
            "drcf",
            Drcf::new(
                DrcfConfig {
                    clock_mhz: 100,
                    config_path: ConfigPath::SystemBus {
                        bus: 1,
                        priority: 3,
                        burst: 16,
                    },
                    scheduler: SchedulerConfig::default(),
                    overlap_load_exec: false,
                    abort_load_of: vec![],
                    coalesce_config_traffic: false,
                },
                vec![Context::new(
                    Box::new(RegisterFile::new("hwa", 0x8000, 16, 2)),
                    ContextParams {
                        config_addr: 0x0,
                        config_size_words: words,
                        ..ContextParams::default()
                    },
                )],
            ),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        sim.now().as_fs()
    };
    let t256 = t(256);
    let t1024 = t(1024);
    let t4096 = t(4096);
    assert!(t256 < t1024 && t1024 < t4096);
    // Past fixed costs, makespan grows roughly linearly with image size.
    let growth = (t4096 - t1024) as f64 / (t1024 - t256) as f64;
    assert!(
        (3.0..=5.0).contains(&growth),
        "expected ~4x growth, got {growth}"
    );
}
