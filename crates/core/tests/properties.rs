//! Property tests for the DRCF: functional equivalence with a shadow
//! oracle under random thrash, accounting consistency, and scheduler
//! occupancy invariants.

use std::collections::HashMap;

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_kernel::prelude::*;
use drcf_kernel::testing::ok;
use proptest::prelude::*;

/// Driver that sends raw SlaveAccess messages straight to the DRCF at
/// scheduled times and records replies (the bus is not under test here).
struct Driver {
    drcf: ComponentId,
    sends: Vec<(u64, u64, bool, u64)>, // (at_ns, addr, is_write, value)
    next_id: u64,
    pub replies: Vec<BusResponse>,
}

impl Component for Driver {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match &msg.kind {
            MsgKind::Start => {
                for (i, &(at, _, _, _)) in self.sends.iter().enumerate() {
                    api.obligation_begin();
                    api.timer_in(SimDuration::ns(at), i as u64);
                }
            }
            MsgKind::Timer(i) => {
                let (_, addr, is_write, value) = self.sends[*i as usize];
                self.next_id += 1;
                let req = BusRequest {
                    id: self.next_id,
                    master: api.me(),
                    op: if is_write { BusOp::Write } else { BusOp::Read },
                    addr,
                    burst: 1,
                    data: if is_write { vec![value] } else { vec![] },
                    priority: 0,
                };
                let me = api.me();
                let drcf = self.drcf;
                api.send(drcf, SlaveAccess { req, bus: me }, Delay::Delta);
            }
            _ => {
                if let Ok(reply) = msg.user::<SlaveReply>() {
                    self.replies.push(reply.resp);
                    api.obligation_end();
                }
            }
        }
    }
}

fn build_fabric(n_contexts: usize, slots: usize, sizes: &[u64]) -> Drcf {
    let contexts = (0..n_contexts)
        .map(|i| {
            Context::new(
                Box::new(RegisterFile::new("ctx", 0x1000 * (i as u64 + 1), 8, 1)),
                ContextParams {
                    config_addr: 0x100 + 0x100 * i as u64,
                    config_size_words: sizes[i % sizes.len()].max(1),
                    ..ContextParams::default()
                },
            )
        })
        .collect();
    Drcf::new(
        DrcfConfig {
            clock_mhz: 100,
            config_path: ConfigPath::FixedRate {
                words_per_cycle: 4,
                clock_mhz: 100,
            },
            scheduler: SchedulerConfig {
                slots,
                ..SchedulerConfig::default()
            },
            overlap_load_exec: false,
            abort_load_of: vec![],
            coalesce_config_traffic: false,
        },
        contexts,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any access pattern, the fabric returns exactly what a shadow
    /// register-file oracle predicts, replies to every access, and its
    /// accounting stays consistent.
    #[test]
    fn fabric_matches_shadow_oracle(
        n_contexts in 2usize..5,
        slots in 1usize..3,
        ops in proptest::collection::vec(
            (0u64..2000, 0usize..5, 0u64..8, any::<bool>(), 1u64..1000), 1..40),
    ) {
        // Build the schedule: ops sorted by time for oracle replay.
        let mut sends: Vec<(u64, u64, bool, u64)> = ops
            .iter()
            .map(|&(at, c, off, is_write, v)| {
                let ctx = c % n_contexts;
                (at, 0x1000 * (ctx as u64 + 1) + off, is_write, v)
            })
            .collect();
        // Distinct times keep request ordering unambiguous for the oracle.
        sends.sort_by_key(|&(at, _, _, _)| at);
        for (i, s) in sends.iter_mut().enumerate() {
            s.0 = s.0 * 64 + i as u64; // unique, order-preserving
        }

        let mut sim = Simulator::new();
        sim.add(
            "driver",
            Driver {
                drcf: 1,
                sends: sends.clone(),
                next_id: 0,
                replies: vec![],
            },
        );
        let sizes = vec![32u64, 64, 16, 128];
        sim.add("drcf", build_fabric(n_contexts, slots, &sizes));
        prop_assert_eq!(sim.run(), Ok(StopReason::Quiescent));

        let driver = sim.get::<Driver>(0);
        prop_assert_eq!(driver.replies.len(), sends.len(), "every call answered");
        prop_assert!(driver.replies.iter().all(|r| r.is_ok()));

        // Shadow oracle: replies arrive in send order because the fabric
        // queue is FIFO and sends have distinct timestamps.
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        let mut reads = driver
            .replies
            .iter()
            .filter(|r| r.op == BusOp::Read);
        for &(_, addr, is_write, v) in &sends {
            if is_write {
                shadow.insert(addr, v);
            } else {
                let r = reads.next().expect("read reply present");
                prop_assert_eq!(r.addr, addr);
                prop_assert_eq!(r.data[0], *shadow.get(&addr).unwrap_or(&0));
            }
        }

        // Accounting.
        let f = sim.get::<Drcf>(1);
        prop_assert!(f.stats.invariant_holds(sim.now()));
        prop_assert_eq!(f.stats.hits + f.stats.misses, sends.len() as u64);
        let total_accesses: u64 = f.stats.per_context.iter().map(|c| c.accesses).sum();
        prop_assert_eq!(total_accesses, sends.len() as u64);
        // Every load streamed exactly its context's configured size.
        let expect_config: u64 = f
            .stats
            .per_context
            .iter()
            .enumerate()
            .map(|(i, c)| c.switches_in * sizes[i % sizes.len()].max(1))
            .sum();
        prop_assert_eq!(f.stats.config_words, expect_config);
        // Residency never exceeds the slot count.
        prop_assert!(f.resident_contexts().len() <= slots);
    }

    /// Scheduler occupancy model: driving the scheduler with random
    /// lookup/install/evict/use cycles never exceeds capacity and always
    /// keeps `free + occupied == slots`.
    #[test]
    fn scheduler_occupancy_invariant(
        slots in 1usize..6,
        needs in proptest::collection::vec(1usize..3, 2..6),
        seq in proptest::collection::vec(0usize..6, 1..60),
    ) {
        let n = needs.len();
        let mut s = ContextScheduler::new(
            SchedulerConfig {
                slots,
                ..SchedulerConfig::default()
            },
            needs.clone(),
        );
        let occupied = |s: &ContextScheduler, needs: &[usize]| -> usize {
            s.resident_set().iter().map(|&c| needs[c]).sum()
        };
        for &pick in &seq {
            let c = pick % n;
            match s.lookup(c, &[]) {
                Lookup::Resident => {
                    ok(s.note_use(c));
                }
                Lookup::Load { evict } => {
                    for v in evict {
                        prop_assert!(s.is_resident(v));
                        ok(s.evict(v));
                    }
                    ok(s.install(c, false));
                    ok(s.note_use(c));
                }
                Lookup::TooBig => {
                    prop_assert!(needs[c] > slots);
                    continue;
                }
                Lookup::NoRoom => {
                    prop_assert!(false, "NoRoom impossible without protected contexts");
                }
            }
            prop_assert!(s.is_resident(c));
            prop_assert_eq!(s.free_slots() + occupied(&s, &needs), slots);
        }
    }

    /// Prefetch prediction never proposes the current or an
    /// already-resident context.
    #[test]
    fn prefetch_never_predicts_resident(
        seq in proptest::collection::vec(0usize..4, 2..40),
    ) {
        let mut s = ContextScheduler::new(
            SchedulerConfig {
                slots: 2,
                prefetch: PrefetchPolicy::LastSuccessor,
                ..SchedulerConfig::default()
            },
            vec![1; 4],
        );
        for &c in &seq {
            match s.lookup(c, &[]) {
                Lookup::Resident => {
                    ok(s.note_use(c));
                }
                Lookup::Load { evict } => {
                    for v in evict {
                        ok(s.evict(v));
                    }
                    ok(s.install(c, false));
                    ok(s.note_use(c));
                }
                _ => unreachable!("4 unit contexts on 2 slots"),
            }
            if let Some(p) = s.predict_next(c) {
                prop_assert_ne!(p, c);
                prop_assert!(!s.is_resident(p));
            }
        }
    }
}
