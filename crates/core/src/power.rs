//! Power and energy extension.
//!
//! §5.3 closes with: "In the future, other parameter, such as dealing with
//! partial reconfiguration or power consumption may be devised." This
//! module is that extension: a simple activity-based power model evaluated
//! against the fabric's accounting (active time per context, reconfiguration
//! time, configuration traffic).

use drcf_kernel::prelude::{SimDuration, SimTime};

use crate::context::ContextParams;
use crate::stats::FabricStats;

/// Technology-level power parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static (leakage + clock tree) power of the fabric, mW.
    pub static_mw: f64,
    /// Dynamic power per gate per MHz while a context is active, µW
    /// (the unit the paper quotes for VariCore: 0.075 µW/Gate/MHz).
    pub active_uw_per_gate_mhz: f64,
    /// Power drawn while reconfiguring, mW.
    pub reconfig_mw: f64,
    /// Energy per configuration word transferred, nJ.
    pub energy_per_config_word_nj: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            static_mw: 50.0,
            active_uw_per_gate_mhz: 0.1,
            reconfig_mw: 100.0,
            energy_per_config_word_nj: 1.0,
        }
    }
}

impl PowerModel {
    /// Dynamic power of `gates` active gates at `clock_mhz`, in mW.
    pub fn active_mw(&self, gates: u64, clock_mhz: u64) -> f64 {
        self.active_uw_per_gate_mhz * gates as f64 * clock_mhz as f64 / 1000.0
    }
}

/// Energy breakdown of one run, in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Static energy over the whole run.
    pub static_mj: f64,
    /// Dynamic execution energy, summed over contexts.
    pub active_mj: f64,
    /// Energy drawn during (blocking) reconfiguration periods.
    pub reconfig_mj: f64,
    /// Energy of the configuration-word transfers themselves.
    pub config_transfer_mj: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total_mj(&self) -> f64 {
        self.static_mj + self.active_mj + self.reconfig_mj + self.config_transfer_mj
    }

    /// Average power over `elapsed`, mW.
    pub fn average_mw(&self, elapsed: SimDuration) -> f64 {
        let s = elapsed.as_fs() as f64 / 1e15;
        if s == 0.0 {
            0.0
        } else {
            self.total_mj() / s
        }
    }
}

fn mj(mw: f64, d: SimDuration) -> f64 {
    // mW * s = mJ
    mw * (d.as_fs() as f64 / 1e15)
}

/// Evaluate the power model against a fabric's accumulated statistics.
///
/// `ctx_params[i]` must describe the same context `stats.per_context[i]`
/// counts, and `clock_mhz` is the fabric execution clock.
pub fn energy_of_run(
    stats: &FabricStats,
    ctx_params: &[ContextParams],
    model: &PowerModel,
    clock_mhz: u64,
    now: SimTime,
) -> EnergyReport {
    assert_eq!(
        stats.per_context.len(),
        ctx_params.len(),
        "stats/params length mismatch"
    );
    let elapsed = now.since(SimTime::ZERO);
    let mut report = EnergyReport {
        static_mj: mj(model.static_mw, elapsed),
        ..EnergyReport::default()
    };
    for (cs, p) in stats.per_context.iter().zip(ctx_params) {
        let p_mw = if p.active_power_mw > 0.0 {
            p.active_power_mw
        } else {
            model.active_mw(p.gate_count, clock_mhz)
        };
        report.active_mj += mj(p_mw, cs.active);
    }
    report.reconfig_mj = mj(
        model.reconfig_mw,
        stats.reconfig + stats.reconfig_overlapped,
    );
    report.config_transfer_mj =
        (stats.config_words + stats.state_words) as f64 * model.energy_per_config_word_nj / 1e6;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::prelude::SimDuration;

    #[test]
    fn active_mw_formula() {
        let m = PowerModel {
            active_uw_per_gate_mhz: 0.1,
            ..PowerModel::default()
        };
        // 0.1 µW/gate/MHz * 10_000 gates * 100 MHz = 100_000 µW = 100 mW.
        assert!((m.active_mw(10_000, 100) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_report_totals() {
        let r = EnergyReport {
            static_mj: 1.0,
            active_mj: 2.0,
            reconfig_mj: 0.5,
            config_transfer_mj: 0.25,
        };
        assert!((r.total_mj() - 3.75).abs() < 1e-12);
        // 3.75 mJ over 1 ms = 3750 mW.
        assert!((r.average_mw(SimDuration::ms(1)) - 3750.0).abs() < 1e-6);
        assert_eq!(EnergyReport::default().average_mw(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn energy_of_run_accounts_all_terms() {
        let mut stats = FabricStats::new(2);
        stats.per_context[0].active = SimDuration::ms(1);
        stats.per_context[1].active = SimDuration::ms(2);
        stats.reconfig = SimDuration::ms(1);
        stats.config_words = 1_000_000;
        let params = vec![
            ContextParams {
                active_power_mw: 100.0,
                ..ContextParams::default()
            },
            ContextParams {
                active_power_mw: 0.0, // falls back to the gate-based model
                gate_count: 10_000,
                ..ContextParams::default()
            },
        ];
        let model = PowerModel {
            static_mw: 10.0,
            active_uw_per_gate_mhz: 0.1,
            reconfig_mw: 200.0,
            energy_per_config_word_nj: 1.0,
        };
        let now = SimTime::ZERO + SimDuration::ms(10);
        let r = energy_of_run(&stats, &params, &model, 100, now);
        assert!((r.static_mj - 0.1).abs() < 1e-9, "10mW * 10ms");
        // ctx0: 100mW * 1ms = 0.1 mJ; ctx1: 100mW * 2ms = 0.2 mJ.
        assert!((r.active_mj - 0.3).abs() < 1e-9, "{}", r.active_mj);
        assert!((r.reconfig_mj - 0.2).abs() < 1e-9);
        assert!((r.config_transfer_mj - 1.0).abs() < 1e-9, "1M words * 1nJ");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_params_panics() {
        let stats = FabricStats::new(2);
        let _ = energy_of_run(
            &stats,
            &[ContextParams::default()],
            &PowerModel::default(),
            100,
            SimTime::ZERO,
        );
    }
}
