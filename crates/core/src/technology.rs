//! Reconfigurable-technology presets.
//!
//! Chapter 3 of the paper surveys three classes of (re)configurable
//! technology and concludes that "the different categories ... have very
//! different characteristics and therefore, a unified model of them at the
//! system-level is impossibility" — the methodology instead *parameterizes*
//! configuration-memory transfers and reconfiguration delays. These presets
//! derive those parameters from the figures the paper quotes:
//!
//! * **Xilinx Virtex-II Pro** — system-level FPGA, fine grain (1-bit),
//!   up to 638 K logic gates, SRAM-based, 18 Kbit dual-port BRAMs,
//!   multipliers at 200 MHz.
//! * **Actel VariCore** — embedded reprogrammable core, 0.18 µm, PEG blocks
//!   of 2 500 ASIC gates scaling to 40 K gates, clock up to 250 MHz, and
//!   0.075 µW/gate/MHz (≈ 240 mW at 100 MHz, 80 % utilization).
//! * **MorphoSys** — coarse-grained 8×8 cell array with 32 on-chip context
//!   words; inactive contexts reload while the array executes.
//!
//! Where the paper gives no direct number (per-gate configuration volume),
//! we use the published device families' orders of magnitude and document
//! them in EXPERIMENTS.md; the *relative* relationships (fine grain needs
//! orders of magnitude more configuration data per gate than coarse grain)
//! are what the reproduced experiments depend on.

use crate::power::PowerModel;

/// Processing-element granularity (paper §2, classification (c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// 1-bit LUT/flip-flop granularity (Virtex-style FPGA).
    Fine,
    /// Small-word datapaths.
    Medium,
    /// Word-level ALU arrays (MorphoSys-style).
    Coarse,
}

/// A reconfigurable implementation technology.
#[derive(Debug, Clone)]
pub struct Technology {
    /// Marketing name.
    pub name: &'static str,
    /// Granularity class.
    pub granularity: Granularity,
    /// Fabric execution clock, MHz.
    pub fabric_clock_mhz: u64,
    /// Configuration-port clock, MHz (rate at which configuration words can
    /// be consumed).
    pub config_clock_mhz: u64,
    /// Configuration volume per 1 000 equivalent gates, in 64-bit memory
    /// words.
    pub config_words_per_kgate: u64,
    /// Contexts the device can hold simultaneously (scheduler slots).
    pub on_chip_contexts: usize,
    /// Reconfiguration delay beyond the configuration transfer, in
    /// config-clock cycles (net settling, control overhead).
    pub extra_reconfig_cycles: u64,
    /// Largest supported context, in equivalent gates.
    pub max_context_gates: u64,
    /// Power model.
    pub power: PowerModel,
}

impl Technology {
    /// Configuration size of a context of `gates` equivalent gates, in
    /// 64-bit memory words.
    pub fn config_words_for(&self, gates: u64) -> u64 {
        (gates * self.config_words_per_kgate).div_ceil(1000).max(1)
    }

    /// Extra (non-transfer) reconfiguration delay.
    pub fn extra_delay(&self) -> drcf_kernel::prelude::SimDuration {
        drcf_kernel::prelude::SimDuration::cycles_at_mhz(
            self.extra_reconfig_cycles,
            self.config_clock_mhz,
        )
    }
}

/// Xilinx Virtex-II Pro: system-level FPGA, fine grained, SRAM based.
///
/// Fine-grained SRAM FPGAs need on the order of 50–100 configuration bits
/// per equivalent gate; we use 64 bits/gate = 1 word/gate = 1000 words per
/// kgate.
pub fn virtex2_pro() -> Technology {
    Technology {
        name: "Virtex-II Pro",
        granularity: Granularity::Fine,
        fabric_clock_mhz: 200, // paper: dedicated multipliers at 200 MHz pipelined
        config_clock_mhz: 50,  // SelectMAP-class configuration port
        config_words_per_kgate: 1000,
        on_chip_contexts: 1,
        extra_reconfig_cycles: 2000, // frame addressing / CRC overhead
        max_context_gates: 638_000,  // paper: up to 638K logic gates
        power: PowerModel {
            static_mw: 150.0,
            active_uw_per_gate_mhz: 0.12,
            reconfig_mw: 350.0,
            energy_per_config_word_nj: 4.0,
        },
    }
}

/// Actel VariCore EPGA: embedded reprogrammable block, 0.18 µm.
pub fn varicore() -> Technology {
    Technology {
        name: "VariCore EPGA",
        granularity: Granularity::Medium,
        fabric_clock_mhz: 250, // paper: clock speeds up to 250 MHz
        config_clock_mhz: 100,
        config_words_per_kgate: 400,
        on_chip_contexts: 1,
        extra_reconfig_cycles: 500,
        max_context_gates: 40_000, // paper: 2,500 to 40,000 ASIC gates (0.18µ)
        power: PowerModel {
            static_mw: 20.0,
            // Paper: 0.075 µW/Gate/MHz; 240 mW at 100 MHz / 80% utilization.
            active_uw_per_gate_mhz: 0.075,
            reconfig_mw: 120.0,
            energy_per_config_word_nj: 2.0,
        },
    }
}

/// MorphoSys: coarse-grained 8×8 reconfigurable cell array with a 32-deep
/// context memory; contexts reload in the background while the array runs.
pub fn morphosys() -> Technology {
    Technology {
        name: "MorphoSys",
        granularity: Granularity::Coarse,
        fabric_clock_mhz: 100,
        config_clock_mhz: 100,
        // A context is 8x8 cells x 32-bit context words = 256 bytes = 32
        // 64-bit words; normalized per kgate of mapped function.
        config_words_per_kgate: 8,
        on_chip_contexts: 32, // paper: 16 executing + 16 reloading banks
        extra_reconfig_cycles: 4,
        max_context_gates: 100_000,
        power: PowerModel {
            static_mw: 40.0,
            active_uw_per_gate_mhz: 0.05,
            reconfig_mw: 60.0,
            energy_per_config_word_nj: 0.5,
        },
    }
}

/// All presets, for sweep harnesses.
pub fn all_presets() -> Vec<Technology> {
    vec![virtex2_pro(), varicore(), morphosys()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_volume_ordering_by_granularity() {
        // For the same function size, fine grain needs far more
        // configuration data than coarse grain (the Chapter-3 claim the
        // technology comparison experiment depends on).
        let gates = 20_000;
        let fine = virtex2_pro().config_words_for(gates);
        let medium = varicore().config_words_for(gates);
        let coarse = morphosys().config_words_for(gates);
        assert!(
            fine > medium && medium > coarse,
            "{fine} > {medium} > {coarse}"
        );
        assert!(fine >= 100 * coarse, "orders of magnitude apart");
    }

    #[test]
    fn config_words_rounds_up_and_is_nonzero() {
        let t = morphosys();
        assert_eq!(t.config_words_for(0), 1, "floor of one word");
        assert_eq!(t.config_words_for(1000), 8);
        assert_eq!(t.config_words_for(1001), 9, "rounds up");
    }

    #[test]
    fn varicore_power_matches_paper_figure() {
        // 0.075 µW/gate/MHz at 100 MHz, 80% of 40K gates active:
        // 0.075e-6 W * 32000 gates * 100 MHz = 240 mW (paper's own number).
        let t = varicore();
        let mw = t.power.active_mw(32_000, 100);
        assert!((mw - 240.0).abs() < 1.0, "got {mw} mW");
    }

    #[test]
    fn morphosys_holds_many_contexts() {
        assert_eq!(morphosys().on_chip_contexts, 32);
        assert_eq!(virtex2_pro().on_chip_contexts, 1);
    }

    #[test]
    fn presets_have_distinct_names() {
        let names: Vec<&str> = all_presets().iter().map(|t| t.name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 3);
        assert_eq!(names, dedup);
    }
}
