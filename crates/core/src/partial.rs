//! Partial-reconfiguration planning.
//!
//! §5.3's future-work list names "dealing with partial reconfiguration" as
//! the next parameter to devise. The fabric already supports the mechanism
//! (multi-slot residency + background loading); this module supplies the
//! *policy* layer: dividing a fabric of a given technology into regions and
//! assigning each context the number of regions its area requires.

use crate::context::ContextParams;
use crate::technology::Technology;

/// Physical division of a fabric into reconfiguration regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricGeometry {
    /// Total fabric capacity, equivalent gates.
    pub total_gates: u64,
    /// Number of independently reconfigurable regions.
    pub regions: usize,
}

impl FabricGeometry {
    /// Geometry with `regions` equal regions over `total_gates`.
    pub fn new(total_gates: u64, regions: usize) -> Self {
        assert!(regions > 0, "need at least one region");
        assert!(total_gates > 0, "fabric must have area");
        FabricGeometry {
            total_gates,
            regions,
        }
    }

    /// Gates per region.
    pub fn gates_per_region(&self) -> u64 {
        self.total_gates / self.regions as u64
    }

    /// Regions a context of `gates` equivalent gates occupies.
    pub fn regions_for(&self, gates: u64) -> usize {
        let per = self.gates_per_region().max(1);
        (gates.div_ceil(per) as usize).max(1)
    }

    /// Can a context of `gates` gates fit at all?
    pub fn fits(&self, gates: u64) -> bool {
        self.regions_for(gates) <= self.regions
    }
}

/// Fill in geometry- and technology-derived fields of a context's
/// parameters: `slots_needed` from the region plan, `config_size_words`
/// and `extra_reconfig_delay` from the technology, scaled to the occupied
/// regions (partial reconfiguration loads only the affected regions).
pub fn plan_context(
    geometry: FabricGeometry,
    tech: &Technology,
    gates: u64,
    config_addr: u64,
) -> Result<ContextParams, String> {
    if !geometry.fits(gates) {
        return Err(format!(
            "context of {gates} gates does not fit a fabric of {} gates / {} regions",
            geometry.total_gates, geometry.regions
        ));
    }
    if gates > tech.max_context_gates {
        return Err(format!(
            "context of {gates} gates exceeds {}'s maximum of {}",
            tech.name, tech.max_context_gates
        ));
    }
    let slots_needed = geometry.regions_for(gates);
    // Partial reconfiguration: configuration volume covers the occupied
    // regions, not the whole device.
    let region_gates = geometry.gates_per_region() * slots_needed as u64;
    let config_size_words = tech.config_words_for(region_gates);
    Ok(ContextParams {
        config_addr,
        config_size_words,
        extra_reconfig_delay: tech.extra_delay(),
        gate_count: gates,
        slots_needed,
        active_power_mw: tech.power.active_mw(gates, tech.fabric_clock_mhz),
        // Contexts planned from pure area are stateless by default; callers
        // with stateful kernels set state_words/state_addr afterwards.
        state_words: 0,
        state_addr: 0,
    })
}

/// Plan a full context set, packing configuration images consecutively in
/// memory starting at `base_addr`. Returns the parameter vector, aligned
/// with the input order.
pub fn plan_contexts(
    geometry: FabricGeometry,
    tech: &Technology,
    gate_counts: &[u64],
    base_addr: u64,
) -> Result<Vec<ContextParams>, String> {
    let mut out = Vec::with_capacity(gate_counts.len());
    let mut addr = base_addr;
    for &g in gate_counts {
        let p = plan_context(geometry, tech, g, addr)?;
        addr += p.config_size_words;
        out.push(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::{morphosys, varicore, virtex2_pro};
    use drcf_kernel::testing::ok;

    #[test]
    fn region_math() {
        let g = FabricGeometry::new(40_000, 4);
        assert_eq!(g.gates_per_region(), 10_000);
        assert_eq!(g.regions_for(1), 1);
        assert_eq!(g.regions_for(10_000), 1);
        assert_eq!(g.regions_for(10_001), 2);
        assert_eq!(g.regions_for(40_000), 4);
        assert!(g.fits(40_000));
        assert!(!g.fits(40_001));
    }

    #[test]
    fn partial_loads_scale_with_regions() {
        let g = FabricGeometry::new(40_000, 4);
        let t = varicore();
        let small = ok(plan_context(g, &t, 5_000, 0));
        let large = ok(plan_context(g, &t, 35_000, 0));
        assert_eq!(small.slots_needed, 1);
        assert_eq!(large.slots_needed, 4);
        assert_eq!(
            large.config_size_words,
            4 * small.config_size_words,
            "4 regions cost 4x the configuration volume"
        );
    }

    #[test]
    fn oversized_context_rejected() {
        let g = FabricGeometry::new(10_000, 2);
        assert!(plan_context(g, &varicore(), 20_000, 0).is_err());
        // Fits the fabric but exceeds the technology maximum.
        let g2 = FabricGeometry::new(100_000, 1);
        assert!(plan_context(g2, &varicore(), 50_000, 0).is_err());
        assert!(plan_context(g2, &virtex2_pro(), 50_000, 0).is_ok());
    }

    #[test]
    fn plan_contexts_packs_addresses() {
        let g = FabricGeometry::new(80_000, 8);
        let t = morphosys();
        let plans = ok(plan_contexts(g, &t, &[10_000, 10_000, 20_000], 0x1000));
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].config_addr, 0x1000);
        assert_eq!(plans[1].config_addr, 0x1000 + plans[0].config_size_words);
        assert_eq!(
            plans[2].config_addr,
            plans[1].config_addr + plans[1].config_size_words
        );
        // No overlap between images.
        assert!(plans[1].config_addr >= plans[0].config_addr + plans[0].config_size_words);
    }

    #[test]
    fn power_defaults_derived_from_technology() {
        let g = FabricGeometry::new(40_000, 1);
        let t = varicore();
        let p = ok(plan_context(g, &t, 32_000, 0));
        // Paper figure: 0.075 µW/gate/MHz * 32K gates * 250MHz = 600 mW.
        assert!(
            (p.active_power_mw - 600.0).abs() < 1.0,
            "{}",
            p.active_power_mw
        );
    }
}
