//! DRCF instrumentation — §5.3 step 5:
//!
//! > "The scheduler will keep track of active time of each context as well
//! >  as the time that the DRCF is in reconfiguring itself."
//!
//! The accounting invariant — per-context active time + reconfiguration
//! time + idle time = elapsed time — is asserted in tests and exposed for
//! harnesses.

use drcf_kernel::json::{ju64, ju64_of, Json};
use drcf_kernel::prelude::{SimDuration, SimResult, SimTime};
use drcf_kernel::snapshot::{self as snap, Snapshotable};

use crate::context::ContextId;

/// What happened on the fabric at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEventKind {
    /// A context switch began (victim evictions already applied).
    SwitchStart,
    /// The context finished loading and became resident.
    SwitchDone,
    /// The context started executing a (previously suspended) access.
    ExecStart,
    /// The context was evicted.
    Evict,
}

/// One timeline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricEvent {
    /// When.
    pub at: SimTime,
    /// Which context.
    pub ctx: ContextId,
    /// What.
    pub kind: FabricEventKind,
}

/// Counters for one context.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Time this context spent actively processing accesses.
    pub active: SimDuration,
    /// Times this context was configured onto the fabric.
    pub switches_in: u64,
    /// Interface accesses served.
    pub accesses: u64,
    /// Configuration words loaded on behalf of this context.
    pub config_words: u64,
    /// Total time accesses to this context waited while it was being
    /// configured or while the fabric was busy elsewhere.
    pub wait: SimDuration,
}

/// Counters for a whole fabric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Per-context counters, indexed by `ContextId`.
    pub per_context: Vec<ContextStats>,
    /// Total time the fabric spent reconfiguring (§5.3 step 5). When
    /// loading overlaps execution (MorphoSys-style), this counts only the
    /// time reconfiguration *blocked* the fabric.
    pub reconfig: SimDuration,
    /// Reconfiguration time that overlapped useful execution (nonzero only
    /// with background loading enabled).
    pub reconfig_overlapped: SimDuration,
    /// Context switches performed.
    pub switches: u64,
    /// Configuration words transferred in total.
    pub config_words: u64,
    /// Context-state save/restore words transferred (stateful contexts).
    pub state_words: u64,
    /// Accesses that arrived for a context that was already active
    /// (§5.3 step 2 fast path).
    pub hits: u64,
    /// Accesses that required a context switch (§5.3 step 3).
    pub misses: u64,
    /// Prefetch loads issued (scheduling-policy extension).
    pub prefetches: u64,
    /// Prefetched loads that were used before eviction.
    pub prefetch_hits: u64,
    /// Chronological event log (switch/exec/evict), for timelines and
    /// post-mortem analysis.
    pub events: Vec<FabricEvent>,
}

impl FabricStats {
    /// Initialize for `n` contexts.
    pub fn new(n: usize) -> Self {
        FabricStats {
            per_context: vec![ContextStats::default(); n],
            ..FabricStats::default()
        }
    }

    /// Sum of per-context active time.
    pub fn total_active(&self) -> SimDuration {
        self.per_context
            .iter()
            .fold(SimDuration::ZERO, |acc, c| acc + c.active)
    }

    /// Idle time over `[0, now]` implied by the accounting invariant.
    pub fn idle(&self, now: SimTime) -> SimDuration {
        now.since(SimTime::ZERO)
            .saturating_sub(self.total_active() + self.reconfig)
    }

    /// Check the accounting invariant: active + reconfig <= elapsed
    /// (strict equality holds only for a fabric that is never idle).
    pub fn invariant_holds(&self, now: SimTime) -> bool {
        let elapsed = now.since(SimTime::ZERO);
        self.total_active() + self.reconfig <= elapsed
    }

    /// Hit rate of the context scheduler.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of elapsed time lost to (blocking) reconfiguration.
    pub fn reconfig_overhead(&self, now: SimTime) -> f64 {
        self.reconfig.fraction_of(now.since(SimTime::ZERO))
    }

    /// Record a timeline event.
    pub fn record_event(&mut self, at: SimTime, ctx: ContextId, kind: FabricEventKind) {
        self.events.push(FabricEvent { at, ctx, kind });
    }

    /// Render the event log as a text timeline: one lane per context,
    /// `width` character columns over `[0, until]`. Lane glyphs:
    /// `#` executing started here, `~` (re)configuring, `x` evicted,
    /// `|` became resident.
    pub fn timeline(&self, names: &[&str], until: SimTime, width: usize) -> String {
        use std::fmt::Write as _;
        assert!(width >= 8, "timeline needs at least 8 columns");
        let total = until.since(SimTime::ZERO).as_fs().max(1);
        let col = |t: SimTime| {
            ((t.since(SimTime::ZERO).as_fs() as u128 * (width as u128 - 1)) / total as u128)
                as usize
        };
        let name_w = names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
        let mut out = String::new();
        for (ctx, name) in names.iter().enumerate() {
            let mut lane = vec![b'.'; width];
            for e in self.events.iter().filter(|e| e.ctx == ctx) {
                let c = col(e.at).min(width - 1);
                lane[c] = match e.kind {
                    FabricEventKind::SwitchStart => b'~',
                    FabricEventKind::SwitchDone => b'|',
                    FabricEventKind::ExecStart => b'#',
                    FabricEventKind::Evict => b'x',
                };
            }
            let _ = writeln!(out, "{name:<name_w$} [{}]", String::from_utf8_lossy(&lane));
        }
        let _ = writeln!(
            out,
            "{:<name_w$}  0{:>w$}",
            "",
            format!("{until}"),
            w = width - 1
        );
        out
    }
}

fn event_kind_json(k: FabricEventKind) -> Json {
    Json::from(match k {
        FabricEventKind::SwitchStart => "switch_start",
        FabricEventKind::SwitchDone => "switch_done",
        FabricEventKind::ExecStart => "exec_start",
        FabricEventKind::Evict => "evict",
    })
}

fn event_kind_of(j: &Json) -> Option<FabricEventKind> {
    match j.as_str()? {
        "switch_start" => Some(FabricEventKind::SwitchStart),
        "switch_done" => Some(FabricEventKind::SwitchDone),
        "exec_start" => Some(FabricEventKind::ExecStart),
        "evict" => Some(FabricEventKind::Evict),
        _ => None,
    }
}

impl Snapshotable for ContextStats {
    fn snapshot_json(&self) -> Json {
        Json::obj()
            .with("active", ju64(self.active.as_fs()))
            .with("switches_in", ju64(self.switches_in))
            .with("accesses", ju64(self.accesses))
            .with("config_words", ju64(self.config_words))
            .with("wait", ju64(self.wait.as_fs()))
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        self.active = SimDuration::fs(snap::u64_field(state, "active")?);
        self.switches_in = snap::u64_field(state, "switches_in")?;
        self.accesses = snap::u64_field(state, "accesses")?;
        self.config_words = snap::u64_field(state, "config_words")?;
        self.wait = SimDuration::fs(snap::u64_field(state, "wait")?);
        Ok(())
    }
}

impl Snapshotable for FabricStats {
    fn snapshot_json(&self) -> Json {
        Json::obj()
            .with(
                "per_context",
                Json::Arr(self.per_context.iter().map(|c| c.snapshot_json()).collect()),
            )
            .with("reconfig", ju64(self.reconfig.as_fs()))
            .with(
                "reconfig_overlapped",
                ju64(self.reconfig_overlapped.as_fs()),
            )
            .with("switches", ju64(self.switches))
            .with("config_words", ju64(self.config_words))
            .with("state_words", ju64(self.state_words))
            .with("hits", ju64(self.hits))
            .with("misses", ju64(self.misses))
            .with("prefetches", ju64(self.prefetches))
            .with("prefetch_hits", ju64(self.prefetch_hits))
            .with(
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::Arr(vec![
                                ju64(e.at.as_fs()),
                                ju64(e.ctx as u64),
                                event_kind_json(e.kind),
                            ])
                        })
                        .collect(),
                ),
            )
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        let per = snap::arr_field(state, "per_context")?;
        if per.len() != self.per_context.len() {
            return Err(snap::err(
                "fabric-stats snapshot context count does not match this fabric",
            ));
        }
        for (slot, j) in self.per_context.iter_mut().zip(per) {
            slot.restore_json(j)?;
        }
        self.reconfig = SimDuration::fs(snap::u64_field(state, "reconfig")?);
        self.reconfig_overlapped = SimDuration::fs(snap::u64_field(state, "reconfig_overlapped")?);
        self.switches = snap::u64_field(state, "switches")?;
        self.config_words = snap::u64_field(state, "config_words")?;
        self.state_words = snap::u64_field(state, "state_words")?;
        self.hits = snap::u64_field(state, "hits")?;
        self.misses = snap::u64_field(state, "misses")?;
        self.prefetches = snap::u64_field(state, "prefetches")?;
        self.prefetch_hits = snap::u64_field(state, "prefetch_hits")?;
        self.events.clear();
        for e in snap::arr_field(state, "events")? {
            let t = e
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| snap::err("malformed fabric event"))?;
            self.events.push(FabricEvent {
                at: SimTime(
                    ju64_of(&t[0]).ok_or_else(|| snap::err("fabric event time is not a u64"))?,
                ),
                ctx: ju64_of(&t[1]).ok_or_else(|| snap::err("fabric event ctx is not a u64"))?
                    as ContextId,
                kind: event_kind_of(&t[2]).ok_or_else(|| snap::err("unknown fabric event kind"))?,
            });
        }
        Ok(())
    }
}

/// One context's row of the [`ReconfigTimeline`] report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineRow {
    /// Context display name.
    pub name: String,
    /// Times this context was configured onto the fabric
    /// ([`ContextStats::switches_in`]).
    pub activations: u64,
    /// Interface accesses served.
    pub accesses: u64,
    /// Active time (§5.3 step 5).
    pub active: SimDuration,
    /// Time spent loading this context's configuration, derived from the
    /// `SwitchStart → SwitchDone` pairs of the event log.
    pub reconfig: SimDuration,
    /// Wait time of suspended calls while this context was unavailable.
    pub wait: SimDuration,
}

/// The per-context reconfiguration report the paper's §5.3 accounting
/// implies: activations, active time, reconfiguration time and the wait
/// time of suspended calls, per context, plus run totals. Derived from
/// [`FabricStats`] (so it agrees with the step-5 counters by
/// construction); render with `Display`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconfigTimeline {
    /// Per-context rows, in context-id order.
    pub rows: Vec<TimelineRow>,
    /// Total reconfiguration time, blocking + overlapped.
    pub total_reconfig: SimDuration,
    /// Reconfiguration time that blocked the fabric
    /// ([`FabricStats::reconfig`]).
    pub blocking_reconfig: SimDuration,
    /// Reconfiguration time hidden behind execution
    /// ([`FabricStats::reconfig_overlapped`]).
    pub overlapped_reconfig: SimDuration,
    /// Context switches performed.
    pub switches: u64,
    /// Configuration words streamed.
    pub config_words: u64,
    /// Contexts that were loaded at least once.
    pub contexts_loaded: u64,
}

impl ReconfigTimeline {
    /// Build the report from a fabric's statistics. `names` labels the
    /// rows (shorter slices fall back to `ctx<N>`).
    pub fn from_stats(stats: &FabricStats, names: &[&str]) -> Self {
        // Per-context reconfiguration time from the event log: each
        // SwitchStart opens a load interval its SwitchDone closes. Aborted
        // loads never record a SwitchDone and contribute nothing.
        let n = stats.per_context.len();
        let mut reconfig = vec![SimDuration::ZERO; n];
        let mut open: Vec<Option<SimTime>> = vec![None; n];
        for e in &stats.events {
            if e.ctx >= n {
                continue;
            }
            match e.kind {
                FabricEventKind::SwitchStart => open[e.ctx] = Some(e.at),
                FabricEventKind::SwitchDone => {
                    if let Some(start) = open[e.ctx].take() {
                        reconfig[e.ctx] += e.at.since(start);
                    }
                }
                _ => {}
            }
        }
        let rows: Vec<TimelineRow> = stats
            .per_context
            .iter()
            .enumerate()
            .map(|(ctx, c)| TimelineRow {
                name: names
                    .get(ctx)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("ctx{ctx}")),
                activations: c.switches_in,
                accesses: c.accesses,
                active: c.active,
                reconfig: reconfig[ctx],
                wait: c.wait,
            })
            .collect();
        ReconfigTimeline {
            contexts_loaded: rows.iter().filter(|r| r.activations > 0).count() as u64,
            rows,
            total_reconfig: stats.reconfig + stats.reconfig_overlapped,
            blocking_reconfig: stats.reconfig,
            overlapped_reconfig: stats.reconfig_overlapped,
            switches: stats.switches,
            config_words: stats.config_words,
        }
    }

    /// Sum of per-context active time.
    pub fn total_active(&self) -> SimDuration {
        self.rows
            .iter()
            .fold(SimDuration::ZERO, |acc, r| acc + r.active)
    }
}

impl std::fmt::Display for ReconfigTimeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(7)
            .max(7);
        writeln!(
            f,
            "{:<name_w$} {:>6} {:>8} {:>12} {:>12} {:>12}",
            "context", "loads", "accesses", "active", "reconfig", "wait"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<name_w$} {:>6} {:>8} {:>12} {:>12} {:>12}",
                r.name,
                r.activations,
                r.accesses,
                format!("{}", r.active),
                format!("{}", r.reconfig),
                format!("{}", r.wait),
            )?;
        }
        writeln!(
            f,
            "total: {} switches, {} config words, reconfig {} ({} blocking + {} overlapped)",
            self.switches,
            self.config_words,
            self.total_reconfig,
            self.blocking_reconfig,
            self.overlapped_reconfig,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::testing::some;

    #[test]
    fn totals_aggregate_per_context() {
        let mut s = FabricStats::new(3);
        s.per_context[0].active = SimDuration::ns(100);
        s.per_context[2].active = SimDuration::ns(50);
        assert_eq!(s.total_active(), SimDuration::ns(150));
    }

    #[test]
    fn invariant_and_idle() {
        let mut s = FabricStats::new(1);
        s.per_context[0].active = SimDuration::ns(60);
        s.reconfig = SimDuration::ns(30);
        let now = SimTime::ZERO + SimDuration::ns(100);
        assert!(s.invariant_holds(now));
        assert_eq!(s.idle(now), SimDuration::ns(10));
        let too_soon = SimTime::ZERO + SimDuration::ns(80);
        assert!(!s.invariant_holds(too_soon));
    }

    #[test]
    fn event_log_and_timeline_render() {
        let mut s = FabricStats::new(2);
        let t = |ns: u64| SimTime::ZERO + SimDuration::ns(ns);
        s.record_event(t(0), 0, FabricEventKind::SwitchStart);
        s.record_event(t(100), 0, FabricEventKind::SwitchDone);
        s.record_event(t(110), 0, FabricEventKind::ExecStart);
        s.record_event(t(500), 0, FabricEventKind::Evict);
        s.record_event(t(500), 1, FabricEventKind::SwitchStart);
        s.record_event(t(900), 1, FabricEventKind::ExecStart);
        let text = s.timeline(&["alpha", "beta"], t(1000), 40);
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        // alpha's lane starts with the switch marker.
        let alpha_line = some(text.lines().next());
        assert!(alpha_line.contains("[~"), "{alpha_line}");
        assert!(alpha_line.contains('#'));
        assert!(alpha_line.contains('x'));
        let beta_line = some(text.lines().nth(1));
        assert!(beta_line.contains('~') && beta_line.contains('#'));
        assert_eq!(s.events.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least 8 columns")]
    fn timeline_rejects_tiny_width() {
        let s = FabricStats::new(1);
        let _ = s.timeline(&["a"], SimTime::ZERO + SimDuration::ns(1), 2);
    }

    #[test]
    fn reconfig_timeline_derives_per_context_load_time() {
        let mut s = FabricStats::new(2);
        let t = |ns: u64| SimTime::ZERO + SimDuration::ns(ns);
        s.per_context[0].active = SimDuration::ns(300);
        s.per_context[0].switches_in = 2;
        s.per_context[0].accesses = 5;
        s.per_context[1].wait = SimDuration::ns(40);
        s.switches = 2;
        s.config_words = 128;
        s.reconfig = SimDuration::ns(150);
        s.record_event(t(0), 0, FabricEventKind::SwitchStart);
        s.record_event(t(100), 0, FabricEventKind::SwitchDone);
        s.record_event(t(400), 0, FabricEventKind::SwitchStart);
        s.record_event(t(450), 0, FabricEventKind::SwitchDone);
        // Context 1 starts a load that never completes (aborted).
        s.record_event(t(500), 1, FabricEventKind::SwitchStart);
        let tl = ReconfigTimeline::from_stats(&s, &["viterbi"]);
        assert_eq!(tl.rows.len(), 2);
        assert_eq!(tl.rows[0].name, "viterbi");
        assert_eq!(tl.rows[1].name, "ctx1", "missing names fall back");
        assert_eq!(tl.rows[0].reconfig, SimDuration::ns(150));
        assert_eq!(tl.rows[1].reconfig, SimDuration::ZERO);
        assert_eq!(tl.rows[0].activations, 2);
        assert_eq!(tl.rows[1].wait, SimDuration::ns(40));
        assert_eq!(tl.contexts_loaded, 1);
        assert_eq!(tl.total_active(), SimDuration::ns(300));
        // Completed loads agree with the §5.3 step-5 totals.
        assert_eq!(tl.total_reconfig, s.reconfig + s.reconfig_overlapped);
        let shown = format!("{tl}");
        assert!(shown.contains("viterbi"));
        assert!(shown.contains("reconfig"));
        assert!(shown.contains("2 switches"));
    }

    #[test]
    fn empty_timeline_renders() {
        let tl = ReconfigTimeline::default();
        assert_eq!(tl.contexts_loaded, 0);
        assert!(format!("{tl}").contains("total:"));
    }

    #[test]
    fn hit_rate_and_overhead() {
        let mut s = FabricStats::new(1);
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.hit_rate(), 0.75);
        s.reconfig = SimDuration::ns(25);
        assert_eq!(
            s.reconfig_overhead(SimTime::ZERO + SimDuration::ns(100)),
            0.25
        );
    }
}
