//! The DRCF component — the paper's central artifact.
//!
//! A `Drcf` replaces a set of hardware accelerators on the bus. It
//! implements the union of their slave interfaces (same `get_low_add`/
//! `get_high_add`/`read`/`write` contract) and routes every incoming
//! interface access through the context scheduler, which behaves exactly as
//! §5.3 prescribes:
//!
//! 1. identify which context the access targets;
//! 2. if that context is active, forward the access directly;
//! 3. if not, activate a context switch;
//! 4. while switching, *suspend* the access, and generate the configuration
//!    data reads into the memory that holds the context;
//! 5. keep track of each context's active time and of the time the DRCF
//!    spends reconfiguring itself.
//!
//! Configuration data can travel three ways ([`ConfigPath`]): over the
//! system bus (generating the real contention the paper insists on
//! modeling), over a dedicated configuration port, or as a fixed latency
//! with no traffic (the OCAPI-XL-style baseline the paper criticizes for
//! *not* modeling the memory traffic of context switching).

use std::collections::VecDeque;

use drcf_bus::prelude::{
    apply_request, BusOp, BusResponse, BusStatus, ConfigTrain, ConfigTrainDecoalesced,
    ConfigTrainDone, ConfigTrainRejected, DirectReadDone, DirectReadReq, MasterPort, SlaveAccess,
    SlaveReply, TrainBurst,
};
use drcf_bus::snapshot::{access_json, access_of, time_json, time_of};
use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self as snap, Snapshotable};

use crate::context::{Context, ContextId};
use crate::scheduler::{ContextScheduler, Lookup, SchedulerConfig};
use crate::stats::{FabricEventKind, FabricStats};

/// How configuration data reaches the fabric.
#[derive(Debug, Clone)]
pub enum ConfigPath {
    /// Master the system bus and read the configuration from a memory
    /// mapped there. Generates real bus traffic — the paper's headline
    /// modeling contribution.
    SystemBus {
        /// The bus to master.
        bus: ComponentId,
        /// Priority of configuration reads.
        priority: u8,
        /// Words per burst transaction.
        burst: usize,
    },
    /// A dedicated point-to-point port into a configuration memory
    /// (`DirectReadReq` traffic; contention only inside the memory).
    DirectPort {
        /// The configuration memory component.
        memory: ComponentId,
    },
    /// A pure transfer-rate model with no traffic generated: `words /
    /// words_per_cycle` cycles of `clock_mhz`. Models methodologies that
    /// ignore configuration-memory contention.
    FixedRate {
        /// Transfer rate in words per cycle.
        words_per_cycle: u64,
        /// Clock of the configuration engine, MHz.
        clock_mhz: u64,
    },
}

/// Fabric configuration.
#[derive(Debug, Clone)]
pub struct DrcfConfig {
    /// Execution clock of the fabric, MHz.
    pub clock_mhz: u64,
    /// Configuration transport.
    pub config_path: ConfigPath,
    /// Scheduler (slots, prefetch, eviction).
    pub scheduler: SchedulerConfig,
    /// When true, a context load may proceed while another context
    /// executes (MorphoSys-style background reload / partial
    /// reconfiguration). When false, reconfiguration blocks the fabric.
    pub overlap_load_exec: bool,
    /// Fault injection: contexts whose configuration load is forcibly
    /// aborted just as the transfer completes (mid-reconfiguration). The
    /// context is marked permanently failed, queued accesses get
    /// `SlaveError` replies, and the run ends with a
    /// [`SimErrorKind::ConfigLoad`] error.
    pub abort_load_of: Vec<ContextId>,
    /// Offer every [`ConfigPath::SystemBus`] load to the bus as a coalesced
    /// configuration train (one analytically-timed occupancy window instead
    /// of per-burst events). Timing, statistics and run outcomes are
    /// bit-identical either way; the bus falls back to per-burst whenever
    /// another master contends, a fault range overlaps, or tracing is on.
    /// Requires the bus to have the target memory's timing registered
    /// ([`drcf_bus::bus::Bus::register_slave_timing`]) for the fast path to
    /// ever engage.
    pub coalesce_config_traffic: bool,
}

impl Default for DrcfConfig {
    fn default() -> Self {
        DrcfConfig {
            clock_mhz: 100,
            config_path: ConfigPath::FixedRate {
                words_per_cycle: 1,
                clock_mhz: 100,
            },
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
            abort_load_of: Vec::new(),
            coalesce_config_traffic: false,
        }
    }
}

struct Queued {
    access: SlaveAccess,
    arrived: SimTime,
}

struct LoadOp {
    ctx: ContextId,
    /// Victim-state words still to write back before loading.
    save_remaining: u64,
    /// Configuration-image words still to read.
    image_remaining: u64,
    /// Saved-state words of the target still to restore after the image.
    restore_remaining: u64,
    /// Next configuration read address.
    next_addr: u64,
    /// Scratch address for state save/restore traffic.
    state_addr: u64,
    /// Words of the save burst currently in flight on the bus.
    save_in_flight: u64,
    /// Totals for accounting at install time.
    save_total: u64,
    restore_total: u64,
    prefetch: bool,
    started: SimTime,
    /// A coalesced configuration train covering all remaining words is
    /// outstanding at the bus (offer, window, or in-flight hand-back).
    train_pending: bool,
}

const TAG_EXEC_DONE: u64 = 1;
const TAG_EXTRA_DELAY_DONE: u64 = 2;
const TAG_FIXED_XFER_DONE: u64 = 3;

/// The dynamically reconfigurable fabric component.
///
/// ```
/// use drcf_kernel::prelude::*;
/// use drcf_bus::prelude::*;
/// use drcf_core::prelude::*;
///
/// // A minimal fabric with one register-file context, loading at a fixed
/// // rate, driven directly (no bus) by a testbench component.
/// let mut sim = Simulator::new();
/// sim.add(
///     "tb",
///     FnComponent::new(|api, msg| match &msg.kind {
///         MsgKind::Start => {
///             api.obligation_begin();
///             let req = BusRequest {
///                 id: 1, master: 0, op: BusOp::Write,
///                 addr: 0x2000, burst: 1, data: vec![7], priority: 0,
///             };
///             let me = api.me();
///             api.send(1, SlaveAccess { req, bus: me }, Delay::Delta);
///         }
///         _ => {
///             if msg.user_ref::<SlaveReply>().is_some() {
///                 api.obligation_end();
///             }
///         }
///     }),
/// );
/// let drcf = sim.add(
///     "drcf",
///     Drcf::new(
///         DrcfConfig::default(),
///         vec![Context::new(
///             Box::new(RegisterFile::new("ctx", 0x2000, 16, 1)),
///             ContextParams::default(),
///         )],
///     ),
/// );
/// assert_eq!(sim.run(), Ok(StopReason::Quiescent));
/// let fabric = sim.get::<Drcf>(drcf);
/// assert_eq!(fabric.stats.switches, 1);
/// assert!(fabric.stats.invariant_holds(sim.now()));
/// ```
pub struct Drcf {
    cfg: DrcfConfig,
    contexts: Vec<Context>,
    sched: ContextScheduler,
    port: Option<MasterPort>,
    queue: VecDeque<Queued>,
    loading: Option<LoadOp>,
    /// Contexts whose configuration permanently failed to load (config
    /// image unreadable or fabric too small); accesses to them fail fast.
    failed: Vec<bool>,
    /// Contexts that were evicted after running and left saved state in
    /// memory; their next activation must restore it.
    has_saved_state: Vec<bool>,
    exec_busy_until: SimTime,
    active_ctx: Option<ContextId>,
    low: u64,
    high: u64,
    /// Accumulated instrumentation (§5.3 step 5).
    pub stats: FabricStats,
}

impl Drcf {
    /// Build a fabric hosting `contexts`.
    ///
    /// Panics if the contexts' interface ranges overlap or parameters are
    /// invalid — the same conditions the transformation validator rejects.
    /// Use [`Drcf::try_new`] to get a typed error instead.
    pub fn new(cfg: DrcfConfig, contexts: Vec<Context>) -> Self {
        match Self::try_new(cfg, contexts) {
            Ok(d) => d,
            Err(e) => panic!("invalid DRCF: {e}"),
        }
    }

    /// Fallible constructor: returns a [`SimErrorKind::Validation`] error
    /// when the context set is empty, a context's parameters are invalid,
    /// or two contexts' interface ranges overlap.
    pub fn try_new(cfg: DrcfConfig, contexts: Vec<Context>) -> SimResult<Self> {
        drcf_bus::snapshot::register_bus_codecs();
        if contexts.is_empty() {
            return Err(SimError::new(
                SimErrorKind::Validation,
                "a DRCF needs at least one context",
            ));
        }
        for (i, c) in contexts.iter().enumerate() {
            if let Err(e) = c.params.validate() {
                return Err(SimError::new(
                    SimErrorKind::Validation,
                    format!("context {i} ({}): {e}", c.name()),
                ));
            }
            for other in &contexts[..i] {
                let disjoint = c.model.high_addr() < other.model.low_addr()
                    || other.model.high_addr() < c.model.low_addr();
                if !disjoint {
                    return Err(SimError::new(
                        SimErrorKind::Validation,
                        format!(
                            "context interface ranges overlap: {} and {}",
                            c.name(),
                            other.name()
                        ),
                    ));
                }
            }
        }
        // Emptiness was validated above, so min/max exist.
        let low = contexts
            .iter()
            .map(|c| c.model.low_addr())
            .min()
            .unwrap_or(0);
        let high = contexts
            .iter()
            .map(|c| c.model.high_addr())
            .max()
            .unwrap_or(0);
        let slots_needed = contexts.iter().map(|c| c.params.slots_needed).collect();
        let sched = ContextScheduler::new(cfg.scheduler.clone(), slots_needed);
        let port = match cfg.config_path {
            ConfigPath::SystemBus { bus, priority, .. } => Some(MasterPort::new(bus, priority)),
            _ => None,
        };
        let n = contexts.len();
        Ok(Drcf {
            cfg,
            contexts,
            sched,
            port,
            queue: VecDeque::new(),
            loading: None,
            failed: vec![false; n],
            has_saved_state: vec![false; n],
            exec_busy_until: SimTime::ZERO,
            active_ctx: None,
            low,
            high,
            stats: FabricStats::new(n),
        })
    }

    /// Lowest interface address the DRCF claims (`get_low_add()` of the
    /// generated component).
    pub fn low_addr(&self) -> u64 {
        self.low
    }

    /// Highest interface address (`get_high_add()`).
    pub fn high_addr(&self) -> u64 {
        self.high
    }

    /// Number of hosted contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Context name by id.
    pub fn context_name(&self, c: ContextId) -> &str {
        self.contexts[c].name()
    }

    /// The currently / most recently active context.
    pub fn active_context(&self) -> Option<ContextId> {
        self.active_ctx
    }

    /// Resident contexts right now.
    pub fn resident_contexts(&self) -> Vec<ContextId> {
        self.sched.resident_set()
    }

    /// Bus traffic counters of the configuration master port (when the
    /// config path is the system bus).
    pub fn config_port(&self) -> Option<&MasterPort> {
        self.port.as_ref()
    }

    fn decode(&self, addr: u64) -> Option<ContextId> {
        self.contexts.iter().position(|c| c.claims(addr))
    }

    fn reply_error(&mut self, api: &mut Api<'_>, access: &SlaveAccess) {
        let resp = BusResponse {
            id: access.req.id,
            op: access.req.op,
            addr: access.req.addr,
            status: BusStatus::SlaveError,
            data: vec![],
        };
        api.send(
            access.bus,
            SlaveReply {
                resp,
                master: access.req.master,
            },
            Delay::Delta,
        );
    }

    fn exec_free(&self, now: SimTime) -> bool {
        now >= self.exec_busy_until
    }

    /// §5.3 steps 1–4 driver: make progress on the head of the suspended
    /// queue, then consider prefetching.
    fn pump(&mut self, api: &mut Api<'_>) {
        loop {
            // Reconfiguration blocks everything unless overlap is enabled.
            let load_blocks = self.loading.is_some() && !self.cfg.overlap_load_exec;

            let Some(head) = self.queue.front() else {
                break;
            };
            let Some(ctx) = self.decode(head.access.req.addr) else {
                // on_slave_access only queues decodable accesses; reaching
                // here means the fabric state is inconsistent.
                api.raise(
                    SimErrorKind::Internal,
                    "queued access does not decode to any context",
                );
                if let Some(q) = self.queue.pop_front() {
                    self.reply_error(api, &q.access);
                }
                continue;
            };

            if self.sched.is_resident(ctx) {
                if load_blocks || !self.exec_free(api.now()) {
                    return; // a timer (exec/load) will pump again
                }
                let Some(q) = self.queue.pop_front() else {
                    break;
                };
                self.execute(api, ctx, q);
                return; // exec-done timer pumps the rest
            }

            // Needs a context switch.
            if self.failed[ctx] {
                if let Some(q) = self.queue.pop_front() {
                    self.reply_error(api, &q.access);
                }
                continue;
            }
            if self.loading.is_some() {
                // One load at a time; when it installs, pump retries.
                return;
            }
            match self.start_load(api, ctx, false) {
                LoadStart::Started => return,
                LoadStart::RetryLater => return,
                LoadStart::Impossible => {
                    self.failed[ctx] = true;
                    // Fail every queued access to this context and continue
                    // with the rest of the queue.
                    let me_ranges: Vec<usize> = self
                        .queue
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| self.decode(q.access.req.addr) == Some(ctx))
                        .map(|(i, _)| i)
                        .collect();
                    for i in me_ranges.into_iter().rev() {
                        if let Some(q) = self.queue.remove(i) {
                            self.reply_error(api, &q.access);
                        }
                    }
                    continue;
                }
            }
        }
        self.maybe_prefetch(api);
    }

    /// §5.3 step 2: forward the (suspended) call to the active context.
    fn execute(&mut self, api: &mut Api<'_>, ctx: ContextId, q: Queued) {
        match self.sched.note_use(ctx) {
            Ok(true) => self.stats.prefetch_hits += 1,
            Ok(false) => {}
            Err(e) => api.raise(e.kind, e.message),
        }
        self.stats
            .record_event(api.now(), ctx, FabricEventKind::ExecStart);
        api.trace_begin(TraceCategory::Fabric, "exec", ctx as u64);
        api.trace_counter(TraceCategory::Fabric, "suspended", self.queue.len() as u64);
        self.active_ctx = Some(ctx);
        let model = self.contexts[ctx].model.as_mut();
        let resp = apply_request(model, &q.access.req);
        let cycles = model.access_cycles(q.access.req.op, q.access.req.addr, q.access.req.burst);
        let service = SimDuration::cycles_at_mhz(cycles, self.cfg.clock_mhz);
        self.exec_busy_until = api.now() + service;
        let cs = &mut self.stats.per_context[ctx];
        cs.active += service;
        cs.accesses += 1;
        cs.wait += api.now().since(q.arrived);
        api.send_in(
            q.access.bus,
            SlaveReply {
                resp,
                master: q.access.req.master,
            },
            service,
        );
        api.timer_in(service, TAG_EXEC_DONE);
    }

    /// §5.3 steps 3–4: begin a context switch.
    fn start_load(&mut self, api: &mut Api<'_>, ctx: ContextId, prefetch: bool) -> LoadStart {
        debug_assert!(self.loading.is_none(), "one load at a time");
        // Protect the executing context from eviction while it runs.
        let mut protected = Vec::new();
        if !self.exec_free(api.now()) {
            if let Some(a) = self.active_ctx {
                protected.push(a);
            }
        }
        match self.sched.lookup(ctx, &protected) {
            Lookup::Resident => LoadStart::RetryLater, // raced; treat as progress
            Lookup::TooBig => {
                api.raise(
                    SimErrorKind::Scheduler,
                    format!(
                        "context '{}' needs {} slots but the fabric has only {}",
                        self.contexts[ctx].name(),
                        self.contexts[ctx].params.slots_needed,
                        self.cfg.scheduler.slots
                    ),
                );
                LoadStart::Impossible
            }
            Lookup::NoRoom => {
                if protected.is_empty() {
                    // Nothing protected and still no room: permanent.
                    LoadStart::Impossible
                } else {
                    // Wait for the executing context to finish, then retry.
                    LoadStart::RetryLater
                }
            }
            Lookup::Load { evict } => {
                // Evicting a stateful context forces a state write-back
                // (extra traffic on top of the configuration transfers).
                let mut save_total = 0;
                for v in evict {
                    if let Err(e) = self.sched.evict(v) {
                        api.raise(e.kind, e.message);
                        continue;
                    }
                    self.stats
                        .record_event(api.now(), v, FabricEventKind::Evict);
                    api.trace_instant(TraceCategory::Fabric, "evict", v as u64);
                    let st = self.contexts[v].params.state_words;
                    if st > 0 {
                        save_total += st;
                        self.has_saved_state[v] = true;
                    }
                }
                let p = &self.contexts[ctx].params;
                let restore_total = if self.has_saved_state[ctx] {
                    p.state_words
                } else {
                    0
                };
                let words = p.config_size_words;
                self.loading = Some(LoadOp {
                    ctx,
                    save_remaining: save_total,
                    image_remaining: words,
                    restore_remaining: restore_total,
                    next_addr: p.config_addr,
                    state_addr: p.state_addr,
                    save_in_flight: 0,
                    save_total,
                    restore_total,
                    prefetch,
                    started: api.now(),
                    train_pending: false,
                });
                if prefetch {
                    self.stats.prefetches += 1;
                }
                self.stats
                    .record_event(api.now(), ctx, FabricEventKind::SwitchStart);
                // Switch spans live on lane 1 so a background (overlapped)
                // load nests independently of lane-0 exec spans.
                api.trace_begin_lane(1, TraceCategory::Fabric, "switch", ctx as u64);
                self.issue_config_transfer(api);
                LoadStart::Started
            }
        }
    }

    /// Generate configuration-memory traffic (§5.3 step 4): victim-state
    /// write-back, then the configuration image, then the target's saved
    /// state, in that order. On the system-bus path with
    /// [`DrcfConfig::coalesce_config_traffic`] set (and tracing off, which
    /// would need the per-burst spans), the whole remainder is first
    /// offered to the bus as a coalesced train.
    fn issue_config_transfer(&mut self, api: &mut Api<'_>) {
        if self.loading.is_none() {
            api.raise(
                SimErrorKind::Internal,
                "configuration transfer issued with no load in progress",
            );
            return;
        }
        match self.cfg.config_path {
            ConfigPath::SystemBus {
                priority, burst, ..
            } => {
                let burst = burst.max(1);
                let coalesce = self.cfg.coalesce_config_traffic && !api.tracing_enabled();
                if coalesce && self.offer_train(api, burst, priority) {
                    return;
                }
                self.issue_bus_burst(api, burst);
            }
            ConfigPath::DirectPort { memory } => {
                let Some(load) = self.loading.as_ref() else {
                    return;
                };
                // One aggregate streaming request: save + image + restore
                // words move over the dedicated port back to back (the
                // direction split does not change the port timing model).
                let words =
                    (load.save_remaining + load.image_remaining + load.restore_remaining) as usize;
                let ctx = load.ctx;
                let addr = load.next_addr;
                api.obligation_begin();
                api.send(
                    memory,
                    DirectReadReq {
                        requester: api.me(),
                        addr,
                        words,
                        tag: ctx as u64,
                    },
                    Delay::Delta,
                );
            }
            ConfigPath::FixedRate {
                words_per_cycle,
                clock_mhz,
            } => {
                let Some(load) = self.loading.as_ref() else {
                    return;
                };
                let total = load.save_remaining + load.image_remaining + load.restore_remaining;
                let cycles = total.div_ceil(words_per_cycle.max(1));
                let d = SimDuration::cycles_at_mhz(cycles, clock_mhz);
                api.timer_in(d, TAG_FIXED_XFER_DONE);
            }
        }
    }

    /// Issue the next single per-burst transaction of the load.
    fn issue_bus_burst(&mut self, api: &mut Api<'_>, burst: usize) {
        let Some(load) = self.loading.as_mut() else {
            return;
        };
        let Some(port) = self.port.as_mut() else {
            api.raise(
                SimErrorKind::Internal,
                "system-bus configuration path has no master port",
            );
            return;
        };
        if load.save_remaining > 0 {
            // State write-back of the evicted context(s).
            let chunk = (load.save_remaining as usize).min(burst);
            load.save_in_flight = chunk as u64;
            let addr = load.state_addr;
            port.write(api, addr, vec![0; chunk]);
        } else if load.image_remaining > 0 {
            let chunk = (load.image_remaining as usize).min(burst);
            let addr = load.next_addr;
            port.read(api, addr, chunk);
        } else {
            // Restore the target's saved state.
            let chunk = (load.restore_remaining as usize).min(burst);
            let addr = load.state_addr;
            port.read(api, addr, chunk);
        }
    }

    /// The per-burst chunk sequence of the load's remaining words, in issue
    /// order — exactly the bursts [`Drcf::issue_bus_burst`] would generate
    /// one at a time. Shared by the train offer and the de-coalesce
    /// accounting so both agree with the per-burst world.
    fn train_bursts(load: &LoadOp, burst: usize) -> Vec<TrainBurst> {
        let mut v = Vec::new();
        let mut save = load.save_remaining;
        while save > 0 {
            let words = (save as usize).min(burst);
            v.push(TrainBurst {
                op: BusOp::Write,
                addr: load.state_addr,
                words,
            });
            save -= words as u64;
        }
        let mut image = load.image_remaining;
        let mut addr = load.next_addr;
        while image > 0 {
            let words = (image as usize).min(burst);
            v.push(TrainBurst {
                op: BusOp::Read,
                addr,
                words,
            });
            addr += words as u64;
            image -= words as u64;
        }
        let mut restore = load.restore_remaining;
        while restore > 0 {
            let words = (restore as usize).min(burst);
            v.push(TrainBurst {
                op: BusOp::Read,
                addr: load.state_addr,
                words,
            });
            restore -= words as u64;
        }
        v
    }

    /// Apply a de-coalesced train's completed burst prefix to the load
    /// accounting, replaying the same save/image/restore classification the
    /// per-burst responses would have performed.
    fn apply_train_progress(load: &mut LoadOp, bursts: &[TrainBurst]) {
        for b in bursts {
            match b.op {
                BusOp::Write => {
                    load.save_remaining = load.save_remaining.saturating_sub(b.words as u64);
                }
                BusOp::Read => {
                    if load.image_remaining > 0 {
                        load.image_remaining = load.image_remaining.saturating_sub(b.words as u64);
                        load.next_addr += b.words as u64;
                    } else {
                        load.restore_remaining =
                            load.restore_remaining.saturating_sub(b.words as u64);
                    }
                }
            }
        }
    }

    /// Offer the whole remaining load to the bus as one coalesced train.
    /// Returns false when there is nothing to offer (degenerate empty
    /// load); the caller then falls back to the per-burst path.
    fn offer_train(&mut self, api: &mut Api<'_>, burst: usize, priority: u8) -> bool {
        let Some(load) = self.loading.as_mut() else {
            return false;
        };
        let bursts = Self::train_bursts(load, burst);
        if bursts.is_empty() {
            return false;
        }
        let Some(port) = self.port.as_ref() else {
            return false;
        };
        let bus = port.bus();
        load.train_pending = true;
        let tag = load.ctx as u64;
        let master = api.me();
        api.obligation_begin();
        api.send(
            bus,
            ConfigTrain {
                master,
                priority,
                tag,
                bursts,
            },
            Delay::Delta,
        );
        true
    }

    /// The bus ran the whole train uncontended: every remaining word has
    /// transferred, at exactly the per-burst completion instant.
    fn on_train_done(&mut self, api: &mut Api<'_>, done: ConfigTrainDone) {
        api.obligation_end();
        let Some(load) = self.loading.as_mut() else {
            api.raise(
                SimErrorKind::Internal,
                "train completion with no load in progress",
            );
            return;
        };
        debug_assert!(load.train_pending, "train completion without an offer");
        debug_assert_eq!(
            load.save_remaining + load.image_remaining + load.restore_remaining,
            done.words
        );
        load.train_pending = false;
        load.next_addr += load.image_remaining;
        load.save_remaining = 0;
        load.image_remaining = 0;
        load.restore_remaining = 0;
        self.transfer_complete(api);
    }

    /// The bus could not coalesce (busy, contended, fault overlap, no
    /// registered slave timing): transfer the next chunk per-burst. Every
    /// completed chunk re-offers a train, so coalescing resumes as soon as
    /// the contention clears.
    fn on_train_rejected(&mut self, api: &mut Api<'_>, _rej: ConfigTrainRejected) {
        api.obligation_end();
        let Some(load) = self.loading.as_mut() else {
            api.raise(
                SimErrorKind::Internal,
                "train rejection with no load in progress",
            );
            return;
        };
        debug_assert!(load.train_pending, "train rejection without an offer");
        load.train_pending = false;
        let ConfigPath::SystemBus { burst, .. } = self.cfg.config_path else {
            api.raise(
                SimErrorKind::Internal,
                "train rejection without a system-bus configuration path",
            );
            return;
        };
        self.issue_bus_burst(api, burst.max(1));
    }

    /// Foreign traffic broke the window: account the completed prefix,
    /// adopt the in-flight burst (if any) so its response flows through the
    /// normal split-transaction path, and continue per-burst/re-offer.
    fn on_train_decoalesced(&mut self, api: &mut Api<'_>, d: ConfigTrainDecoalesced) {
        api.obligation_end();
        let ConfigPath::SystemBus { burst, .. } = self.cfg.config_path else {
            api.raise(
                SimErrorKind::Internal,
                "train de-coalesce without a system-bus configuration path",
            );
            return;
        };
        let burst = burst.max(1);
        let Some(load) = self.loading.as_mut() else {
            api.raise(
                SimErrorKind::Internal,
                "train de-coalesce with no load in progress",
            );
            return;
        };
        debug_assert!(load.train_pending, "train de-coalesce without an offer");
        load.train_pending = false;
        let bursts = Self::train_bursts(load, burst);
        let done = d.done_bursts.min(bursts.len());
        Self::apply_train_progress(load, &bursts[..done]);
        match d.in_flight {
            Some(f) => {
                // Replicate the issue-time bookkeeping of the per-burst
                // path; `on_bus_response` takes over when the response
                // arrives (and re-issues or completes from there).
                if f.op == BusOp::Write {
                    load.save_in_flight = f.words as u64;
                }
                let Some(port) = self.port.as_mut() else {
                    api.raise(
                        SimErrorKind::Internal,
                        "system-bus configuration path has no master port",
                    );
                    return;
                };
                port.adopt(api, f.id, f.issued_at);
            }
            None => {
                if load.save_remaining + load.image_remaining + load.restore_remaining == 0 {
                    self.transfer_complete(api);
                } else {
                    self.issue_config_transfer(api);
                }
            }
        }
    }

    /// All configuration words have arrived; apply the extra delay then
    /// install.
    fn transfer_complete(&mut self, api: &mut Api<'_>) {
        let Some(load) = self.loading.as_ref() else {
            api.raise(
                SimErrorKind::Internal,
                "configuration transfer completed with no load in progress",
            );
            return;
        };
        // Fault injection: abort the load mid-reconfiguration, after the
        // transfer but before installation — the window where a real fabric
        // is left partially configured.
        if self.cfg.abort_load_of.contains(&load.ctx) {
            let ctx = load.ctx;
            self.loading = None;
            self.failed[ctx] = true;
            api.trace_end_lane(1, TraceCategory::Fabric, "switch", ctx as u64);
            api.trace_instant(TraceCategory::Fabric, "load_aborted", ctx as u64);
            api.raise(
                SimErrorKind::ConfigLoad,
                format!(
                    "context '{}' load aborted mid-reconfiguration by fault injection",
                    self.contexts[ctx].name()
                ),
            );
            self.pump(api);
            return;
        }
        let extra = self.contexts[load.ctx].params.extra_reconfig_delay;
        if extra.is_zero() {
            self.install_loaded(api);
        } else {
            api.timer_in(extra, TAG_EXTRA_DELAY_DONE);
        }
    }

    fn install_loaded(&mut self, api: &mut Api<'_>) {
        let Some(load) = self.loading.take() else {
            api.raise(
                SimErrorKind::Internal,
                "context install fired with no load in progress",
            );
            return;
        };
        let dur = api.now().since(load.started);
        // Close the lane-1 switch span on every install outcome (success or
        // scheduler failure below) so begin/end pairs stay balanced.
        api.trace_end_lane(1, TraceCategory::Fabric, "switch", load.ctx as u64);
        if self.cfg.overlap_load_exec {
            self.stats.reconfig_overlapped += dur;
        } else {
            self.stats.reconfig += dur;
        }
        if let Err(e) = self.sched.install(load.ctx, load.prefetch) {
            api.raise(e.kind, e.message);
            self.failed[load.ctx] = true;
            self.pump(api);
            return;
        }
        self.stats.switches += 1;
        let cs = &mut self.stats.per_context[load.ctx];
        cs.switches_in += 1;
        cs.config_words += self.contexts[load.ctx].params.config_size_words;
        self.stats.config_words += self.contexts[load.ctx].params.config_size_words;
        self.stats.state_words += load.save_total + load.restore_total;
        self.stats
            .record_event(api.now(), load.ctx, FabricEventKind::SwitchDone);
        api.trace_instant(TraceCategory::Fabric, "install", load.ctx as u64);
        self.pump(api);
    }

    /// Prefetch when idle: queue empty, nothing loading, policy predicts.
    fn maybe_prefetch(&mut self, api: &mut Api<'_>) {
        if self.loading.is_some() || !self.queue.is_empty() {
            return;
        }
        let Some(cur) = self.active_ctx else { return };
        let Some(next) = self.sched.predict_next(cur) else {
            return;
        };
        // Only prefetch when it cannot disturb the active context.
        let _ = self.start_load(api, next, true);
    }

    fn on_slave_access(&mut self, api: &mut Api<'_>, access: SlaveAccess) {
        // §5.3 step 1: which context is this for?
        match self.decode(access.req.addr) {
            None => {
                api.log(
                    Severity::Warning,
                    format!("DRCF access to unclaimed address {:#x}", access.req.addr),
                );
                self.reply_error(api, &access);
            }
            Some(ctx) => {
                if self.sched.is_resident(ctx) {
                    self.stats.hits += 1;
                    api.trace_counter(TraceCategory::Fabric, "hits", self.stats.hits);
                } else {
                    self.stats.misses += 1;
                    api.trace_counter(TraceCategory::Fabric, "misses", self.stats.misses);
                }
                self.queue.push_back(Queued {
                    access,
                    arrived: api.now(),
                });
                self.pump(api);
            }
        }
    }

    fn on_bus_response(&mut self, api: &mut Api<'_>, resp: BusResponse) {
        // Configuration burst came back over the system bus.
        if !resp.is_ok() {
            api.raise(
                SimErrorKind::ConfigLoad,
                format!("configuration read failed at {:#x}", resp.addr),
            );
            // Abort the load and mark the context permanently failed so the
            // fabric cannot livelock retrying an unreadable image.
            if let Some(load) = self.loading.take() {
                self.failed[load.ctx] = true;
                api.trace_end_lane(1, TraceCategory::Fabric, "switch", load.ctx as u64);
                api.trace_instant(TraceCategory::Fabric, "load_aborted", load.ctx as u64);
            }
            self.pump(api);
            return;
        }
        let Some(load) = self.loading.as_mut() else {
            return;
        };
        match resp.op {
            BusOp::Write => {
                // Victim-state write-back acknowledged; the ack carries no
                // payload, so account the burst recorded at issue time.
                load.save_remaining = load.save_remaining.saturating_sub(load.save_in_flight);
                load.save_in_flight = 0;
            }
            BusOp::Read => {
                let got = resp.data.len() as u64;
                if load.image_remaining > 0 {
                    load.image_remaining = load.image_remaining.saturating_sub(got);
                    load.next_addr += got;
                } else {
                    load.restore_remaining = load.restore_remaining.saturating_sub(got);
                }
            }
        }
        if load.save_remaining + load.image_remaining + load.restore_remaining == 0 {
            self.transfer_complete(api);
        } else {
            self.issue_config_transfer(api);
        }
    }

    fn on_direct_done(&mut self, api: &mut Api<'_>, done: DirectReadDone) {
        api.obligation_end();
        if let Some(load) = self.loading.as_mut() {
            if load.ctx as u64 == done.tag {
                load.save_remaining = 0;
                load.image_remaining = 0;
                load.restore_remaining = 0;
                self.transfer_complete(api);
            }
        }
    }
}

enum LoadStart {
    Started,
    RetryLater,
    Impossible,
}

impl Drcf {
    fn loading_json(&self) -> Json {
        match &self.loading {
            None => Json::Null,
            Some(l) => Json::obj()
                .with("ctx", ju64(l.ctx as u64))
                .with("save_remaining", ju64(l.save_remaining))
                .with("image_remaining", ju64(l.image_remaining))
                .with("restore_remaining", ju64(l.restore_remaining))
                .with("next_addr", ju64(l.next_addr))
                .with("state_addr", ju64(l.state_addr))
                .with("save_in_flight", ju64(l.save_in_flight))
                .with("save_total", ju64(l.save_total))
                .with("restore_total", ju64(l.restore_total))
                .with("prefetch", Json::Bool(l.prefetch))
                .with("started", time_json(l.started))
                .with("train_pending", Json::Bool(l.train_pending)),
        }
    }

    fn restore_loading(&mut self, state: &Json) -> SimResult<()> {
        let j = snap::field(state, "loading")?;
        self.loading = match j {
            Json::Null => None,
            j => Some(LoadOp {
                ctx: snap::usize_field(j, "ctx")?,
                save_remaining: snap::u64_field(j, "save_remaining")?,
                image_remaining: snap::u64_field(j, "image_remaining")?,
                restore_remaining: snap::u64_field(j, "restore_remaining")?,
                next_addr: snap::u64_field(j, "next_addr")?,
                state_addr: snap::u64_field(j, "state_addr")?,
                save_in_flight: snap::u64_field(j, "save_in_flight")?,
                save_total: snap::u64_field(j, "save_total")?,
                restore_total: snap::u64_field(j, "restore_total")?,
                prefetch: snap::bool_field(j, "prefetch")?,
                started: time_of(snap::field(j, "started")?)
                    .ok_or_else(|| snap::err("bad load start time"))?,
                train_pending: snap::bool_field(j, "train_pending")?,
            }),
        };
        Ok(())
    }

    fn bool_list(v: &[bool]) -> Json {
        Json::Arr(v.iter().map(|&b| Json::Bool(b)).collect())
    }

    fn restore_bool_list(dst: &mut [bool], j: &Json, what: &str) -> SimResult<()> {
        let src = j
            .as_arr()
            .filter(|a| a.len() == dst.len())
            .ok_or_else(|| snap::err(format!("{what} list does not match this fabric")))?;
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s
                .as_bool()
                .ok_or_else(|| snap::err(format!("{what} entry is not a bool")))?;
        }
        Ok(())
    }

    /// Restore everything except the per-context model images — the part
    /// shared by [`Component::restore`] and [`Component::restore_live`].
    fn restore_frame(&mut self, state: &Json) -> SimResult<()> {
        self.sched.restore_json(snap::field(state, "sched")?)?;
        match (snap::field(state, "port")?, self.port.as_mut()) {
            (Json::Null, None) => {}
            (j, Some(p)) if !matches!(j, Json::Null) => p.restore_json(j)?,
            _ => {
                return Err(snap::err(
                    "snapshot and fabric disagree about the configuration port",
                ))
            }
        }
        self.queue.clear();
        for q in snap::arr_field(state, "queue")? {
            self.queue.push_back(Queued {
                access: access_of(snap::field(q, "access")?)
                    .ok_or_else(|| snap::err("malformed queued access"))?,
                arrived: time_of(snap::field(q, "arrived")?)
                    .ok_or_else(|| snap::err("bad queued-access arrival time"))?,
            });
        }
        self.restore_loading(state)?;
        Self::restore_bool_list(&mut self.failed, snap::field(state, "failed")?, "failed")?;
        Self::restore_bool_list(
            &mut self.has_saved_state,
            snap::field(state, "has_saved_state")?,
            "has_saved_state",
        )?;
        self.exec_busy_until = time_of(snap::field(state, "exec_busy_until")?)
            .ok_or_else(|| snap::err("bad exec_busy_until"))?;
        self.active_ctx = match snap::field(state, "active_ctx")? {
            Json::Null => None,
            j => Some(
                drcf_kernel::json::ju64_of(j)
                    .ok_or_else(|| snap::err("active_ctx is not a context id"))?
                    as ContextId,
            ),
        };
        self.stats.restore_json(snap::field(state, "stats")?)
    }
}

impl Component for Drcf {
    fn snapshot(&mut self) -> SimResult<Json> {
        let mut models = Vec::with_capacity(self.contexts.len());
        for c in &self.contexts {
            models.push(
                c.model
                    .snapshot_state()
                    .map_err(|e| snap::err(format!("context '{}': {e}", c.name())))?,
            );
        }
        Ok(Json::obj()
            .with("sched", self.sched.snapshot_json())
            .with(
                "port",
                self.port.as_ref().map_or(Json::Null, |p| p.snapshot_json()),
            )
            .with(
                "queue",
                Json::Arr(
                    self.queue
                        .iter()
                        .map(|q| {
                            Json::obj()
                                .with("access", access_json(&q.access))
                                .with("arrived", time_json(q.arrived))
                        })
                        .collect(),
                ),
            )
            .with("loading", self.loading_json())
            .with("failed", Self::bool_list(&self.failed))
            .with("has_saved_state", Self::bool_list(&self.has_saved_state))
            .with("exec_busy_until", time_json(self.exec_busy_until))
            .with(
                "active_ctx",
                self.active_ctx.map_or(Json::Null, |c| ju64(c as u64)),
            )
            .with("models", Json::Arr(models))
            .with("stats", self.stats.snapshot_json()))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.restore_frame(state)?;
        // A cross-simulator restore trusts nothing: every context model is
        // force-parsed regardless of epochs.
        let models = snap::arr_field(state, "models")?;
        if models.len() != self.contexts.len() {
            return Err(snap::err(
                "snapshot context count does not match this fabric",
            ));
        }
        for (c, j) in self.contexts.iter_mut().zip(models) {
            let name = c.name().to_string();
            c.model
                .restore_state(j)
                .map_err(|e| snap::err(format!("context '{name}': {e}")))?;
        }
        Ok(())
    }

    fn restore_live(&mut self, state: &Json) -> SimResult<()> {
        self.restore_frame(state)?;
        // Live restore along a snapshot lineage: a context whose model
        // publishes a change epoch (`BusSlaveModel::change_epoch`) equal to
        // the document's recorded epoch has not been written between the
        // two points, so its (potentially large) context image is skipped.
        let models = snap::arr_field(state, "models")?;
        if models.len() != self.contexts.len() {
            return Err(snap::err(
                "snapshot context count does not match this fabric",
            ));
        }
        for (c, j) in self.contexts.iter_mut().zip(models) {
            if let Some(live) = c.model.change_epoch() {
                if j.get("epoch").and_then(drcf_kernel::json::ju64_of) == Some(live) {
                    continue;
                }
            }
            let name = c.name().to_string();
            c.model
                .restore_state(j)
                .map_err(|e| snap::err(format!("context '{name}': {e}")))?;
        }
        Ok(())
    }

    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Timer(TAG_EXEC_DONE) => {
                api.trace_end(
                    TraceCategory::Fabric,
                    "exec",
                    self.active_ctx.map_or(0, |c| c as u64),
                );
                self.pump(api);
            }
            MsgKind::Timer(TAG_EXTRA_DELAY_DONE) => self.install_loaded(api),
            MsgKind::Timer(TAG_FIXED_XFER_DONE) => self.transfer_complete(api),
            MsgKind::Start => {}
            _ => {
                // Configuration-port response?
                let msg = if let Some(port) = self.port.as_mut() {
                    match port.take_response(api, msg) {
                        Ok(resp) => {
                            self.on_bus_response(api, resp);
                            return;
                        }
                        Err(m) => m,
                    }
                } else {
                    msg
                };
                let msg = match msg.user::<SlaveAccess>() {
                    Ok(a) => {
                        self.on_slave_access(api, a);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.user::<ConfigTrainDone>() {
                    Ok(done) => {
                        self.on_train_done(api, done);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.user::<ConfigTrainRejected>() {
                    Ok(rej) => {
                        self.on_train_rejected(api, rej);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.user::<ConfigTrainDecoalesced>() {
                    Ok(d) => {
                        self.on_train_decoalesced(api, d);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok(done) = msg.user::<DirectReadDone>() {
                    self.on_direct_done(api, done);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextParams;
    use crate::scheduler::{EvictionPolicy, PrefetchPolicy};
    use drcf_bus::prelude::RegisterFile;
    use drcf_kernel::testing::some;

    fn ctx(name: &'static str, low: u64, words: u64) -> Context {
        Context::new(
            Box::new(RegisterFile::new(name, low, 8, 2)),
            ContextParams {
                config_size_words: words,
                ..ContextParams::default()
            },
        )
    }

    /// Driver that sends raw SlaveAccess messages straight to the DRCF
    /// (playing the role of the bus) and records replies.
    struct Driver {
        drcf: ComponentId,
        sends: Vec<(SimDuration, u64, BusOp, u64)>, // (when, addr, op, data)
        next_id: u64,
        pub replies: Vec<(SimTime, BusResponse)>,
    }

    impl Component for Driver {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match &msg.kind {
                MsgKind::Start => {
                    for (i, &(at, _, _, _)) in self.sends.iter().enumerate() {
                        api.obligation_begin();
                        api.timer(Delay::Time(at), i as u64);
                    }
                }
                MsgKind::Timer(i) => {
                    let (_, addr, op, data) = self.sends[*i as usize];
                    self.next_id += 1;
                    let req = drcf_bus::prelude::BusRequest {
                        id: self.next_id,
                        master: api.me(),
                        op,
                        addr,
                        burst: 1,
                        data: if op == BusOp::Write {
                            vec![data]
                        } else {
                            vec![]
                        },
                        priority: 0,
                    };
                    let me = api.me();
                    let drcf = self.drcf;
                    api.send(drcf, SlaveAccess { req, bus: me }, Delay::Delta);
                }
                _ => {
                    if let Ok(reply) = msg.user::<SlaveReply>() {
                        self.replies.push((api.now(), reply.resp));
                        api.obligation_end();
                    }
                }
            }
        }
    }

    fn fixed_rate_drcf(contexts: Vec<Context>, slots: usize) -> Drcf {
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::FixedRate {
                    words_per_cycle: 1,
                    clock_mhz: 100,
                },
                scheduler: SchedulerConfig {
                    slots,
                    ..SchedulerConfig::default()
                },
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: false,
            },
            contexts,
        )
    }

    fn run_driver(
        drcf: Drcf,
        sends: Vec<(SimDuration, u64, BusOp, u64)>,
    ) -> (Simulator, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let driver = sim.add(
            "driver",
            Driver {
                drcf: 1,
                sends,
                next_id: 0,
                replies: vec![],
            },
        );
        let fabric = sim.add("drcf", drcf);
        let r = sim.run();
        assert_eq!(r, Ok(StopReason::Quiescent));
        (sim, driver, fabric)
    }

    /// Like `run_driver` but for scenarios that end in a typed error.
    fn run_driver_err(
        drcf: Drcf,
        sends: Vec<(SimDuration, u64, BusOp, u64)>,
    ) -> (Simulator, ComponentId, ComponentId, SimError) {
        let mut sim = Simulator::new();
        let driver = sim.add(
            "driver",
            Driver {
                drcf: 1,
                sends,
                next_id: 0,
                replies: vec![],
            },
        );
        let fabric = sim.add("drcf", drcf);
        let err = sim.run().expect_err("scenario should end in a typed error");
        (sim, driver, fabric, err)
    }

    #[test]
    fn first_access_pays_reconfiguration() {
        // Context of 100 words at 1 word/cycle @100MHz = 1000ns transfer.
        // Execution: RegisterFile 2 cycles = 20ns.
        let drcf = fixed_rate_drcf(vec![ctx("a", 0x000, 100)], 1);
        let (sim, driver, fabric) =
            run_driver(drcf, vec![(SimDuration::ZERO, 0x0, BusOp::Write, 42)]);
        let d = sim.get::<Driver>(driver);
        assert_eq!(d.replies.len(), 1);
        assert!(d.replies[0].1.is_ok());
        // Reply no earlier than load (1000ns) + exec (20ns).
        assert!(
            d.replies[0].0 >= SimTime::ZERO + SimDuration::ns(1020),
            "reply at {}",
            d.replies[0].0
        );
        let f = sim.get::<Drcf>(fabric);
        assert_eq!(f.stats.misses, 1);
        assert_eq!(f.stats.hits, 0);
        assert_eq!(f.stats.switches, 1);
        assert_eq!(f.stats.config_words, 100);
        assert_eq!(f.stats.per_context[0].accesses, 1);
        assert!(f.stats.invariant_holds(sim.now()));
    }

    #[test]
    fn second_access_to_same_context_is_a_hit() {
        let drcf = fixed_rate_drcf(vec![ctx("a", 0x000, 100)], 1);
        let (sim, _, fabric) = run_driver(
            drcf,
            vec![
                (SimDuration::ZERO, 0x0, BusOp::Write, 1),
                (SimDuration::us(5), 0x0, BusOp::Read, 0),
            ],
        );
        let f = sim.get::<Drcf>(fabric);
        assert_eq!(f.stats.misses, 1);
        assert_eq!(f.stats.hits, 1);
        assert_eq!(f.stats.switches, 1, "no second reconfiguration");
    }

    #[test]
    fn alternating_contexts_thrash_a_single_slot() {
        let drcf = fixed_rate_drcf(vec![ctx("a", 0x000, 50), ctx("b", 0x100, 50)], 1);
        let (sim, driver, fabric) = run_driver(
            drcf,
            vec![
                (SimDuration::ZERO, 0x000, BusOp::Write, 1),
                (SimDuration::us(2), 0x100, BusOp::Write, 2),
                (SimDuration::us(4), 0x000, BusOp::Read, 0),
                (SimDuration::us(6), 0x100, BusOp::Read, 0),
            ],
        );
        let f = sim.get::<Drcf>(fabric);
        assert_eq!(f.stats.switches, 4, "every access reconfigures");
        assert_eq!(f.stats.misses, 4);
        assert_eq!(f.stats.config_words, 200);
        // State survives eviction (the model object persists; only fabric
        // residency changes) — reads return the written values.
        let d = sim.get::<Driver>(driver);
        assert_eq!(d.replies.len(), 4);
        assert!(d.replies.iter().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn two_slots_hold_both_contexts() {
        let drcf = fixed_rate_drcf(vec![ctx("a", 0x000, 50), ctx("b", 0x100, 50)], 2);
        let (sim, _, fabric) = run_driver(
            drcf,
            vec![
                (SimDuration::ZERO, 0x000, BusOp::Write, 1),
                (SimDuration::us(2), 0x100, BusOp::Write, 2),
                (SimDuration::us(4), 0x000, BusOp::Read, 0),
                (SimDuration::us(6), 0x100, BusOp::Read, 0),
            ],
        );
        let f = sim.get::<Drcf>(fabric);
        assert_eq!(f.stats.switches, 2, "each context loads once");
        assert_eq!(f.stats.hits, 2);
        assert_eq!(f.resident_contexts(), vec![0, 1]);
    }

    #[test]
    fn suspended_call_waits_for_switch_then_completes() {
        // Access to B arrives while A is loaded: must suspend, reconfigure,
        // then serve (§5.3 step 4).
        let drcf = fixed_rate_drcf(vec![ctx("a", 0x000, 10), ctx("b", 0x100, 1000)], 1);
        let (sim, driver, _) = run_driver(
            drcf,
            vec![
                (SimDuration::ZERO, 0x000, BusOp::Write, 1),
                (SimDuration::us(1), 0x100, BusOp::Write, 2),
            ],
        );
        let d = sim.get::<Driver>(driver);
        assert_eq!(d.replies.len(), 2);
        // B's reply must be at least 1us (arrival) + 10us (1000-word load).
        assert!(d.replies[1].0 >= SimTime::ZERO + SimDuration::us(11));
    }

    #[test]
    fn unclaimed_address_gets_slave_error() {
        let drcf = fixed_rate_drcf(vec![ctx("a", 0x000, 10)], 1);
        let (sim, driver, _) = run_driver(drcf, vec![(SimDuration::ZERO, 0x500, BusOp::Read, 0)]);
        let d = sim.get::<Driver>(driver);
        assert_eq!(d.replies[0].1.status, BusStatus::SlaveError);
    }

    #[test]
    fn too_big_context_fails_cleanly() {
        let mut big = ctx("big", 0x000, 10);
        big.params.slots_needed = 4;
        let drcf = Drcf::new(
            DrcfConfig {
                scheduler: SchedulerConfig {
                    slots: 2,
                    ..SchedulerConfig::default()
                },
                ..DrcfConfig::default()
            },
            vec![big, ctx("ok", 0x100, 10)],
        );
        let (sim, driver, _, err) = run_driver_err(
            drcf,
            vec![
                (SimDuration::ZERO, 0x000, BusOp::Write, 1), // impossible
                (SimDuration::ns(10), 0x100, BusOp::Write, 2), // fine
            ],
        );
        // The impossible load is a typed scheduler error, but the other
        // context still gets served: faults are isolated, not fatal.
        assert_eq!(err.kind, SimErrorKind::Scheduler);
        assert_eq!(err.component.as_deref(), Some("drcf"));
        let d = sim.get::<Driver>(driver);
        assert_eq!(d.replies.len(), 2);
        let too_big = some(d.replies.iter().find(|(_, r)| r.addr == 0x000));
        assert_eq!(too_big.1.status, BusStatus::SlaveError);
        let ok = some(d.replies.iter().find(|(_, r)| r.addr == 0x100));
        assert!(ok.1.is_ok());
        assert!(sim.reports().has_errors(), "error was logged");
    }

    #[test]
    fn injected_load_abort_fails_the_context() {
        let cfg = DrcfConfig {
            abort_load_of: vec![0],
            ..DrcfConfig::default()
        };
        let drcf = Drcf::new(cfg, vec![ctx("victim", 0x000, 10), ctx("ok", 0x100, 10)]);
        let (sim, driver, fabric, err) = run_driver_err(
            drcf,
            vec![
                (SimDuration::ZERO, 0x000, BusOp::Write, 1), // aborted mid-load
                (SimDuration::us(1), 0x100, BusOp::Write, 2), // unaffected
            ],
        );
        assert_eq!(err.kind, SimErrorKind::ConfigLoad);
        assert!(err.message.contains("victim"), "{}", err.message);
        let d = sim.get::<Driver>(driver);
        assert_eq!(d.replies.len(), 2, "both accesses get replies");
        let aborted = some(d.replies.iter().find(|(_, r)| r.addr == 0x000));
        assert_eq!(aborted.1.status, BusStatus::SlaveError);
        let fine = some(d.replies.iter().find(|(_, r)| r.addr == 0x100));
        assert!(fine.1.is_ok());
        let f = sim.get::<Drcf>(fabric);
        assert_eq!(f.resident_contexts(), vec![1], "victim never installed");
    }

    #[test]
    fn try_new_rejects_overlap_with_typed_error() {
        let Err(err) = Drcf::try_new(
            DrcfConfig::default(),
            vec![ctx("a", 0x000, 10), ctx("b", 0x004, 10)],
        ) else {
            unreachable!("overlapping ranges must be rejected")
        };
        assert_eq!(err.kind, SimErrorKind::Validation);
        assert!(err.message.contains("overlap"), "{}", err.message);
        let empty = Drcf::try_new(DrcfConfig::default(), vec![]);
        assert_eq!(empty.err().map(|e| e.kind), Some(SimErrorKind::Validation));
    }

    #[test]
    #[should_panic(expected = "interface ranges overlap")]
    fn overlapping_context_ranges_rejected() {
        let _ = fixed_rate_drcf(vec![ctx("a", 0x000, 10), ctx("b", 0x004, 10)], 1);
    }

    #[test]
    fn last_successor_prefetch_hides_reload() {
        // Pattern A,B,A,B,... with 2 slots, LastSuccessor prediction and
        // background loading: after the pattern is learned, switches keep
        // happening but prefetched loads turn them into hits.
        let build = |prefetch: bool| {
            Drcf::new(
                DrcfConfig {
                    clock_mhz: 100,
                    config_path: ConfigPath::FixedRate {
                        words_per_cycle: 1,
                        clock_mhz: 100,
                    },
                    scheduler: SchedulerConfig {
                        slots: 1,
                        prefetch: if prefetch {
                            PrefetchPolicy::LastSuccessor
                        } else {
                            PrefetchPolicy::None
                        },
                        ..SchedulerConfig::default()
                    },
                    overlap_load_exec: true,
                    abort_load_of: vec![],
                    coalesce_config_traffic: false,
                },
                vec![ctx("a", 0x000, 400), ctx("b", 0x100, 400)],
            )
        };
        let run = |prefetch: bool| {
            let sends = (0..10u64)
                .map(|i| {
                    let addr = if i % 2 == 0 { 0x000 } else { 0x100 };
                    (SimDuration::us(20 * i), addr, BusOp::Write, i)
                })
                .collect();
            let (sim, _, fabric) = run_driver(build(prefetch), sends);
            let f = sim.get::<Drcf>(fabric);
            (f.stats.prefetches, f.stats.prefetch_hits, sim.now())
        };
        let (p0, h0, _) = run(false);
        assert_eq!(p0, 0);
        assert_eq!(h0, 0);
        let (p1, h1, _) = run(true);
        assert!(p1 > 0, "prefetches must be issued");
        assert!(h1 > 0, "some prefetches must be used");
    }

    #[test]
    fn fifo_eviction_end_to_end() {
        // 2 slots, FIFO eviction, access pattern a,b,c: c must evict a
        // (oldest load), leaving {b, c} resident.
        let drcf = Drcf::new(
            DrcfConfig {
                scheduler: SchedulerConfig {
                    slots: 2,
                    eviction: EvictionPolicy::Fifo,
                    ..SchedulerConfig::default()
                },
                ..DrcfConfig::default()
            },
            vec![
                ctx("a", 0x000, 10),
                ctx("b", 0x100, 10),
                ctx("c", 0x200, 10),
            ],
        );
        let (sim, _, fabric) = run_driver(
            drcf,
            vec![
                (SimDuration::ZERO, 0x000, BusOp::Write, 1),
                (SimDuration::us(1), 0x100, BusOp::Write, 2),
                (SimDuration::us(2), 0x000, BusOp::Read, 0), // recency bump for a
                (SimDuration::us(3), 0x200, BusOp::Write, 3),
            ],
        );
        let f = sim.get::<Drcf>(fabric);
        // FIFO ignores the recency bump: a (oldest load) is evicted.
        assert_eq!(f.resident_contexts(), vec![1, 2]);
    }

    #[test]
    fn stateful_contexts_pay_save_and_restore_traffic() {
        // Two contexts, 50-word images; context A additionally carries 30
        // words of live state. Sequence: A (load), B (evict A -> save 30),
        // A (restore 30 + image), B (evict A -> save 30 again).
        let mut a = ctx("a", 0x000, 50);
        a.params.state_words = 30;
        a.params.state_addr = 0x800;
        let b = ctx("b", 0x100, 50);
        let drcf = fixed_rate_drcf(vec![a, b], 1);
        let (sim, _, fabric) = run_driver(
            drcf,
            vec![
                (SimDuration::ZERO, 0x000, BusOp::Write, 1),
                (SimDuration::us(2), 0x100, BusOp::Write, 2),
                (SimDuration::us(4), 0x000, BusOp::Read, 0),
                (SimDuration::us(6), 0x100, BusOp::Write, 3),
            ],
        );
        let f = sim.get::<Drcf>(fabric);
        assert_eq!(f.stats.switches, 4);
        assert_eq!(f.stats.config_words, 4 * 50);
        // Saves: at switches 2 and 4 (A evicted, 30 words each).
        // Restore: at switch 3 (A reloads its saved state, 30 words).
        assert_eq!(f.stats.state_words, 3 * 30);
    }

    #[test]
    fn first_load_of_stateful_context_does_not_restore() {
        let mut a = ctx("a", 0x000, 50);
        a.params.state_words = 100;
        a.params.state_addr = 0x800;
        let drcf = fixed_rate_drcf(vec![a], 1);
        let (sim, _, fabric) = run_driver(drcf, vec![(SimDuration::ZERO, 0x000, BusOp::Write, 1)]);
        let f = sim.get::<Drcf>(fabric);
        assert_eq!(f.stats.switches, 1);
        assert_eq!(
            f.stats.state_words, 0,
            "nothing saved yet, nothing restored"
        );
    }

    #[test]
    fn state_traffic_lengthens_the_switch() {
        // Identical thrash with and without state: the stateful variant's
        // makespan must exceed the stateless one by the extra words.
        let run = |state_words: u64| {
            let mut a = ctx("a", 0x000, 100);
            a.params.state_words = state_words;
            a.params.state_addr = 0x800;
            let mut b = ctx("b", 0x100, 100);
            b.params.state_words = state_words;
            b.params.state_addr = 0x900;
            let drcf = fixed_rate_drcf(vec![a, b], 1);
            let (sim, _, _) = run_driver(
                drcf,
                (0..6u64)
                    .map(|i| {
                        let addr = if i % 2 == 0 { 0x000 } else { 0x100 };
                        (SimDuration::us(20 * i), addr, BusOp::Write, i)
                    })
                    .collect(),
            );
            sim.now().as_fs()
        };
        let stateless = run(0);
        let stateful = run(200);
        assert!(
            stateful > stateless,
            "state save/restore must cost time: {stateful} vs {stateless}"
        );
    }

    #[test]
    fn fabric_spans_balance_even_when_a_load_aborts() {
        // Context 0's load is aborted by fault injection: its lane-1 switch
        // span must still be closed, and every exec begin must pair with an
        // end. Mix in a healthy context so both code paths run.
        let cfg = DrcfConfig {
            abort_load_of: vec![0],
            ..DrcfConfig::default()
        };
        let drcf = Drcf::new(cfg, vec![ctx("victim", 0x000, 10), ctx("ok", 0x100, 10)]);
        let mut sim = Simulator::new();
        sim.enable_observe(4096);
        let _driver = sim.add(
            "driver",
            Driver {
                drcf: 1,
                sends: vec![
                    (SimDuration::ZERO, 0x000, BusOp::Write, 1),
                    (SimDuration::us(1), 0x100, BusOp::Write, 2),
                    (SimDuration::us(2), 0x100, BusOp::Read, 0),
                ],
                next_id: 0,
                replies: vec![],
            },
        );
        let _fabric = sim.add("drcf", drcf);
        let _ = sim.run();
        let events = sim.observe_events();
        let begins = |name: &str| {
            events
                .iter()
                .filter(|e| e.kind == TraceEventKind::Begin && e.name == name)
                .count()
        };
        let ends = |name: &str| {
            events
                .iter()
                .filter(|e| e.kind == TraceEventKind::End && e.name == name)
                .count()
        };
        assert!(begins("exec") > 0, "exec spans were recorded");
        assert_eq!(begins("exec"), ends("exec"));
        assert_eq!(begins("switch"), 2, "one load per context was started");
        assert_eq!(begins("switch"), ends("switch"), "abort closes its span");
        assert!(
            events
                .iter()
                .any(|e| e.kind == TraceEventKind::Instant && e.name == "load_aborted"),
            "the aborted load leaves an instant marker"
        );
        assert!(events
            .iter()
            .any(|e| e.kind == TraceEventKind::Counter && e.name == "misses"));
    }

    #[test]
    fn accounting_invariant_across_runs() {
        let drcf = fixed_rate_drcf(vec![ctx("a", 0x000, 200), ctx("b", 0x100, 300)], 1);
        let mut sends = Vec::new();
        for i in 0..10u64 {
            let addr = if i % 2 == 0 { 0x000 } else { 0x100 };
            sends.push((SimDuration::us(10 * i), addr, BusOp::Write, i));
        }
        let (sim, _, fabric) = run_driver(drcf, sends);
        let f = sim.get::<Drcf>(fabric);
        assert!(f.stats.invariant_holds(sim.now()));
        assert_eq!(f.stats.switches, 10);
        assert_eq!(
            f.stats.config_words,
            5 * 200 + 5 * 300,
            "every switch streams its context"
        );
    }
}
