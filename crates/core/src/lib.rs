//! # drcf-core — the Dynamically Reconfigurable Fabric model
//!
//! The primary contribution of "System-Level Modeling of Dynamically
//! Reconfigurable Hardware with SystemC" (RAW/IPDPS 2003), rebuilt in Rust
//! on the `drcf-kernel` event engine and the `drcf-bus` substrate:
//!
//! * [`context`] — functionalities time-multiplexed on the fabric, carrying
//!   the §5.3 parameter set (configuration address, size, extra delay);
//! * [`scheduler`] — the context scheduler: reactive (the paper's policy),
//!   plus multi-slot residency, LRU/FIFO eviction and prefetching;
//! * [`fabric`] — the `Drcf` bus component: interface union, call
//!   suspension during switches, configuration-memory traffic generation,
//!   and the step-5 instrumentation;
//! * [`stats`] — per-context active time, reconfiguration time, hit/miss
//!   and traffic counters with the accounting invariant;
//! * [`technology`] — Virtex-II Pro / VariCore / MorphoSys presets built
//!   from the paper's Chapter-3 figures;
//! * [`power`] — the power/energy extension §5.3 anticipates;
//! * [`partial`] — partial-reconfiguration region planning.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod context;
pub mod fabric;
pub mod partial;
pub mod power;
pub mod scheduler;
pub mod stats;
pub mod technology;

/// Commonly used items.
pub mod prelude {
    pub use crate::context::{Context, ContextId, ContextParams};
    pub use crate::fabric::{ConfigPath, Drcf, DrcfConfig};
    pub use crate::partial::{plan_context, plan_contexts, FabricGeometry};
    pub use crate::power::{energy_of_run, EnergyReport, PowerModel};
    pub use crate::scheduler::{
        ContextScheduler, EvictionPolicy, Lookup, PrefetchPolicy, SchedulerConfig,
    };
    pub use crate::stats::{
        ContextStats, FabricEvent, FabricEventKind, FabricStats, ReconfigTimeline, TimelineRow,
    };
    pub use crate::technology::{
        all_presets, morphosys, varicore, virtex2_pro, Granularity, Technology,
    };
}
