//! Contexts: the functionalities time-multiplexed onto a DRCF.
//!
//! A context couples a functional model (any [`BusSlaveModel`] — the same
//! trait a standalone hardware accelerator implements, which is what makes
//! the §5.2 transformation behavior-preserving) with the per-context
//! parameters the paper's §5.3 enumerates:
//!
//! 1. the memory address where the context's configuration is allocated,
//! 2. the size of the context (configuration data volume),
//! 3. delays associated with the reconfiguration process *in addition to*
//!    the memory transfer delays.
//!
//! Plus the forward-looking parameters §5.3 anticipates ("other parameters,
//! such as dealing with partial reconfiguration or power consumption may be
//! devised"): an area footprint used for partial-reconfiguration region
//! planning, and power figures used by the energy extension.

use drcf_bus::prelude::{Addr, BusSlaveModel};
use drcf_kernel::prelude::SimDuration;

/// Index of a context within one DRCF.
pub type ContextId = usize;

/// The §5.3 parameter set for one context.
#[derive(Debug, Clone)]
pub struct ContextParams {
    /// §5.3 (1): configuration storage address in the configuration memory
    /// (word units).
    pub config_addr: Addr,
    /// §5.3 (2): configuration size in memory words.
    pub config_size_words: u64,
    /// §5.3 (3): reconfiguration delay beyond the memory transfers
    /// (configuration decompression, net settling, ...).
    pub extra_reconfig_delay: SimDuration,
    /// Area footprint in equivalent gates (drives region planning and the
    /// technology-derived defaults).
    pub gate_count: u64,
    /// Fabric regions (scheduler slots) this context occupies when loaded.
    pub slots_needed: usize,
    /// Dynamic power while this context is active, in mW (power extension).
    pub active_power_mw: f64,
    /// Live state the context keeps in fabric registers/RAM, in memory
    /// words. A stateful context must *save* this on eviction and
    /// *restore* it after its configuration loads — extra memory traffic
    /// on top of the §5.3 configuration transfers. Zero = stateless.
    pub state_words: u64,
    /// Memory address of the context's state save area (used only when
    /// `state_words > 0`).
    pub state_addr: Addr,
}

impl Default for ContextParams {
    fn default() -> Self {
        ContextParams {
            config_addr: 0,
            config_size_words: 256,
            extra_reconfig_delay: SimDuration::ZERO,
            gate_count: 10_000,
            slots_needed: 1,
            active_power_mw: 50.0,
            state_words: 0,
            state_addr: 0,
        }
    }
}

impl ContextParams {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.config_size_words == 0 {
            return Err("context configuration size must be nonzero".into());
        }
        if self.slots_needed == 0 {
            return Err("a context must occupy at least one slot".into());
        }
        Ok(())
    }
}

/// A functionality mapped onto the fabric: model + parameters.
pub struct Context {
    /// The functional model (identical to the standalone accelerator's).
    pub model: Box<dyn BusSlaveModel>,
    /// Reconfiguration parameters.
    pub params: ContextParams,
}

impl Context {
    /// Bundle a model with its parameters.
    pub fn new(model: Box<dyn BusSlaveModel>, params: ContextParams) -> Self {
        Context { model, params }
    }

    /// Does this context claim `addr` on the component interface bus?
    pub fn claims(&self, addr: Addr) -> bool {
        (self.model.low_addr()..=self.model.high_addr()).contains(&addr)
    }

    /// Context name (from the model).
    pub fn name(&self) -> &str {
        self.model.model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_bus::prelude::RegisterFile;

    #[test]
    fn params_validation() {
        assert!(ContextParams::default().validate().is_ok());
        let bad_size = ContextParams {
            config_size_words: 0,
            ..ContextParams::default()
        };
        assert!(bad_size.validate().is_err());
        let bad_slots = ContextParams {
            slots_needed: 0,
            ..ContextParams::default()
        };
        assert!(bad_slots.validate().is_err());
    }

    #[test]
    fn context_claims_its_model_range() {
        let ctx = Context::new(
            Box::new(RegisterFile::new("hwa", 0x200, 8, 1)),
            ContextParams::default(),
        );
        assert!(ctx.claims(0x200));
        assert!(ctx.claims(0x207));
        assert!(!ctx.claims(0x208));
        assert!(!ctx.claims(0x1FF));
        assert_eq!(ctx.name(), "hwa");
    }
}
