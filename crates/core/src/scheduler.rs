//! The context scheduler — resident-set management for the fabric.
//!
//! The paper's scheduler (§5.3) is *reactive*: a call targeting a
//! non-active context triggers a context switch on demand. This module
//! implements that policy plus the two extensions the related work points
//! at: multi-slot residency (MorphoSys keeps 32 contexts in its context
//! memory) with LRU/FIFO eviction, and prefetching (load the predicted
//! next context while the fabric is otherwise occupied — "while the RC
//! array is executing one of the 16 contexts, the other 16 contexts can be
//! reloaded").
//!
//! The scheduler is a pure data structure (no kernel coupling); the
//! [`crate::fabric::Drcf`] component drives it. That keeps every policy
//! decision unit- and property-testable in isolation.

use crate::context::ContextId;
use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::{SimError, SimErrorKind, SimResult};
use drcf_kernel::snapshot::{self as snap, Snapshotable};

/// How the next context to prefetch is predicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No prefetching — the paper's reactive scheduler.
    None,
    /// A static context sequence is known (compile-time schedule, as in the
    /// Maestre et al. framework the paper cites \[5\]); prefetch the next
    /// element after the most recently activated one.
    Sequence(Vec<ContextId>),
    /// Predict that the successor observed last time will recur
    /// (first-order Markov).
    LastSuccessor,
}

/// Which resident context to sacrifice when slots run out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Oldest load first.
    Fifo,
}

/// Scheduler parameters.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Fabric slots (regions). 1 = classic single-context device; larger
    /// values model multi-context stores and partial reconfiguration.
    pub slots: usize,
    /// Prefetch policy.
    pub prefetch: PrefetchPolicy,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            slots: 1,
            prefetch: PrefetchPolicy::None,
            eviction: EvictionPolicy::Lru,
        }
    }
}

#[derive(Debug, Clone)]
struct Resident {
    slots: Vec<usize>,
    last_used: u64,
    loaded_seq: u64,
    prefetched: bool,
}

/// Outcome of a residency lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The context is loaded; forward the call (§5.3 step 2).
    Resident,
    /// A context switch is required (§5.3 step 3); evict these contexts
    /// first (possibly none).
    Load {
        /// Victims to evict, in eviction order.
        evict: Vec<ContextId>,
    },
    /// The context needs more slots than the fabric has even when empty.
    TooBig,
    /// Not enough evictable slots right now (all occupied by protected
    /// contexts); the caller must retry later.
    NoRoom,
}

/// Resident-set manager.
pub struct ContextScheduler {
    cfg: SchedulerConfig,
    slots_needed: Vec<usize>,
    resident: Vec<Option<Resident>>,
    free_slots: usize,
    tick: u64,
    load_seq: u64,
    successor: Vec<Option<ContextId>>,
    last_activated: Option<ContextId>,
}

impl ContextScheduler {
    /// New scheduler for `slots_needed.len()` contexts.
    pub fn new(cfg: SchedulerConfig, slots_needed: Vec<usize>) -> Self {
        assert!(cfg.slots > 0, "fabric must have at least one slot");
        let n = slots_needed.len();
        ContextScheduler {
            free_slots: cfg.slots,
            cfg,
            slots_needed,
            resident: vec![None; n],
            tick: 0,
            load_seq: 0,
            successor: vec![None; n],
            last_activated: None,
        }
    }

    /// Number of contexts managed.
    pub fn context_count(&self) -> usize {
        self.resident.len()
    }

    /// Is `c` currently loaded?
    pub fn is_resident(&self, c: ContextId) -> bool {
        self.resident[c].is_some()
    }

    /// Currently resident contexts, in id order.
    pub fn resident_set(&self) -> Vec<ContextId> {
        (0..self.resident.len())
            .filter(|&c| self.resident[c].is_some())
            .collect()
    }

    /// Free slot count.
    pub fn free_slots(&self) -> usize {
        self.free_slots
    }

    /// Decide how to make `c` resident, never evicting `protected`
    /// contexts (the fabric protects the one currently executing and the
    /// one currently loading).
    pub fn lookup(&self, c: ContextId, protected: &[ContextId]) -> Lookup {
        if self.resident[c].is_some() {
            return Lookup::Resident;
        }
        let need = self.slots_needed[c];
        if need > self.cfg.slots {
            return Lookup::TooBig;
        }
        if need <= self.free_slots {
            return Lookup::Load { evict: vec![] };
        }
        // Rank victims by policy.
        let mut victims: Vec<(u64, ContextId, usize)> = self
            .resident
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.as_ref().map(|r| (id, r)))
            .filter(|(id, _)| !protected.contains(id))
            .map(|(id, r)| {
                let rank = match self.cfg.eviction {
                    EvictionPolicy::Lru => r.last_used,
                    EvictionPolicy::Fifo => r.loaded_seq,
                };
                (rank, id, r.slots.len())
            })
            .collect();
        victims.sort_unstable();
        let mut freed = self.free_slots;
        let mut evict = Vec::new();
        for (_, id, slots) in victims {
            if freed >= need {
                break;
            }
            evict.push(id);
            freed += slots;
        }
        if freed >= need {
            Lookup::Load { evict }
        } else {
            Lookup::NoRoom
        }
    }

    /// Remove `c` from the fabric. Evicting a context that is not resident
    /// is a scheduler accounting violation and yields a typed
    /// [`SimErrorKind::Scheduler`] error instead of panicking.
    pub fn evict(&mut self, c: ContextId) -> SimResult<()> {
        let Some(r) = self.resident[c].take() else {
            return Err(SimError::new(
                SimErrorKind::Scheduler,
                format!("evicting non-resident context {c}"),
            ));
        };
        self.free_slots += r.slots.len();
        Ok(())
    }

    /// Mark `c` loaded (after its configuration finished streaming in).
    /// Errors on a double install or when the free-slot accounting says
    /// there is no room — both scheduler invariant violations.
    pub fn install(&mut self, c: ContextId, prefetched: bool) -> SimResult<()> {
        if self.resident[c].is_some() {
            return Err(SimError::new(
                SimErrorKind::Scheduler,
                format!("double install of context {c}"),
            ));
        }
        let need = self.slots_needed[c];
        if need > self.free_slots {
            return Err(SimError::new(
                SimErrorKind::Scheduler,
                format!(
                    "install without room: need {need}, free {}",
                    self.free_slots
                ),
            ));
        }
        self.free_slots -= need;
        self.load_seq += 1;
        self.tick += 1;
        self.resident[c] = Some(Resident {
            slots: (0..need).collect(),
            last_used: self.tick,
            loaded_seq: self.load_seq,
            prefetched,
        });
        Ok(())
    }

    /// Record a use of resident context `c` (updates recency and the
    /// successor model). Returns `Ok(true)` when this is the first use of a
    /// prefetched load — a prefetch hit — and a
    /// [`SimErrorKind::Scheduler`] error when `c` is not resident.
    pub fn note_use(&mut self, c: ContextId) -> SimResult<bool> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(prev) = self.last_activated {
            if prev != c {
                self.successor[prev] = Some(c);
            }
        }
        self.last_activated = Some(c);
        let Some(r) = self.resident[c].as_mut() else {
            return Err(SimError::new(
                SimErrorKind::Scheduler,
                format!("note_use on non-resident context {c}"),
            ));
        };
        r.last_used = tick;
        Ok(std::mem::take(&mut r.prefetched))
    }

    fn restore_resident(&mut self, j: &Json) -> SimResult<()> {
        for (slot, e) in self
            .resident
            .iter_mut()
            .zip(snap::arr_field(j, "resident")?)
        {
            *slot = match e {
                Json::Null => None,
                e => Some(Resident {
                    slots: snap::usize_list(e, "slots")?,
                    last_used: snap::u64_field(e, "last_used")?,
                    loaded_seq: snap::u64_field(e, "loaded_seq")?,
                    prefetched: snap::bool_field(e, "prefetched")?,
                }),
            };
        }
        Ok(())
    }

    /// Predict the context worth prefetching after `current`, if any.
    pub fn predict_next(&self, current: ContextId) -> Option<ContextId> {
        let pred = match &self.cfg.prefetch {
            PrefetchPolicy::None => None,
            PrefetchPolicy::Sequence(seq) => {
                let pos = seq.iter().position(|&c| c == current)?;
                Some(seq[(pos + 1) % seq.len()])
            }
            PrefetchPolicy::LastSuccessor => self.successor[current],
        }?;
        if pred != current && !self.is_resident(pred) {
            Some(pred)
        } else {
            None
        }
    }
}

impl Snapshotable for ContextScheduler {
    fn snapshot_json(&self) -> Json {
        Json::obj()
            .with(
                "resident",
                Json::Arr(
                    self.resident
                        .iter()
                        .map(|r| match r {
                            None => Json::Null,
                            Some(r) => Json::obj()
                                .with("slots", snap::usize_list_json(&r.slots))
                                .with("last_used", ju64(r.last_used))
                                .with("loaded_seq", ju64(r.loaded_seq))
                                .with("prefetched", Json::Bool(r.prefetched)),
                        })
                        .collect(),
                ),
            )
            .with("free_slots", ju64(self.free_slots as u64))
            .with("tick", ju64(self.tick))
            .with("load_seq", ju64(self.load_seq))
            .with(
                "successor",
                Json::Arr(
                    self.successor
                        .iter()
                        .map(|s| s.map_or(Json::Null, |c| ju64(c as u64)))
                        .collect(),
                ),
            )
            .with(
                "last_activated",
                self.last_activated.map_or(Json::Null, |c| ju64(c as u64)),
            )
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        let n = self.resident.len();
        let shape_ok = snap::arr_field(state, "resident")?.len() == n
            && snap::arr_field(state, "successor")?.len() == n;
        if !shape_ok {
            return Err(snap::err(
                "scheduler snapshot context count does not match this fabric",
            ));
        }
        self.restore_resident(state)?;
        self.free_slots = snap::usize_field(state, "free_slots")?;
        self.tick = snap::u64_field(state, "tick")?;
        self.load_seq = snap::u64_field(state, "load_seq")?;
        for (slot, e) in self
            .successor
            .iter_mut()
            .zip(snap::arr_field(state, "successor")?)
        {
            *slot = match e {
                Json::Null => None,
                e => Some(
                    drcf_kernel::json::ju64_of(e)
                        .ok_or_else(|| snap::err("successor entry is not a context id"))?
                        as ContextId,
                ),
            };
        }
        self.last_activated = match snap::field(state, "last_activated")? {
            Json::Null => None,
            j => Some(
                drcf_kernel::json::ju64_of(j)
                    .ok_or_else(|| snap::err("last_activated is not a context id"))?
                    as ContextId,
            ),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcf_kernel::testing::ok;

    fn sched(slots: usize, contexts: usize) -> ContextScheduler {
        ContextScheduler::new(
            SchedulerConfig {
                slots,
                ..SchedulerConfig::default()
            },
            vec![1; contexts],
        )
    }

    #[test]
    fn single_slot_reactive_swapping() {
        let mut s = sched(1, 3);
        assert_eq!(s.lookup(0, &[]), Lookup::Load { evict: vec![] });
        ok(s.install(0, false));
        assert!(s.is_resident(0));
        assert_eq!(s.lookup(0, &[]), Lookup::Resident);
        // Context 1 must evict 0.
        assert_eq!(s.lookup(1, &[]), Lookup::Load { evict: vec![0] });
        ok(s.evict(0));
        ok(s.install(1, false));
        assert_eq!(s.resident_set(), vec![1]);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = sched(2, 3);
        ok(s.install(0, false));
        ok(s.note_use(0));
        ok(s.install(1, false));
        ok(s.note_use(1));
        ok(s.note_use(0)); // 0 is now more recent than 1
        assert_eq!(s.lookup(2, &[]), Lookup::Load { evict: vec![1] });
    }

    #[test]
    fn fifo_evicts_oldest_load() {
        let mut s = ContextScheduler::new(
            SchedulerConfig {
                slots: 2,
                eviction: EvictionPolicy::Fifo,
                ..SchedulerConfig::default()
            },
            vec![1; 3],
        );
        ok(s.install(0, false));
        ok(s.install(1, false));
        ok(s.note_use(0)); // recency irrelevant for FIFO
        assert_eq!(s.lookup(2, &[]), Lookup::Load { evict: vec![0] });
    }

    #[test]
    fn protected_contexts_are_never_victims() {
        let mut s = sched(1, 2);
        ok(s.install(0, false));
        assert_eq!(s.lookup(1, &[0]), Lookup::NoRoom);
        assert_eq!(s.lookup(1, &[]), Lookup::Load { evict: vec![0] });
    }

    #[test]
    fn too_big_detected() {
        let s = ContextScheduler::new(
            SchedulerConfig {
                slots: 2,
                ..SchedulerConfig::default()
            },
            vec![1, 3],
        );
        assert_eq!(s.lookup(1, &[]), Lookup::TooBig);
    }

    #[test]
    fn multi_slot_context_evicts_several() {
        let mut s = ContextScheduler::new(
            SchedulerConfig {
                slots: 3,
                ..SchedulerConfig::default()
            },
            vec![1, 1, 3],
        );
        ok(s.install(0, false));
        ok(s.install(1, false));
        assert_eq!(s.free_slots(), 1);
        assert_eq!(
            s.lookup(2, &[]),
            Lookup::Load { evict: vec![0, 1] },
            "needs both residents out"
        );
    }

    #[test]
    fn sequence_prefetch_predicts_next() {
        let s = ContextScheduler::new(
            SchedulerConfig {
                slots: 2,
                prefetch: PrefetchPolicy::Sequence(vec![0, 1, 2]),
                ..SchedulerConfig::default()
            },
            vec![1; 3],
        );
        assert_eq!(s.predict_next(0), Some(1));
        assert_eq!(s.predict_next(2), Some(0), "sequence wraps");
    }

    #[test]
    fn last_successor_learns() {
        let mut s = ContextScheduler::new(
            SchedulerConfig {
                slots: 3,
                prefetch: PrefetchPolicy::LastSuccessor,
                ..SchedulerConfig::default()
            },
            vec![1; 3],
        );
        ok(s.install(0, false));
        ok(s.install(1, false));
        assert_eq!(s.predict_next(0), None, "nothing learned yet");
        ok(s.note_use(0));
        ok(s.note_use(1)); // successor[0] = 1
        ok(s.evict(1));
        assert_eq!(s.predict_next(0), Some(1));
        // A resident prediction is suppressed.
        ok(s.install(1, false));
        assert_eq!(s.predict_next(0), None);
    }

    #[test]
    fn prefetch_hit_reported_once() {
        let mut s = sched(2, 2);
        ok(s.install(0, true));
        assert!(
            ok(s.note_use(0)),
            "first use of a prefetched context is a hit"
        );
        assert!(!ok(s.note_use(0)), "only counted once");
        ok(s.install(1, false));
        assert!(!ok(s.note_use(1)), "demand load is not a prefetch hit");
    }

    #[test]
    fn free_slot_accounting() {
        let mut s = ContextScheduler::new(
            SchedulerConfig {
                slots: 4,
                ..SchedulerConfig::default()
            },
            vec![2, 2],
        );
        assert_eq!(s.free_slots(), 4);
        ok(s.install(0, false));
        assert_eq!(s.free_slots(), 2);
        ok(s.install(1, false));
        assert_eq!(s.free_slots(), 0);
        ok(s.evict(0));
        assert_eq!(s.free_slots(), 2);
    }

    #[test]
    fn double_install_is_a_typed_error() {
        let mut s = sched(2, 1);
        ok(s.install(0, false));
        let err = s.install(0, false).expect_err("second install must fail");
        assert_eq!(err.kind, SimErrorKind::Scheduler);
        assert!(err.message.contains("double install"), "{}", err.message);
    }
}
