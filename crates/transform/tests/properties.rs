//! Property tests for the design IR and the transformation pipeline:
//! hierarchy navigation, structural checking, and idempotence/cleanliness
//! properties of the rewrite.

use drcf_core::prelude::{morphosys, FabricGeometry};
use drcf_transform::prelude::*;
use proptest::prelude::*;

fn opts() -> TemplateOptions {
    TemplateOptions::new(morphosys(), FabricGeometry::new(64_000, 1))
}

fn split() -> ConfigTransport {
    ConfigTransport::SharedInterfaceBus {
        split_transactions: true,
    }
}

/// Build a random two-level hierarchy from the example design by moving a
/// subset of instances into nested islands.
fn scatter(n: usize, island_mask: u32) -> Design {
    let mut d = example_design(n);
    let mut moved = Vec::new();
    let mut kept = Vec::new();
    for (i, inst) in d.top.instances.drain(..).enumerate() {
        if island_mask & (1 << i) != 0 {
            moved.push(inst);
        } else {
            kept.push(inst);
        }
    }
    d.top.instances = kept;
    if !moved.is_empty() {
        d.top.children.push(HierModule {
            name: "island".into(),
            instances: moved,
            children: vec![],
        });
    }
    d
}

proptest! {
    /// find_instance always returns a path that module_at resolves, and
    /// the resolved module really contains the instance.
    #[test]
    fn hierarchy_navigation_roundtrip(n in 1usize..6, island_mask in 0u32..32) {
        let d = scatter(n, island_mask);
        prop_assert!(d.check().is_ok());
        for i in 0..n {
            let name = format!("hwa{i}");
            let path = d.top.find_instance(&name).expect("instance exists");
            let m = d.top.module_at(&path).expect("path resolves");
            prop_assert!(m.instances.iter().any(|x| x.name == name));
        }
        prop_assert_eq!(d.top.all_instances().len(), n);
    }

    /// The transformation is legal exactly when all candidates share one
    /// hierarchical parent (limitation 1), holding everything else fixed.
    #[test]
    fn legality_matches_limitation_1(n in 2usize..6, island_mask in 0u32..32,
                                     cand_mask in 1u32..32) {
        let d = scatter(n, island_mask);
        let candidates: Vec<String> = (0..n)
            .filter(|i| cand_mask & (1 << i) != 0)
            .map(|i| format!("hwa{i}"))
            .collect();
        prop_assume!(candidates.len() >= 2);
        let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();
        // Same parent iff all candidates are on the same side of the mask.
        let sides: Vec<bool> = (0..n)
            .filter(|i| cand_mask & (1 << i) != 0)
            .map(|i| island_mask & (1 << i) != 0)
            .collect();
        let same_parent = sides.iter().all(|&s| s == sides[0]);
        let result = transform_design(&d, &refs, &opts(), split());
        prop_assert_eq!(result.is_ok(), same_parent, "sides: {:?}", sides);
    }

    /// After a legal transformation: candidates are gone everywhere, the
    /// DRCF instance exists exactly once, the design checks out, and the
    /// candidate modules are still defined (the DRCF references them).
    #[test]
    fn rewrite_postconditions(n in 2usize..6, cand_mask in 3u32..32) {
        let d = example_design(n);
        let candidates: Vec<String> = (0..n)
            .filter(|i| cand_mask & (1 << i) != 0)
            .map(|i| format!("hwa{i}"))
            .collect();
        prop_assume!(candidates.len() >= 2);
        let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();
        let r = transform_design(&d, &refs, &opts(), split()).expect("legal");
        prop_assert!(r.design.check().is_ok());
        for c in &candidates {
            prop_assert!(r.design.instance(c).is_none(), "candidate {c} must be gone");
        }
        let drcf_count = r
            .design
            .top
            .all_instances()
            .iter()
            .filter(|i| i.module == r.drcf_module)
            .count();
        prop_assert_eq!(drcf_count, 1);
        // Non-candidates untouched.
        for i in 0..n {
            let name = format!("hwa{i}");
            if !candidates.contains(&name) {
                prop_assert!(r.design.instance(&name).is_some());
            }
        }
        // Emission works on any transformed design.
        let txt = emit_design(&r.design);
        prop_assert!(txt.contains("drcf_own"));
    }
}
