//! Validation of the §5.4 methodology limitations.
//!
//! The paper lists three restrictions a candidate set must satisfy before
//! the transformation is legal. This module turns each into a mechanical
//! check:
//!
//! 1. "All models that are transformed in to a DRCF implementation must be
//!    on same level of hierarchy and instantiated in the same component."
//! 2. "All implemented interfaces must contain two interface methods that
//!    are used to finding out the memory space of a single component"
//!    (`get_low_add` / `get_high_add`).
//! 3. "The interface methods must be non-blocking or must support split
//!    transactions if the context memory bus is the same as the interface
//!    bus ... This results in deadlock of the bus."

use crate::analyze::{InstanceAnalysis, ModuleAnalysis};

/// How the DRCF's configuration data will travel, as far as validation is
/// concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigTransport {
    /// Over the same bus the component interfaces use.
    SharedInterfaceBus {
        /// Does that bus support split transactions?
        split_transactions: bool,
    },
    /// Over a dedicated configuration path.
    Dedicated,
}

/// One violated limitation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Limitation 1: candidates span hierarchy levels.
    DifferentHierarchy {
        /// Parent of the first candidate.
        expected: Vec<String>,
        /// The offending instance and its parent.
        instance: String,
        /// Where it actually lives.
        found: Vec<String>,
    },
    /// Limitation 2: a module's interfaces never expose the address range.
    MissingAddressRange {
        /// The offending module.
        module: String,
    },
    /// Limitation 3: blocking interface bus shared with the context memory.
    DeadlockRisk,
    /// Contexts claim overlapping interface addresses (the union interface
    /// could not decode).
    OverlappingRanges {
        /// First module.
        a: String,
        /// Second module.
        b: String,
    },
    /// Fewer than two candidates: a single context "is not dynamically
    /// reconfigurable, since there is no need in changing the context"
    /// (§5.2). A warning-grade violation.
    SingleContext,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DifferentHierarchy {
                expected,
                instance,
                found,
            } => write!(
                f,
                "limitation 1: instance '{instance}' lives at {found:?}, others at {expected:?}"
            ),
            Violation::MissingAddressRange { module } => write!(
                f,
                "limitation 2: module '{module}' implements no interface with get_low_add/get_high_add"
            ),
            Violation::DeadlockRisk => write!(
                f,
                "limitation 3: context memory shares a non-split interface bus — bus deadlock"
            ),
            Violation::OverlappingRanges { a, b } => {
                write!(f, "modules '{a}' and '{b}' claim overlapping addresses")
            }
            Violation::SingleContext => write!(
                f,
                "single-context DRCF is never reconfigured; fold at least two candidates"
            ),
        }
    }
}

impl Violation {
    /// Violations that make the transformation incorrect (vs. merely
    /// pointless).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, Violation::SingleContext)
    }
}

/// Check a candidate set. Returns all violations found (empty = legal).
pub fn validate(
    modules: &[ModuleAnalysis],
    instances: &[InstanceAnalysis],
    transport: ConfigTransport,
) -> Vec<Violation> {
    let mut out = Vec::new();

    // Limitation 1: common parent.
    if let Some(first) = instances.first() {
        for ia in &instances[1..] {
            if ia.parent_path != first.parent_path {
                out.push(Violation::DifferentHierarchy {
                    expected: first.parent_path.clone(),
                    instance: ia.instance.name.clone(),
                    found: ia.parent_path.clone(),
                });
            }
        }
    }

    // Limitation 2: address-range methods.
    for m in modules {
        if !m.interfaces.iter().any(|i| i.has_address_range_methods()) {
            out.push(Violation::MissingAddressRange {
                module: m.module.clone(),
            });
        }
    }

    // Limitation 3: shared blocking bus.
    if matches!(
        transport,
        ConfigTransport::SharedInterfaceBus {
            split_transactions: false
        }
    ) {
        out.push(Violation::DeadlockRisk);
    }

    // Overlapping interface ranges.
    for (i, a) in modules.iter().enumerate() {
        for b in &modules[i + 1..] {
            let a_hi = a.spec.low_addr + a.spec.addr_words - 1;
            let b_hi = b.spec.low_addr + b.spec.addr_words - 1;
            if a.spec.low_addr <= b_hi && b.spec.low_addr <= a_hi {
                out.push(Violation::OverlappingRanges {
                    a: a.module.clone(),
                    b: b.module.clone(),
                });
            }
        }
    }

    // Single context warning.
    if instances.len() < 2 {
        out.push(Violation::SingleContext);
    }

    out
}

/// Convenience: true when no *fatal* violation exists.
pub fn is_legal(violations: &[Violation]) -> bool {
    violations.iter().all(|v| !v.is_fatal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_candidates;
    use crate::design::{example_design, HierModule, InstanceDef};

    fn shared_split() -> ConfigTransport {
        ConfigTransport::SharedInterfaceBus {
            split_transactions: true,
        }
    }

    #[test]
    fn clean_candidate_set_passes() {
        let d = example_design(3);
        let (m, i) = analyze_candidates(&d, &["hwa0", "hwa1", "hwa2"]).unwrap();
        let v = validate(&m, &i, shared_split());
        assert!(v.is_empty(), "{v:?}");
        assert!(is_legal(&v));
    }

    #[test]
    fn limitation_1_detected() {
        let mut d = example_design(2);
        // Move hwa1 into a nested hierarchical module.
        let moved = d.top.instances.remove(1);
        d.top.children.push(HierModule {
            name: "island".into(),
            instances: vec![moved],
            children: vec![],
        });
        let (m, i) = analyze_candidates(&d, &["hwa0", "hwa1"]).unwrap();
        let v = validate(&m, &i, shared_split());
        assert!(
            matches!(v[0], Violation::DifferentHierarchy { .. }),
            "{v:?}"
        );
        assert!(!is_legal(&v));
        assert!(v[0].to_string().contains("limitation 1"));
    }

    #[test]
    fn limitation_2_detected() {
        let mut d = example_design(2);
        d.modules[0].implements.clear();
        let (m, i) = analyze_candidates(&d, &["hwa0", "hwa1"]).unwrap();
        let v = validate(&m, &i, shared_split());
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::MissingAddressRange { module } if module == "hwacc0")));
    }

    #[test]
    fn limitation_3_detected_only_for_blocking_shared_bus() {
        let d = example_design(2);
        let (m, i) = analyze_candidates(&d, &["hwa0", "hwa1"]).unwrap();
        let blocking = ConfigTransport::SharedInterfaceBus {
            split_transactions: false,
        };
        let v = validate(&m, &i, blocking);
        assert!(v.contains(&Violation::DeadlockRisk));
        assert!(!is_legal(&v));
        assert!(!validate(&m, &i, shared_split()).contains(&Violation::DeadlockRisk));
        assert!(!validate(&m, &i, ConfigTransport::Dedicated).contains(&Violation::DeadlockRisk));
    }

    #[test]
    fn overlapping_ranges_detected() {
        let mut d = example_design(2);
        if let crate::design::ModuleKind::Accelerator(s) = &mut d.modules[1].kind {
            s.low_addr = 0x2008; // overlaps hwacc0's 0x2000..0x200F
        }
        let (m, i) = analyze_candidates(&d, &["hwa0", "hwa1"]).unwrap();
        let v = validate(&m, &i, shared_split());
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::OverlappingRanges { .. })));
    }

    #[test]
    fn single_context_is_warning_not_fatal() {
        let d = example_design(1);
        let (m, i) = analyze_candidates(&d, &["hwa0"]).unwrap();
        let v = validate(&m, &i, shared_split());
        assert_eq!(v, vec![Violation::SingleContext]);
        assert!(is_legal(&v), "warning-grade only");
    }

    #[test]
    fn empty_candidate_set_flags_single_context_only() {
        let v = validate(&[], &[], ConfigTransport::Dedicated);
        assert_eq!(v, vec![Violation::SingleContext]);
        let _ = InstanceDef {
            name: String::new(),
            module: String::new(),
            ctor_args: vec![],
            bindings: vec![],
        };
    }
}
