//! Phase 4 of Fig. 4: **modification of the module instance** — and the
//! top-level transformation entry point combining all four phases.
//!
//! "This hierarchical module is then updated to use the DRCF module instead
//! of the hardware accelerator. ... Notice that the declaration, the
//! constructor and the binding lines are modified so that instead of the
//! hwa instance a drcf1 instance of a drcf_own is used."

use crate::analyze::{analyze_candidates, AnalyzeError};
use crate::design::{Binding, Design, InstanceDef, ModuleKind};
use crate::template::{create_drcf_module, TemplateError, TemplateOptions};
use crate::validate::{is_legal, validate, ConfigTransport, Violation};

/// A completed transformation.
#[derive(Debug, Clone)]
pub struct TransformResult {
    /// The rewritten design.
    pub design: Design,
    /// Name of the generated DRCF module.
    pub drcf_module: String,
    /// Name of the inserted DRCF instance.
    pub drcf_instance: String,
    /// Non-fatal violations (warnings) that were tolerated.
    pub warnings: Vec<Violation>,
}

/// Why a transformation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// Analysis failure.
    Analyze(AnalyzeError),
    /// A fatal §5.4 violation.
    Illegal(Vec<Violation>),
    /// Template instantiation failure.
    Template(TemplateError),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::Analyze(e) => write!(f, "analysis: {e}"),
            TransformError::Illegal(v) => {
                write!(f, "illegal candidate set:")?;
                for violation in v {
                    write!(f, " [{violation}]")?;
                }
                Ok(())
            }
            TransformError::Template(e) => write!(f, "template: {e}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<AnalyzeError> for TransformError {
    fn from(e: AnalyzeError) -> Self {
        TransformError::Analyze(e)
    }
}
impl From<TemplateError> for TransformError {
    fn from(e: TemplateError) -> Self {
        TransformError::Template(e)
    }
}

/// Run the full Fig. 4 transformation: analyze candidate modules and
/// instances, validate the §5.4 limitations, create the DRCF module from
/// the template, and rewrite the enclosing hierarchical module to
/// instantiate it.
pub fn transform_design(
    design: &Design,
    candidates: &[&str],
    opts: &TemplateOptions,
    transport: ConfigTransport,
) -> Result<TransformResult, TransformError> {
    // Phases 1 + 2.
    let (modules, instances) = analyze_candidates(design, candidates)?;

    // §5.4 validation.
    let violations = validate(&modules, &instances, transport);
    if !is_legal(&violations) {
        return Err(TransformError::Illegal(
            violations.into_iter().filter(|v| v.is_fatal()).collect(),
        ));
    }
    let warnings = violations;

    // Phase 3.
    let drcf_module = create_drcf_module(&modules, opts)?;

    // Phase 4: rewrite the (common) parent hierarchical module.
    let mut design = design.clone();
    let parent_path = instances[0].parent_path.clone();
    let parent = design
        .top
        .module_at_mut(&parent_path)
        .expect("validated common parent exists");

    // Union of bindings: keep the first candidate's channel for each port
    // the DRCF exposes (they are all bound to the same channels by
    // limitation 1's same-component requirement).
    let mut bindings: Vec<Binding> = Vec::new();
    for ia in &instances {
        for b in &ia.instance.bindings {
            if !bindings.iter().any(|e| e.port == b.port) {
                bindings.push(b.clone());
            }
        }
    }

    // Remove the candidate instances.
    let candidate_names: Vec<&str> = instances
        .iter()
        .map(|ia| ia.instance.name.as_str())
        .collect();
    parent
        .instances
        .retain(|i| !candidate_names.contains(&i.name.as_str()));

    // Insert the DRCF instance.
    let drcf_instance = "drcf1".to_string();
    parent.instances.push(InstanceDef {
        name: drcf_instance.clone(),
        module: drcf_module.name.clone(),
        ctor_args: vec![],
        bindings,
    });

    design.modules.push(drcf_module.clone());

    debug_assert!(design.check().is_ok(), "rewrite broke the design");
    Ok(TransformResult {
        design,
        drcf_module: drcf_module.name,
        drcf_instance,
        warnings,
    })
}

/// Total interface address span of a DRCF module spec's contexts, computed
/// from the folded accelerators (used by elaboration's decode map).
pub fn drcf_interface_range(design: &Design, drcf_module: &str) -> Option<(u64, u64)> {
    let m = design.module(drcf_module)?;
    let ModuleKind::Drcf(spec) = &m.kind else {
        return None;
    };
    let mut low = u64::MAX;
    let mut high = 0;
    for cm in &spec.context_modules {
        let md = design.module(cm)?;
        let ModuleKind::Accelerator(a) = &md.kind else {
            return None;
        };
        low = low.min(a.low_addr);
        high = high.max(a.low_addr + a.addr_words - 1);
    }
    Some((low, high))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::example_design;
    use crate::template::TemplateOptions;
    use drcf_core::prelude::{varicore, FabricGeometry};

    fn opts() -> TemplateOptions {
        TemplateOptions::new(varicore(), FabricGeometry::new(40_000, 1))
    }

    fn split() -> ConfigTransport {
        ConfigTransport::SharedInterfaceBus {
            split_transactions: true,
        }
    }

    #[test]
    fn transformation_replaces_candidates_with_drcf() {
        let d = example_design(3);
        let r = transform_design(&d, &["hwa0", "hwa1"], &opts(), split()).unwrap();
        // hwa0/hwa1 gone, hwa2 kept, drcf1 added.
        let names: Vec<&str> = r
            .design
            .top
            .instances
            .iter()
            .map(|i| i.name.as_str())
            .collect();
        assert_eq!(names, vec!["hwa2", "drcf1"]);
        // The DRCF instance is bound to the same channels the candidates
        // used (the paper's listing keeps clk and *system_bus).
        let drcf = r.design.instance("drcf1").unwrap();
        assert!(drcf
            .bindings
            .iter()
            .any(|b| b.port == "clk" && b.channel == "clk"));
        assert!(drcf
            .bindings
            .iter()
            .any(|b| b.port == "mst_port" && b.channel == "system_bus"));
        // The module was added and the design still checks out.
        assert!(r.design.module("drcf_own").is_some());
        assert!(r.design.check().is_ok());
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn original_design_is_untouched() {
        let d = example_design(2);
        let before = d.clone();
        let _ = transform_design(&d, &["hwa0", "hwa1"], &opts(), split()).unwrap();
        assert_eq!(d, before);
    }

    #[test]
    fn illegal_set_is_rejected_with_violations() {
        let mut d = example_design(2);
        let moved = d.top.instances.remove(1);
        d.top.children.push(crate::design::HierModule {
            name: "sub".into(),
            instances: vec![moved],
            children: vec![],
        });
        let err = transform_design(&d, &["hwa0", "hwa1"], &opts(), split()).unwrap_err();
        match err {
            TransformError::Illegal(v) => {
                assert!(v.iter().all(|x| x.is_fatal()));
                assert!(!v.is_empty());
            }
            other => panic!("expected Illegal, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_risk_blocks_transformation() {
        let d = example_design(2);
        let blocking = ConfigTransport::SharedInterfaceBus {
            split_transactions: false,
        };
        let err = transform_design(&d, &["hwa0", "hwa1"], &opts(), blocking).unwrap_err();
        assert!(matches!(err, TransformError::Illegal(_)));
    }

    #[test]
    fn single_candidate_is_tolerated_with_warning() {
        let d = example_design(2);
        let r = transform_design(&d, &["hwa0"], &opts(), split()).unwrap();
        assert_eq!(r.warnings, vec![Violation::SingleContext]);
    }

    #[test]
    fn interface_range_union() {
        let d = example_design(3);
        let r = transform_design(&d, &["hwa0", "hwa2"], &opts(), split()).unwrap();
        let (low, high) = drcf_interface_range(&r.design, "drcf_own").unwrap();
        assert_eq!(low, 0x2000);
        assert_eq!(high, 0x2200 + 15);
        assert_eq!(drcf_interface_range(&r.design, "hwacc1"), None);
    }

    #[test]
    fn unknown_candidate_surfaces_analyze_error() {
        let d = example_design(1);
        let err = transform_design(&d, &["ghost"], &opts(), split()).unwrap_err();
        assert!(matches!(err, TransformError::Analyze(_)));
        assert!(err.to_string().contains("ghost"));
    }
}
