//! Phase 3 of Fig. 4: **creation of the DRCF component** from a template.
//!
//! "When all instances are analyzed, the DRCF component is created from a
//! template. The ports and interfaces analyzed in the first phase are added
//! to the DRCF template and then the component to be implemented in
//! dynamically reconfigurable hardware is instantiated according to the
//! declaration and constructor located in second phase. The template of the
//! DRCF contains a context scheduler and instrumentation process and a
//! multiplexer that routes data transfers to correct instances."

use drcf_core::prelude::{FabricGeometry, Technology};

use crate::analyze::ModuleAnalysis;
use crate::design::{ContextParamsSpec, DrcfModuleSpec, ModuleDef, ModuleKind, PortDef};

/// Options steering DRCF creation.
#[derive(Debug, Clone)]
pub struct TemplateOptions {
    /// Target reconfigurable technology (drives configuration volumes and
    /// delays).
    pub technology: Technology,
    /// Fabric geometry (area and reconfiguration regions).
    pub geometry: FabricGeometry,
    /// Where configuration images are packed in memory.
    pub config_base_addr: u64,
    /// Background loading (execute while reconfiguring other regions).
    pub overlap_load_exec: bool,
    /// Words per configuration-read burst on the bus.
    pub config_burst: usize,
    /// Name of the generated module.
    pub module_name: String,
}

impl TemplateOptions {
    /// Reasonable defaults for a given technology/geometry.
    pub fn new(technology: Technology, geometry: FabricGeometry) -> Self {
        TemplateOptions {
            technology,
            geometry,
            config_base_addr: 0x100,
            overlap_load_exec: false,
            config_burst: 16,
            module_name: "drcf_own".into(),
        }
    }
}

/// Errors from DRCF creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// A context cannot fit the fabric / technology.
    ContextDoesNotFit {
        /// Offending module.
        module: String,
        /// Planner message.
        reason: String,
    },
    /// No candidates given.
    Empty,
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::ContextDoesNotFit { module, reason } => {
                write!(f, "context '{module}' does not fit: {reason}")
            }
            TemplateError::Empty => write!(f, "no candidate modules"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// Create the DRCF module definition from the phase-1 analyses.
///
/// The generated module implements the union of the candidates' interfaces,
/// replicates their ports, and carries the resolved per-context
/// reconfiguration parameters (configuration images packed consecutively
/// from `config_base_addr`).
pub fn create_drcf_module(
    modules: &[ModuleAnalysis],
    opts: &TemplateOptions,
) -> Result<ModuleDef, TemplateError> {
    if modules.is_empty() {
        return Err(TemplateError::Empty);
    }

    // Union of ports (by name) and interfaces (by name), in first-seen
    // order — "the interface and ports analyzed in the first phase are
    // added to the component".
    let mut ports: Vec<PortDef> = Vec::new();
    let mut implements: Vec<String> = Vec::new();
    for m in modules {
        for p in &m.ports {
            if !ports.iter().any(|e| e.name == p.name) {
                ports.push(p.clone());
            }
        }
        for i in &m.interfaces {
            if !implements.contains(&i.name) {
                implements.push(i.name.clone());
            }
        }
    }

    // Resolve per-context parameters from the technology + geometry.
    let mut context_params = Vec::with_capacity(modules.len());
    let mut addr = opts.config_base_addr;
    for m in modules {
        let planned = drcf_core::partial::plan_context(
            opts.geometry,
            &opts.technology,
            m.spec.gate_count,
            addr,
        )
        .map_err(|reason| TemplateError::ContextDoesNotFit {
            module: m.module.clone(),
            reason,
        })?;
        addr += planned.config_size_words;
        context_params.push(ContextParamsSpec {
            config_addr: planned.config_addr,
            config_size_words: planned.config_size_words,
            extra_reconfig_delay_fs: planned.extra_reconfig_delay.as_fs(),
            slots_needed: planned.slots_needed,
            active_power_mw: planned.active_power_mw,
        });
    }

    Ok(ModuleDef {
        name: opts.module_name.clone(),
        ports,
        implements,
        kind: ModuleKind::Drcf(DrcfModuleSpec {
            context_modules: modules.iter().map(|m| m.module.clone()).collect(),
            context_params,
            slots: opts.geometry.regions,
            overlap_load_exec: opts.overlap_load_exec,
            config_burst: opts.config_burst,
            clock_mhz: opts.technology.fabric_clock_mhz,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_candidates;
    use crate::design::example_design;
    use drcf_core::prelude::varicore;

    fn opts() -> TemplateOptions {
        TemplateOptions::new(varicore(), FabricGeometry::new(40_000, 2))
    }

    #[test]
    fn drcf_module_unions_ports_and_interfaces() {
        let d = example_design(3);
        let (m, _) = analyze_candidates(&d, &["hwa0", "hwa1", "hwa2"]).unwrap();
        let drcf = create_drcf_module(&m, &opts()).unwrap();
        assert_eq!(drcf.name, "drcf_own");
        assert_eq!(drcf.ports.len(), 2, "clk + mst_port, deduplicated");
        assert_eq!(drcf.implements, vec!["bus_slv_if".to_string()]);
        match &drcf.kind {
            ModuleKind::Drcf(spec) => {
                assert_eq!(spec.context_modules.len(), 3);
                assert_eq!(spec.context_params.len(), 3);
                assert_eq!(spec.slots, 2);
                assert_eq!(spec.clock_mhz, 250, "VariCore clock");
            }
            _ => panic!("expected a DRCF module"),
        }
    }

    #[test]
    fn config_images_are_packed_without_overlap() {
        let d = example_design(3);
        let (m, _) = analyze_candidates(&d, &["hwa0", "hwa1", "hwa2"]).unwrap();
        let drcf = create_drcf_module(&m, &opts()).unwrap();
        let ModuleKind::Drcf(spec) = &drcf.kind else {
            unreachable!()
        };
        for w in spec.context_params.windows(2) {
            assert!(w[1].config_addr >= w[0].config_addr + w[0].config_size_words);
        }
        assert_eq!(spec.context_params[0].config_addr, 0x100);
    }

    #[test]
    fn oversized_context_rejected() {
        let mut d = example_design(1);
        if let ModuleKind::Accelerator(s) = &mut d.modules[0].kind {
            s.gate_count = 1_000_000; // bigger than the fabric
        }
        let (m, _) = analyze_candidates(&d, &["hwa0"]).unwrap();
        let err = create_drcf_module(&m, &opts()).unwrap_err();
        assert!(matches!(err, TemplateError::ContextDoesNotFit { .. }));
        assert!(err.to_string().contains("hwacc0"));
    }

    #[test]
    fn empty_candidates_rejected() {
        assert_eq!(create_drcf_module(&[], &opts()), Err(TemplateError::Empty));
    }
}
