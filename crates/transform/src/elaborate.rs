//! Elaboration: turn a [`Design`] into a runnable simulation.
//!
//! This is the bridge between the methodology's front end (the IR and the
//! Fig. 4 transformation) and the system-level simulation of the ADRIATIC
//! flow: accelerator modules become [`SlaveAdapter`]s, generated DRCF
//! modules become [`Drcf`] fabrics, a shared bus and a memory are
//! instantiated, and caller-supplied masters (CPU models, testbenches)
//! drive the system. Running the elaborated original and transformed
//! designs against the same master is exactly experiment E4.

use std::collections::HashMap;

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_kernel::prelude::*;

use crate::design::{AccelSpec, Design, ModuleKind};

/// A factory closure building a functional model from its spec.
pub type ModelFactory = Box<dyn Fn(&AccelSpec) -> Box<dyn BusSlaveModel>>;

/// Builds functional models from accelerator specs, keyed by
/// `AccelSpec::kind`. `"regfile"` is built in.
pub struct ModelRegistry {
    factories: HashMap<String, ModelFactory>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        let mut r = ModelRegistry {
            factories: HashMap::new(),
        };
        r.register("regfile", |spec| {
            Box::new(RegisterFile::new(
                "regfile",
                spec.low_addr,
                spec.addr_words as usize,
                spec.access_cycles,
            ))
        });
        r
    }
}

impl ModelRegistry {
    /// Fresh registry with the built-in factories.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a factory for `kind`.
    pub fn register(
        &mut self,
        kind: &str,
        f: impl Fn(&AccelSpec) -> Box<dyn BusSlaveModel> + 'static,
    ) {
        self.factories.insert(kind.to_string(), Box::new(f));
    }

    /// Build a model for a spec.
    pub fn build(&self, spec: &AccelSpec) -> Result<Box<dyn BusSlaveModel>, String> {
        self.factories
            .get(&spec.kind)
            .map(|f| f(spec))
            .ok_or_else(|| format!("no model factory registered for kind '{}'", spec.kind))
    }
}

/// How elaborated DRCFs fetch configuration data.
#[derive(Debug, Clone)]
pub enum ElabConfigPath {
    /// Master the shared system bus (images live in the system memory).
    SystemBus {
        /// Bus priority of configuration reads.
        priority: u8,
    },
    /// Dedicated port straight into the system memory.
    DirectPort,
    /// Fixed transfer rate, no traffic.
    FixedRate {
        /// Words per cycle.
        words_per_cycle: u64,
        /// Configuration clock, MHz.
        clock_mhz: u64,
    },
}

/// Elaboration parameters.
pub struct ElaborationOptions {
    /// Bus configuration.
    pub bus: BusConfig,
    /// System memory configuration (also holds configuration images).
    pub memory: MemoryConfig,
    /// Configuration transport for DRCF modules.
    pub config_path: ElabConfigPath,
    /// Clock for standalone accelerator adapters, MHz.
    pub accel_clock_mhz: u64,
    /// Model factories.
    pub registry: ModelRegistry,
}

impl Default for ElaborationOptions {
    fn default() -> Self {
        ElaborationOptions {
            bus: BusConfig::default(),
            // The example designs place accelerators from 0x2000 up, so the
            // default memory claims [0x0, 0x1FFF].
            memory: MemoryConfig {
                size_words: 0x2000,
                ..MemoryConfig::default()
            },
            config_path: ElabConfigPath::SystemBus { priority: 3 },
            accel_clock_mhz: 100,
            registry: ModelRegistry::new(),
        }
    }
}

/// A master component factory: receives the bus id, returns the component.
pub type MasterFactory = Box<dyn FnOnce(ComponentId) -> Box<dyn Component>>;

/// The elaborated system.
pub struct Elaborated {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Master component ids, in the order supplied.
    pub masters: Vec<ComponentId>,
    /// The shared bus.
    pub bus: ComponentId,
    /// The system memory.
    pub memory: ComponentId,
    /// Instance name → component id for every elaborated design instance.
    pub instances: HashMap<String, ComponentId>,
}

/// Elaborate `design` with the given masters.
///
/// Component id layout: masters first (`0..masters.len()`), then bus, then
/// memory, then design instances in hierarchy order.
pub fn elaborate(
    design: &Design,
    opts: ElaborationOptions,
    masters: Vec<(String, MasterFactory)>,
) -> Result<Elaborated, String> {
    design.check()?;
    let mut sim = Simulator::new();

    let n_masters = masters.len();
    let bus_id = n_masters;
    let memory_id = n_masters + 1;

    // Masters (they get the bus id even though the bus doesn't exist yet —
    // ids are assigned deterministically).
    let mut master_ids = Vec::with_capacity(n_masters);
    for (name, f) in masters {
        let id = sim.add_component(&name, f(bus_id));
        master_ids.push(id);
    }

    // Walk the hierarchy, collecting instances in depth-first order.
    let all = design.top.all_instances();

    // Build the decode map: memory + each slave instance.
    let mut map = AddressMap::new();
    map.add(
        opts.memory.base,
        opts.memory.base + opts.memory.size_words as u64 - 1,
        memory_id,
    )?;
    let mut planned: Vec<(String, ComponentId)> = Vec::new();
    for (offset, inst) in all.iter().enumerate() {
        let next_id = memory_id + 1 + offset;
        let module = design
            .module(&inst.module)
            .ok_or_else(|| format!("unknown module '{}'", inst.module))?;
        match &module.kind {
            ModuleKind::Accelerator(a) => {
                map.add(a.low_addr, a.low_addr + a.addr_words - 1, next_id)?;
            }
            // One decode entry per folded context, so a non-contiguous fold
            // leaves the address holes between its members unclaimed.
            ModuleKind::Drcf(spec) => {
                for cm in &spec.context_modules {
                    let cmod = design
                        .module(cm)
                        .ok_or_else(|| format!("unknown context module '{cm}'"))?;
                    let ModuleKind::Accelerator(a) = &cmod.kind else {
                        return Err(format!("context module '{cm}' is not an accelerator"));
                    };
                    map.add(a.low_addr, a.low_addr + a.addr_words - 1, next_id)?;
                }
            }
        }
        planned.push((inst.name.clone(), next_id));
    }

    let got_bus = sim.add("system_bus", Bus::new(opts.bus.clone(), map));
    debug_assert_eq!(got_bus, bus_id);
    let got_mem = sim.add("memory", Memory::new(opts.memory.clone()));
    debug_assert_eq!(got_mem, memory_id);

    // Instantiate slaves.
    let mut instances = HashMap::new();
    for ((inst, planned_id), inst_def) in planned.into_iter().zip(&all) {
        let module = design.module(&inst_def.module).expect("checked above");
        let id = match &module.kind {
            ModuleKind::Accelerator(a) => {
                let model = opts.registry.build(a)?;
                sim.add_component(
                    &inst,
                    Box::new(SlaveAdapter::new(BoxedModel(model), opts.accel_clock_mhz)),
                )
            }
            ModuleKind::Drcf(spec) => {
                let mut contexts = Vec::with_capacity(spec.context_modules.len());
                for (cm, p) in spec.context_modules.iter().zip(&spec.context_params) {
                    let cmod = design
                        .module(cm)
                        .ok_or_else(|| format!("unknown context module '{cm}'"))?;
                    let ModuleKind::Accelerator(a) = &cmod.kind else {
                        return Err(format!("context module '{cm}' is not an accelerator"));
                    };
                    let model = opts.registry.build(a)?;
                    contexts.push(Context::new(
                        model,
                        ContextParams {
                            config_addr: opts.memory.base + p.config_addr,
                            config_size_words: p.config_size_words,
                            extra_reconfig_delay: SimDuration::fs(p.extra_reconfig_delay_fs),
                            gate_count: a.gate_count,
                            slots_needed: p.slots_needed,
                            active_power_mw: p.active_power_mw,
                            ..ContextParams::default()
                        },
                    ));
                }
                let config_path = match &opts.config_path {
                    ElabConfigPath::SystemBus { priority } => ConfigPath::SystemBus {
                        bus: bus_id,
                        priority: *priority,
                        burst: spec.config_burst,
                    },
                    ElabConfigPath::DirectPort => ConfigPath::DirectPort { memory: memory_id },
                    ElabConfigPath::FixedRate {
                        words_per_cycle,
                        clock_mhz,
                    } => ConfigPath::FixedRate {
                        words_per_cycle: *words_per_cycle,
                        clock_mhz: *clock_mhz,
                    },
                };
                sim.add(
                    &inst,
                    Drcf::new(
                        DrcfConfig {
                            clock_mhz: spec.clock_mhz,
                            config_path,
                            scheduler: SchedulerConfig {
                                slots: spec.slots,
                                ..SchedulerConfig::default()
                            },
                            overlap_load_exec: spec.overlap_load_exec,
                            abort_load_of: vec![],
                            // Elaborated netlists have no slave timing
                            // registered, so coalescing would never engage;
                            // keep the per-burst path explicit.
                            coalesce_config_traffic: false,
                        },
                        contexts,
                    ),
                )
            }
        };
        debug_assert_eq!(id, planned_id);
        instances.insert(inst, id);
    }

    Ok(Elaborated {
        sim,
        masters: master_ids,
        bus: bus_id,
        memory: memory_id,
        instances,
    })
}

/// Newtype making a boxed model usable where a concrete `BusSlaveModel` is
/// required (the adapter is generic).
pub struct BoxedModel(pub Box<dyn BusSlaveModel>);

impl BusSlaveModel for BoxedModel {
    fn low_addr(&self) -> Addr {
        self.0.low_addr()
    }
    fn high_addr(&self) -> Addr {
        self.0.high_addr()
    }
    fn read(&mut self, addr: Addr) -> Result<Word, ()> {
        self.0.read(addr)
    }
    fn write(&mut self, addr: Addr, data: Word) -> Result<(), ()> {
        self.0.write(addr, data)
    }
    fn access_cycles(&self, op: BusOp, addr: Addr, burst: usize) -> u64 {
        self.0.access_cycles(op, addr, burst)
    }
    fn model_name(&self) -> &str {
        self.0.model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::example_design;

    /// Minimal master: writes then reads one accelerator register.
    struct Probe {
        port: MasterPort,
        addr: Addr,
        step: u8,
        pub readback: Option<Word>,
    }

    impl Component for Probe {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match &msg.kind {
                MsgKind::Start => {
                    let a = self.addr;
                    self.port.write(api, a, vec![123]);
                }
                _ => {
                    if let Ok(r) = self.port.take_response(api, msg) {
                        assert!(r.is_ok(), "{r:?}");
                        self.step += 1;
                        match self.step {
                            1 => {
                                let a = self.addr;
                                self.port.read(api, a, 1);
                            }
                            _ => self.readback = r.data.first().copied(),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn elaborates_original_design_and_runs() {
        let d = example_design(2);
        let e = elaborate(
            &d,
            ElaborationOptions::default(),
            vec![(
                "probe".into(),
                Box::new(|bus| {
                    Box::new(Probe {
                        port: MasterPort::new(bus, 1),
                        addr: 0x2000,
                        step: 0,
                        readback: None,
                    })
                }),
            )],
        )
        .unwrap();
        let mut sim = e.sim;
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.get::<Probe>(e.masters[0]).readback, Some(123));
        assert_eq!(e.instances.len(), 2);
        assert!(e.instances.contains_key("hwa0"));
    }

    #[test]
    fn elaborates_transformed_design_and_runs() {
        use crate::rewrite::transform_design;
        use crate::template::TemplateOptions;
        use crate::validate::ConfigTransport;
        use drcf_core::prelude::FabricGeometry;

        let d = example_design(2);
        // MorphoSys-style coarse-grain images (a few hundred words) fit the
        // default 0x2000-word memory comfortably.
        let r = transform_design(
            &d,
            &["hwa0", "hwa1"],
            &TemplateOptions::new(
                drcf_core::prelude::morphosys(),
                FabricGeometry::new(40_000, 1),
            ),
            ConfigTransport::SharedInterfaceBus {
                split_transactions: true,
            },
        )
        .unwrap();
        let e = elaborate(
            &r.design,
            ElaborationOptions::default(),
            vec![(
                "probe".into(),
                Box::new(|bus| {
                    Box::new(Probe {
                        port: MasterPort::new(bus, 1),
                        addr: 0x2100, // hwa1's range, now inside the DRCF
                        step: 0,
                        readback: None,
                    })
                }),
            )],
        )
        .unwrap();
        let mut sim = e.sim;
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.get::<Probe>(e.masters[0]).readback, Some(123));
        let drcf_id = e.instances["drcf1"];
        let f = sim.get::<Drcf>(drcf_id);
        assert_eq!(f.stats.switches, 1, "one context load for hwa1");
        assert!(f.stats.config_words > 0);
    }

    #[test]
    fn unknown_model_kind_is_an_error() {
        let mut d = example_design(1);
        if let ModuleKind::Accelerator(a) = &mut d.modules[0].kind {
            a.kind = "quantum_fft".into();
        }
        let err = match elaborate(&d, ElaborationOptions::default(), vec![]) {
            Err(e) => e,
            Ok(_) => panic!("expected elaboration failure"),
        };
        assert!(err.contains("quantum_fft"));
    }

    #[test]
    fn registry_accepts_custom_factories() {
        let mut reg = ModelRegistry::new();
        reg.register("custom", |spec| {
            Box::new(RegisterFile::new("custom", spec.low_addr, 4, 1))
        });
        let spec = AccelSpec {
            low_addr: 0,
            addr_words: 4,
            access_cycles: 1,
            kind: "custom".into(),
            gate_count: 100,
        };
        assert!(reg.build(&spec).is_ok());
        let missing = AccelSpec {
            kind: "absent".into(),
            ..spec
        };
        assert!(reg.build(&missing).is_err());
    }
}
