//! The design intermediate representation.
//!
//! The paper's tool flow operates on SystemC source: it analyzes module
//! classes (ports + implemented interfaces), then instances (declaration,
//! constructor, bindings), then rewrites the enclosing hierarchical module.
//! This IR captures exactly the information those analyses extract, so the
//! four-phase transformation of Fig. 4 can run over it mechanically — the
//! paper's own transformations "are done by hand according to
//! specification"; automating them over an IR is the tooling the ADRIATIC
//! project planned.

use std::collections::BTreeMap;

/// One interface method, e.g. `bool read(sc_uint<ADDW> add, sc_int<DATAW>*)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSig {
    /// Method name (`read`, `get_low_add`, ...).
    pub name: String,
    /// Rendered signature for code emission.
    pub signature: String,
}

impl MethodSig {
    /// Shorthand constructor.
    pub fn new(name: &str, signature: &str) -> Self {
        MethodSig {
            name: name.into(),
            signature: signature.into(),
        }
    }
}

/// An `sc_interface` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDef {
    /// Interface name, e.g. `bus_slv_if`.
    pub name: String,
    /// Methods the interface declares.
    pub methods: Vec<MethodSig>,
}

impl InterfaceDef {
    /// The paper's bus slave interface, with the two address-range methods
    /// limitation 2 requires.
    pub fn bus_slv_if() -> Self {
        InterfaceDef {
            name: "bus_slv_if".into(),
            methods: vec![
                MethodSig::new("get_low_add", "virtual sc_uint<ADDW> get_low_add()=0"),
                MethodSig::new("get_high_add", "virtual sc_uint<ADDW> get_high_add()=0"),
                MethodSig::new(
                    "read",
                    "virtual bool read(sc_uint<ADDW> add, sc_int<DATAW> *data)=0",
                ),
                MethodSig::new(
                    "write",
                    "virtual bool write(sc_uint<ADDW> add, sc_int<DATAW> *data)=0",
                ),
            ],
        }
    }

    /// Does the interface expose the address-range methods (`get_low_add`
    /// and `get_high_add`)?
    pub fn has_address_range_methods(&self) -> bool {
        let has = |n: &str| self.methods.iter().any(|m| m.name == n);
        has("get_low_add") && has("get_high_add")
    }
}

/// Port direction/kind on a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortKind {
    /// `sc_in_clk clk`.
    ClockIn,
    /// `sc_port<IF>` master port bound to a channel implementing `IF`.
    Master {
        /// Interface the port expects.
        iface: String,
    },
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDef {
    /// Port name (`clk`, `mst_port`).
    pub name: String,
    /// Kind.
    pub kind: PortKind,
}

/// Behavioral specification of a leaf accelerator module — enough to
/// elaborate a functional + timed model of it.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelSpec {
    /// Lowest interface address (word units).
    pub low_addr: u64,
    /// Claimed words.
    pub addr_words: u64,
    /// Processing cycles per accessed word.
    pub access_cycles: u64,
    /// Factory key selecting the functional model ("regfile" is built in;
    /// the SoC library registers richer kernels).
    pub kind: String,
    /// Area in equivalent gates (drives reconfiguration parameters).
    pub gate_count: u64,
}

/// Resolved per-context reconfiguration parameters stored in a generated
/// DRCF module (mirrors `drcf_core::context::ContextParams`, kept as plain
/// data so the IR stays serializable/comparable).
#[derive(Debug, Clone, PartialEq)]
pub struct ContextParamsSpec {
    /// Configuration image address.
    pub config_addr: u64,
    /// Configuration image size, words.
    pub config_size_words: u64,
    /// Extra reconfiguration delay, femtoseconds.
    pub extra_reconfig_delay_fs: u64,
    /// Scheduler slots occupied.
    pub slots_needed: usize,
    /// Active power, mW.
    pub active_power_mw: f64,
}

/// Specification of a generated DRCF module.
#[derive(Debug, Clone, PartialEq)]
pub struct DrcfModuleSpec {
    /// Module names of the folded candidates, in order.
    pub context_modules: Vec<String>,
    /// Resolved reconfiguration parameters, aligned with
    /// `context_modules`.
    pub context_params: Vec<ContextParamsSpec>,
    /// Scheduler slots on the fabric.
    pub slots: usize,
    /// Background loading enabled?
    pub overlap_load_exec: bool,
    /// Words per configuration bus burst.
    pub config_burst: usize,
    /// Fabric clock, MHz.
    pub clock_mhz: u64,
}

/// What a module is.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleKind {
    /// A leaf hardware accelerator.
    Accelerator(AccelSpec),
    /// A generated dynamically reconfigurable fabric.
    Drcf(DrcfModuleSpec),
}

/// A module class definition (≈ `SC_MODULE`).
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleDef {
    /// Class name (`hwacc`).
    pub name: String,
    /// Ports.
    pub ports: Vec<PortDef>,
    /// Implemented interface names.
    pub implements: Vec<String>,
    /// Behavior.
    pub kind: ModuleKind,
}

/// A port-to-channel binding on an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Port name on the module.
    pub port: String,
    /// Channel name in the enclosing hierarchy (`clk`, `system_bus`).
    pub channel: String,
}

/// One instantiation of a module inside a hierarchical module.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceDef {
    /// Instance name (`hwa`).
    pub name: String,
    /// Module class name.
    pub module: String,
    /// Constructor arguments, as (name, value) pairs (`HWA_START`, ...).
    pub ctor_args: Vec<(String, u64)>,
    /// Port bindings.
    pub bindings: Vec<Binding>,
}

/// A hierarchical module: instances plus nested hierarchical children.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HierModule {
    /// Name (`top`).
    pub name: String,
    /// Leaf instances at this level.
    pub instances: Vec<InstanceDef>,
    /// Nested hierarchical modules.
    pub children: Vec<HierModule>,
}

impl HierModule {
    /// Depth-first search for the hierarchical module containing an
    /// instance named `inst`; returns the path of hierarchy names.
    pub fn find_instance(&self, inst: &str) -> Option<Vec<String>> {
        if self.instances.iter().any(|i| i.name == inst) {
            return Some(vec![self.name.clone()]);
        }
        for c in &self.children {
            if let Some(mut path) = c.find_instance(inst) {
                path.insert(0, self.name.clone());
                return Some(path);
            }
        }
        None
    }

    /// Mutable access to the hierarchical module at `path` (starting with
    /// this module's own name).
    pub fn module_at_mut(&mut self, path: &[String]) -> Option<&mut HierModule> {
        if path.first().map(String::as_str) != Some(self.name.as_str()) {
            return None;
        }
        if path.len() == 1 {
            return Some(self);
        }
        for c in &mut self.children {
            if let Some(m) = c.module_at_mut(&path[1..]) {
                return Some(m);
            }
        }
        None
    }

    /// Immutable counterpart of [`HierModule::module_at_mut`].
    pub fn module_at(&self, path: &[String]) -> Option<&HierModule> {
        if path.first().map(String::as_str) != Some(self.name.as_str()) {
            return None;
        }
        if path.len() == 1 {
            return Some(self);
        }
        for c in &self.children {
            if let Some(m) = c.module_at(&path[1..]) {
                return Some(m);
            }
        }
        None
    }

    /// All instances in this subtree, depth-first.
    pub fn all_instances(&self) -> Vec<&InstanceDef> {
        let mut v: Vec<&InstanceDef> = self.instances.iter().collect();
        for c in &self.children {
            v.extend(c.all_instances());
        }
        v
    }
}

/// A complete design.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Interface definitions, by name.
    pub interfaces: Vec<InterfaceDef>,
    /// Module class definitions, by name.
    pub modules: Vec<ModuleDef>,
    /// Hierarchy root.
    pub top: HierModule,
}

impl Design {
    /// Look up an interface.
    pub fn interface(&self, name: &str) -> Option<&InterfaceDef> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// Look up a module class.
    pub fn module(&self, name: &str) -> Option<&ModuleDef> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Look up an instance anywhere in the hierarchy.
    pub fn instance(&self, name: &str) -> Option<&InstanceDef> {
        self.top
            .all_instances()
            .into_iter()
            .find(|i| i.name == name)
    }

    /// Structural sanity: every instance refers to a known module, every
    /// implemented interface exists, instance names are unique.
    pub fn check(&self) -> Result<(), String> {
        let mut seen = BTreeMap::new();
        for inst in self.top.all_instances() {
            if self.module(&inst.module).is_none() {
                return Err(format!(
                    "instance '{}' refers to unknown module '{}'",
                    inst.name, inst.module
                ));
            }
            if let Some(prev) = seen.insert(inst.name.clone(), &inst.module) {
                return Err(format!(
                    "duplicate instance name '{}' (modules '{}' and '{prev}')",
                    inst.name, inst.module
                ));
            }
        }
        for m in &self.modules {
            for i in &m.implements {
                if self.interface(i).is_none() {
                    return Err(format!(
                        "module '{}' implements unknown interface '{i}'",
                        m.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Build the paper's running example: a `top` module with `hwacc`
/// instances on a bus (§5.2's listings), parameterized by the number of
/// accelerators.
pub fn example_design(n_accelerators: usize) -> Design {
    let mut modules = Vec::new();
    let mut instances = Vec::new();
    for i in 0..n_accelerators {
        let module_name = format!("hwacc{i}");
        let low = 0x2000 + (i as u64) * 0x100;
        modules.push(ModuleDef {
            name: module_name.clone(),
            ports: vec![
                PortDef {
                    name: "clk".into(),
                    kind: PortKind::ClockIn,
                },
                PortDef {
                    name: "mst_port".into(),
                    kind: PortKind::Master {
                        iface: "bus_mst_if".into(),
                    },
                },
            ],
            implements: vec!["bus_slv_if".into()],
            kind: ModuleKind::Accelerator(AccelSpec {
                low_addr: low,
                addr_words: 16,
                access_cycles: 2,
                kind: "regfile".into(),
                gate_count: 10_000 + 2_000 * i as u64,
            }),
        });
        instances.push(InstanceDef {
            name: format!("hwa{i}"),
            module: module_name,
            ctor_args: vec![
                (format!("HWA{i}_START"), low),
                (format!("HWA{i}_END"), low + 15),
            ],
            bindings: vec![
                Binding {
                    port: "clk".into(),
                    channel: "clk".into(),
                },
                Binding {
                    port: "mst_port".into(),
                    channel: "system_bus".into(),
                },
            ],
        });
    }
    Design {
        name: "adriatic_example".into(),
        interfaces: vec![
            InterfaceDef::bus_slv_if(),
            InterfaceDef {
                name: "bus_mst_if".into(),
                methods: vec![
                    MethodSig::new(
                        "read",
                        "virtual bool read(sc_uint<ADDW> add, sc_int<DATAW> *data)=0",
                    ),
                    MethodSig::new(
                        "write",
                        "virtual bool write(sc_uint<ADDW> add, sc_int<DATAW> *data)=0",
                    ),
                ],
            },
        ],
        modules,
        top: HierModule {
            name: "top".into(),
            instances,
            children: vec![],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_design_is_well_formed() {
        let d = example_design(3);
        assert!(d.check().is_ok());
        assert_eq!(d.modules.len(), 3);
        assert_eq!(d.top.instances.len(), 3);
        assert!(d.interface("bus_slv_if").is_some());
        assert!(d.instance("hwa1").is_some());
        assert!(d.instance("nope").is_none());
    }

    #[test]
    fn bus_slv_if_has_range_methods() {
        assert!(InterfaceDef::bus_slv_if().has_address_range_methods());
        let partial = InterfaceDef {
            name: "half".into(),
            methods: vec![MethodSig::new("get_low_add", "...")],
        };
        assert!(!partial.has_address_range_methods());
    }

    #[test]
    fn hierarchy_navigation() {
        let mut d = example_design(1);
        d.top.children.push(HierModule {
            name: "sub".into(),
            instances: vec![InstanceDef {
                name: "deep".into(),
                module: "hwacc0".into(),
                ctor_args: vec![],
                bindings: vec![],
            }],
            children: vec![],
        });
        assert_eq!(d.top.find_instance("hwa0"), Some(vec!["top".to_string()]));
        assert_eq!(
            d.top.find_instance("deep"),
            Some(vec!["top".to_string(), "sub".to_string()])
        );
        assert_eq!(d.top.find_instance("missing"), None);
        let path = vec!["top".to_string(), "sub".to_string()];
        assert_eq!(d.top.module_at(&path).unwrap().name, "sub");
        assert!(d.top.module_at_mut(&path).is_some());
        assert_eq!(d.top.all_instances().len(), 2);
    }

    #[test]
    fn check_catches_dangling_references() {
        let mut d = example_design(1);
        d.top.instances.push(InstanceDef {
            name: "ghost".into(),
            module: "phantom".into(),
            ctor_args: vec![],
            bindings: vec![],
        });
        assert!(d.check().is_err());

        let mut d2 = example_design(1);
        d2.modules[0].implements.push("mystery_if".into());
        assert!(d2.check().is_err());

        let mut d3 = example_design(2);
        d3.top.instances[1].name = d3.top.instances[0].name.clone();
        assert!(d3.check().is_err());
    }
}
