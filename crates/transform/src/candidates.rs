//! Candidate selection — the §5.1 "rules of thumb".
//!
//! "There are some rules of a thumb that can be followed if circumstances
//! prevent the use of compilation profiling software:
//!
//! * If the application has several roughly same sized hardware
//!   accelerators that are not used in the same time or at their full
//!   capacity, a dynamically reconfigurable block may be a more optimized
//!   solution than a hardwired logic block.
//! * If the application has some parts in which specification changes are
//!   foreseeable, the implementation choice may be reconfigurable hardware.
//! * If there are foreseeable plans for new generations of application,
//!   the parts that will change should be implemented with reconfigurable
//!   hardware."
//!
//! Given per-block profiling data (busy fractions and pairwise temporal
//! overlap, produced by `drcf_soc::profile`), [`select_candidates`] turns
//! those rules into candidate groups for the transformation.

/// Profiling summary of one hardware block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockProfile {
    /// Instance name in the design.
    pub instance: String,
    /// Fraction of the profiled run the block was busy, in [0, 1].
    pub busy_fraction: f64,
    /// Block area in equivalent gates.
    pub gate_count: u64,
    /// Rules 2/3: specification changes or next-generation changes are
    /// foreseeable for this block.
    pub change_prone: bool,
}

/// Profiling dataset: blocks plus their pairwise busy-time overlap
/// fractions (fraction of the run both blocks were busy simultaneously).
#[derive(Debug, Clone, Default)]
pub struct ProfileData {
    /// Per-block summaries.
    pub blocks: Vec<BlockProfile>,
    /// Symmetric overlap records `(a, b, fraction)`.
    pub overlap: Vec<(String, String, f64)>,
}

impl ProfileData {
    /// Pairwise overlap lookup (0.0 when unrecorded).
    pub fn overlap_of(&self, a: &str, b: &str) -> f64 {
        self.overlap
            .iter()
            .find(|(x, y, _)| (x == a && y == b) || (x == b && y == a))
            .map(|&(_, _, f)| f)
            .unwrap_or(0.0)
    }
}

/// Thresholds parameterizing the rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRules {
    /// "not used in the same time": maximum tolerated pairwise overlap.
    pub max_overlap: f64,
    /// "roughly same sized": maximum gate-count ratio within a group.
    pub max_size_ratio: f64,
    /// "nor at their full capacity": maximum busy fraction.
    pub max_utilization: f64,
    /// Minimum group size worth a DRCF (a single context is never
    /// reconfigured).
    pub min_group: usize,
}

impl Default for SelectionRules {
    fn default() -> Self {
        SelectionRules {
            max_overlap: 0.05,
            max_size_ratio: 4.0,
            max_utilization: 0.5,
            min_group: 2,
        }
    }
}

/// A proposed candidate group with the rule evidence that selected it.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateGroup {
    /// Instance names to fold into one DRCF.
    pub instances: Vec<String>,
    /// Why: human-readable rule trace.
    pub rationale: String,
}

/// Apply the §5.1 rules and propose candidate groups.
///
/// Greedy grouping: blocks are considered in decreasing gate count; a block
/// joins a group when its size stays within `max_size_ratio` of every
/// member, its overlap with every member is at most `max_overlap`, and its
/// utilization is below `max_utilization`. Change-prone blocks (rules 2/3)
/// are admitted regardless of utilization and, if they fit no group, are
/// reported as singleton groups so the designer sees them.
pub fn select_candidates(profile: &ProfileData, rules: &SelectionRules) -> Vec<CandidateGroup> {
    let mut order: Vec<&BlockProfile> = profile.blocks.iter().collect();
    order.sort_by(|a, b| {
        b.gate_count
            .cmp(&a.gate_count)
            .then_with(|| a.instance.cmp(&b.instance))
    });

    let mut groups: Vec<Vec<&BlockProfile>> = Vec::new();
    for b in order {
        let eligible = b.change_prone || b.busy_fraction <= rules.max_utilization;
        if !eligible {
            continue;
        }
        let mut placed = false;
        for g in &mut groups {
            let size_ok = g.iter().all(|m| {
                let (lo, hi) = if m.gate_count < b.gate_count {
                    (m.gate_count, b.gate_count)
                } else {
                    (b.gate_count, m.gate_count)
                };
                lo > 0 && (hi as f64 / lo as f64) <= rules.max_size_ratio
            });
            let overlap_ok = g
                .iter()
                .all(|m| profile.overlap_of(&m.instance, &b.instance) <= rules.max_overlap);
            if size_ok && overlap_ok {
                g.push(b);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(vec![b]);
        }
    }

    groups
        .into_iter()
        .filter(|g| g.len() >= rules.min_group || g.iter().any(|b| b.change_prone))
        .map(|g| {
            let instances: Vec<String> = g.iter().map(|b| b.instance.clone()).collect();
            let change = g.iter().filter(|b| b.change_prone).count();
            let max_util = g.iter().map(|b| b.busy_fraction).fold(0.0f64, f64::max);
            let rationale = format!(
                "{} block(s), peak utilization {:.0}%, {} change-prone; sizes {:?} gates",
                g.len(),
                max_util * 100.0,
                change,
                g.iter().map(|b| b.gate_count).collect::<Vec<_>>()
            );
            CandidateGroup {
                instances,
                rationale,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(name: &str, busy: f64, gates: u64) -> BlockProfile {
        BlockProfile {
            instance: name.into(),
            busy_fraction: busy,
            gate_count: gates,
            change_prone: false,
        }
    }

    #[test]
    fn similar_sized_non_overlapping_blocks_group() {
        let profile = ProfileData {
            blocks: vec![
                block("fir", 0.2, 10_000),
                block("fft", 0.25, 12_000),
                block("vit", 0.15, 11_000),
            ],
            overlap: vec![
                ("fir".into(), "fft".into(), 0.01),
                ("fir".into(), "vit".into(), 0.0),
                ("fft".into(), "vit".into(), 0.02),
            ],
        };
        let groups = select_candidates(&profile, &SelectionRules::default());
        assert_eq!(groups.len(), 1);
        let mut members = groups[0].instances.clone();
        members.sort();
        assert_eq!(members, vec!["fft", "fir", "vit"]);
        assert!(groups[0].rationale.contains("3 block(s)"));
    }

    #[test]
    fn concurrent_blocks_do_not_group() {
        let profile = ProfileData {
            blocks: vec![block("a", 0.3, 10_000), block("b", 0.3, 10_000)],
            overlap: vec![("a".into(), "b".into(), 0.3)], // heavily concurrent
        };
        let groups = select_candidates(&profile, &SelectionRules::default());
        assert!(groups.is_empty(), "{groups:?}");
    }

    #[test]
    fn size_mismatch_splits_groups() {
        let profile = ProfileData {
            blocks: vec![
                block("tiny", 0.1, 1_000),
                block("huge", 0.1, 100_000),
                block("tiny2", 0.1, 1_500),
            ],
            overlap: vec![],
        };
        let groups = select_candidates(&profile, &SelectionRules::default());
        // tiny + tiny2 group; huge is alone and dropped.
        assert_eq!(groups.len(), 1);
        let mut m = groups[0].instances.clone();
        m.sort();
        assert_eq!(m, vec!["tiny", "tiny2"]);
    }

    #[test]
    fn busy_blocks_are_ineligible() {
        let profile = ProfileData {
            blocks: vec![block("hot", 0.9, 10_000), block("cool", 0.1, 10_000)],
            overlap: vec![],
        };
        let groups = select_candidates(&profile, &SelectionRules::default());
        assert!(groups.is_empty(), "cool alone is below min_group");
    }

    #[test]
    fn change_prone_blocks_survive_alone_and_despite_utilization() {
        let mut hot = block("proto", 0.9, 10_000);
        hot.change_prone = true;
        let profile = ProfileData {
            blocks: vec![hot],
            overlap: vec![],
        };
        let groups = select_candidates(&profile, &SelectionRules::default());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].instances, vec!["proto"]);
        assert!(groups[0].rationale.contains("1 change-prone"));
    }

    #[test]
    fn overlap_lookup_is_symmetric_and_defaults_zero() {
        let p = ProfileData {
            blocks: vec![],
            overlap: vec![("a".into(), "b".into(), 0.4)],
        };
        assert_eq!(p.overlap_of("a", "b"), 0.4);
        assert_eq!(p.overlap_of("b", "a"), 0.4);
        assert_eq!(p.overlap_of("a", "c"), 0.0);
    }
}
