//! Phases 1 and 2 of the Fig. 4 methodology.
//!
//! * **Analysis of module** — for each candidate module, extract the ports
//!   and the implemented interfaces "so that the DRCF component can
//!   implement the same interfaces and ports".
//! * **Analysis of module instance** — locate each instance's declaration,
//!   constructor and port/interface bindings, "saved for later use".

use crate::design::{AccelSpec, Design, InstanceDef, InterfaceDef, ModuleKind, PortDef};

/// Everything phase 1 learns about one candidate module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleAnalysis {
    /// Module class name.
    pub module: String,
    /// Ports to replicate on the DRCF.
    pub ports: Vec<PortDef>,
    /// Interfaces the DRCF must implement.
    pub interfaces: Vec<InterfaceDef>,
    /// The accelerator behavior spec.
    pub spec: AccelSpec,
}

/// Everything phase 2 learns about one candidate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceAnalysis {
    /// The instance as declared.
    pub instance: InstanceDef,
    /// Hierarchy path of the module instantiating it.
    pub parent_path: Vec<String>,
}

/// Errors the analysis phases can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// Named module does not exist.
    UnknownModule(String),
    /// Named instance does not exist.
    UnknownInstance(String),
    /// The module is not an accelerator (only leaf accelerators can become
    /// contexts).
    NotAnAccelerator(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::UnknownModule(m) => write!(f, "unknown module '{m}'"),
            AnalyzeError::UnknownInstance(i) => write!(f, "unknown instance '{i}'"),
            AnalyzeError::NotAnAccelerator(m) => {
                write!(f, "module '{m}' is not a leaf accelerator")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Phase 1: analyze one module.
pub fn analyze_module(design: &Design, module: &str) -> Result<ModuleAnalysis, AnalyzeError> {
    let m = design
        .module(module)
        .ok_or_else(|| AnalyzeError::UnknownModule(module.to_string()))?;
    let spec = match &m.kind {
        ModuleKind::Accelerator(s) => s.clone(),
        _ => return Err(AnalyzeError::NotAnAccelerator(module.to_string())),
    };
    let interfaces = m
        .implements
        .iter()
        .filter_map(|n| design.interface(n).cloned())
        .collect();
    Ok(ModuleAnalysis {
        module: module.to_string(),
        ports: m.ports.clone(),
        interfaces,
        spec,
    })
}

/// Phase 2: analyze one instance by name, locating its enclosing
/// hierarchical module.
pub fn analyze_instance(design: &Design, inst: &str) -> Result<InstanceAnalysis, AnalyzeError> {
    let parent_path = design
        .top
        .find_instance(inst)
        .ok_or_else(|| AnalyzeError::UnknownInstance(inst.to_string()))?;
    let parent = design
        .top
        .module_at(&parent_path)
        .expect("path came from find_instance");
    let instance = parent
        .instances
        .iter()
        .find(|i| i.name == inst)
        .expect("instance is in its parent")
        .clone();
    Ok(InstanceAnalysis {
        instance,
        parent_path,
    })
}

/// Run both phases for a candidate set: module analyses (deduplicated by
/// module) and instance analyses, in candidate order.
pub fn analyze_candidates(
    design: &Design,
    candidates: &[&str],
) -> Result<(Vec<ModuleAnalysis>, Vec<InstanceAnalysis>), AnalyzeError> {
    let mut instances = Vec::with_capacity(candidates.len());
    let mut modules: Vec<ModuleAnalysis> = Vec::new();
    for &c in candidates {
        let ia = analyze_instance(design, c)?;
        if !modules.iter().any(|m| m.module == ia.instance.module) {
            modules.push(analyze_module(design, &ia.instance.module)?);
        }
        instances.push(ia);
    }
    Ok((modules, instances))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::example_design;

    #[test]
    fn module_analysis_extracts_ports_and_interfaces() {
        let d = example_design(2);
        let a = analyze_module(&d, "hwacc0").unwrap();
        assert_eq!(a.ports.len(), 2);
        assert_eq!(a.interfaces.len(), 1);
        assert_eq!(a.interfaces[0].name, "bus_slv_if");
        assert_eq!(a.spec.low_addr, 0x2000);
    }

    #[test]
    fn instance_analysis_locates_parent() {
        let d = example_design(2);
        let ia = analyze_instance(&d, "hwa1").unwrap();
        assert_eq!(ia.parent_path, vec!["top".to_string()]);
        assert_eq!(ia.instance.module, "hwacc1");
        assert_eq!(ia.instance.bindings.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let d = example_design(1);
        assert_eq!(
            analyze_module(&d, "nope"),
            Err(AnalyzeError::UnknownModule("nope".into()))
        );
        assert_eq!(
            analyze_instance(&d, "ghost"),
            Err(AnalyzeError::UnknownInstance("ghost".into()))
        );
        assert!(analyze_module(&d, "nope")
            .unwrap_err()
            .to_string()
            .contains("nope"));
    }

    #[test]
    fn candidate_analysis_dedups_modules() {
        let mut d = example_design(1);
        // Two instances of the same module.
        let mut second = d.top.instances[0].clone();
        second.name = "hwa0_bis".into();
        d.top.instances.push(second);
        let (mods, insts) = analyze_candidates(&d, &["hwa0", "hwa0_bis"]).unwrap();
        assert_eq!(mods.len(), 1);
        assert_eq!(insts.len(), 2);
    }
}
