//! # drcf-transform — the ADRIATIC transformation methodology
//!
//! The tool side of the paper: a design IR mirroring SystemC structure
//! ([`design`]), the four-phase transformation of Fig. 4 ([`analyze`],
//! [`template`], [`rewrite`]), the §5.4 limitation checks ([`validate`]),
//! the §5.1 candidate-selection rules of thumb ([`candidates`]),
//! pseudo-SystemC listing emission matching the paper's §5.2 listings
//! ([`codegen`]), and elaboration of designs into runnable simulations
//! ([`elaborate`]).

#![warn(missing_docs)]

pub mod analyze;
pub mod candidates;
pub mod codegen;
pub mod design;
pub mod elaborate;
pub mod rewrite;
pub mod template;
pub mod validate;

/// Commonly used items.
pub mod prelude {
    pub use crate::analyze::{analyze_candidates, analyze_instance, analyze_module};
    pub use crate::candidates::{
        select_candidates, BlockProfile, CandidateGroup, ProfileData, SelectionRules,
    };
    pub use crate::codegen::{emit_design, emit_hier_module, emit_interface, emit_module};
    pub use crate::design::{
        example_design, AccelSpec, Binding, Design, DrcfModuleSpec, HierModule, InstanceDef,
        InterfaceDef, MethodSig, ModuleDef, ModuleKind, PortDef, PortKind,
    };
    pub use crate::elaborate::{
        elaborate, BoxedModel, ElabConfigPath, Elaborated, ElaborationOptions, MasterFactory,
        ModelRegistry,
    };
    pub use crate::rewrite::{drcf_interface_range, transform_design, TransformResult};
    pub use crate::template::{create_drcf_module, TemplateOptions};
    pub use crate::validate::{is_legal, validate, ConfigTransport, Violation};
}
