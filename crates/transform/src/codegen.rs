//! Pseudo-SystemC listing emission.
//!
//! The paper demonstrates its methodology with code listings (§5.2): the
//! `bus_slv_if` interface, the `hwacc` module, the `top` hierarchical
//! module before and after the rewrite, and the generated `drcf_own`
//! component. This module regenerates listings of the same shape from the
//! IR, so the transformation's output can be inspected (and diffed in
//! tests) exactly the way the paper presents it.

use std::fmt::Write as _;

use crate::design::{Design, HierModule, InterfaceDef, ModuleDef, ModuleKind, PortKind};

/// Emit an interface definition, e.g. the paper's `bus_slv_if` listing.
pub fn emit_interface(i: &InterfaceDef) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "class {} : public virtual sc_interface", i.name);
    s.push_str("{\npublic:\n");
    for m in &i.methods {
        let _ = writeln!(s, "    {};", m.signature);
    }
    s.push_str("};\n");
    s
}

fn emit_ports(s: &mut String, m: &ModuleDef) {
    for p in &m.ports {
        match &p.kind {
            PortKind::ClockIn => {
                let _ = writeln!(s, "    sc_in_clk {};", p.name);
            }
            PortKind::Master { iface } => {
                let _ = writeln!(s, "    sc_port<{iface}> {};", p.name);
            }
        }
    }
}

/// Emit a module skeleton (accelerator or generated DRCF).
pub fn emit_module(design: &Design, m: &ModuleDef) -> String {
    let mut s = String::new();
    let bases: Vec<String> = std::iter::once("public sc_module".to_string())
        .chain(m.implements.iter().map(|i| format!("public {i}")))
        .collect();
    let _ = writeln!(s, "class {} : {}", m.name, bases.join(",\n              "));
    s.push_str("{\npublic:\n");
    emit_ports(&mut s, m);
    s.push('\n');
    match &m.kind {
        ModuleKind::Accelerator(spec) => {
            let _ = writeln!(
                s,
                "    // behavioral model '{}': [{:#x}, {:#x}], {} cycles/access, {} gates",
                spec.kind,
                spec.low_addr,
                spec.low_addr + spec.addr_words - 1,
                spec.access_cycles,
                spec.gate_count
            );
            s.push_str("    sc_uint<ADDW> get_low_add();\n");
            s.push_str("    sc_uint<ADDW> get_high_add();\n");
            s.push_str("    bool read(sc_uint<ADDW> add, sc_int<DATAW> *data);\n");
            s.push_str("    bool write(sc_uint<ADDW> add, sc_int<DATAW> *data);\n");
        }
        ModuleKind::Drcf(spec) => {
            // The declarations of the folded components (inserted lines are
            // italic in the paper; marked here).
            for cm in &spec.context_modules {
                let _ = writeln!(s, "    {cm} *{};  // <inserted>", inst_field(cm));
            }
            s.push('\n');
            s.push_str("    SC_HAS_PROCESS(");
            s.push_str(&m.name);
            s.push_str(");\n    void arb_and_instr();  // context scheduler + instrumentation\n");
            s.push_str("    sc_uint<ADDW> get_low_add();\n");
            s.push_str("    sc_uint<ADDW> get_high_add();\n");
            s.push_str("    bool read(sc_uint<ADDW> add, sc_int<DATAW> *data);\n");
            s.push_str("    bool write(sc_uint<ADDW> add, sc_int<DATAW> *data);\n\n");
            let _ = writeln!(s, "    SC_CTOR({}) {{", m.name);
            s.push_str("        SC_THREAD(arb_and_instr);\n");
            s.push_str("        sensitive_pos << clk;\n");
            for cm in &spec.context_modules {
                let field = inst_field(cm);
                let _ = writeln!(
                    s,
                    "        {field} = new {cm}(\"{}\");  // <inserted>",
                    cm.to_uppercase()
                );
                if let Some(md) = design.module(cm) {
                    for p in &md.ports {
                        let _ = writeln!(s, "        {field} ->{0}({0});  // <inserted>", p.name);
                    }
                }
            }
            s.push_str("    }\n");
            s.push('\n');
            let _ = writeln!(
                s,
                "    // context scheduler: {} slot(s), {} context(s), burst {} words, {} MHz",
                spec.slots,
                spec.context_modules.len(),
                spec.config_burst,
                spec.clock_mhz
            );
            for (cm, p) in spec.context_modules.iter().zip(&spec.context_params) {
                let _ = writeln!(
                    s,
                    "    //   context '{}': config @ {:#x}, {} words, {} slot(s)",
                    cm, p.config_addr, p.config_size_words, p.slots_needed
                );
            }
        }
    }
    s.push_str("};\n");
    s
}

fn inst_field(module: &str) -> String {
    format!("{}_i", module)
}

/// Emit a hierarchical module (the paper's `top` listing, before or after
/// transformation).
pub fn emit_hier_module(h: &HierModule) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "SC_MODULE({}){{", h.name);
    s.push_str("    sc_in_clk clk;\n\n");
    for i in &h.instances {
        let _ = writeln!(s, "    {} *{};", i.module, i.name);
    }
    s.push_str("    bus *system_bus;\n\n");
    let _ = writeln!(s, "    SC_CTOR({}) {{", h.name);
    s.push_str("        system_bus = new bus(\"BUS\");\n");
    s.push_str("        system_bus->clk(clk);\n");
    for i in &h.instances {
        let args = i
            .ctor_args
            .iter()
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>()
            .join(", ");
        let sep = if args.is_empty() { "" } else { ", " };
        let _ = writeln!(
            s,
            "        {} = new {}(\"{}\"{sep}{args});",
            i.name,
            i.module,
            i.name.to_uppercase()
        );
        for b in &i.bindings {
            if b.channel == "clk" {
                let _ = writeln!(s, "        {} ->clk(clk);", i.name);
            } else {
                let _ = writeln!(s, "        {} ->{}(*{});", i.name, b.port, b.channel);
            }
        }
        let _ = writeln!(s, "        system_bus->slv_port(*{});", i.name);
    }
    s.push_str("    }\n};\n");
    s
}

/// Emit the whole design: interfaces, modules, hierarchy.
pub fn emit_design(design: &Design) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "// design: {}\n", design.name);
    for i in &design.interfaces {
        s.push_str(&emit_interface(i));
        s.push('\n');
    }
    for m in &design.modules {
        s.push_str(&emit_module(design, m));
        s.push('\n');
    }
    s.push_str(&emit_hier_module(&design.top));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{example_design, InterfaceDef};
    use crate::rewrite::transform_design;
    use crate::template::TemplateOptions;
    use crate::validate::ConfigTransport;
    use drcf_core::prelude::{varicore, FabricGeometry};

    #[test]
    fn interface_listing_matches_papers_shape() {
        let s = emit_interface(&InterfaceDef::bus_slv_if());
        assert!(s.contains("class bus_slv_if : public virtual sc_interface"));
        assert!(s.contains("virtual sc_uint<ADDW> get_low_add()=0;"));
        assert!(s.contains("virtual bool write(sc_uint<ADDW> add, sc_int<DATAW> *data)=0;"));
    }

    #[test]
    fn hier_listing_before_and_after_transformation() {
        let d = example_design(2);
        let before = emit_hier_module(&d.top);
        assert!(before.contains("hwa0 = new hwacc0(\"HWA0\", HWA0_START, HWA0_END);"));
        assert!(before.contains("system_bus->slv_port(*hwa0);"));
        assert!(before.contains("hwa0 ->mst_port(*system_bus);"));

        let opts = TemplateOptions::new(varicore(), FabricGeometry::new(40_000, 1));
        let r = transform_design(
            &d,
            &["hwa0", "hwa1"],
            &opts,
            ConfigTransport::SharedInterfaceBus {
                split_transactions: true,
            },
        )
        .unwrap();
        let after = emit_hier_module(&r.design.top);
        // The paper's key diff: drcf1 instance of drcf_own replaces hwa.
        assert!(after.contains("drcf_own *drcf1;"));
        assert!(after.contains("drcf1 = new drcf_own(\"DRCF1\");"));
        assert!(after.contains("drcf1 ->clk(clk);"));
        assert!(after.contains("drcf1 ->mst_port(*system_bus);"));
        assert!(after.contains("system_bus->slv_port(*drcf1);"));
        assert!(!after.contains("hwa0 ="), "candidates removed");
    }

    #[test]
    fn drcf_module_listing_contains_scheduler_and_inserted_lines() {
        let d = example_design(2);
        let opts = TemplateOptions::new(varicore(), FabricGeometry::new(40_000, 1));
        let r = transform_design(
            &d,
            &["hwa0", "hwa1"],
            &opts,
            ConfigTransport::SharedInterfaceBus {
                split_transactions: true,
            },
        )
        .unwrap();
        let m = r.design.module("drcf_own").unwrap();
        let s = emit_module(&r.design, m);
        assert!(s.contains("class drcf_own : public sc_module"));
        assert!(s.contains("public bus_slv_if"));
        assert!(s.contains("SC_THREAD(arb_and_instr);"));
        assert!(s.contains("sensitive_pos << clk;"));
        assert!(s.contains("hwacc0 *hwacc0_i;  // <inserted>"));
        assert!(s.contains("context 'hwacc0': config @"));
    }

    #[test]
    fn full_design_emission_is_self_consistent() {
        let d = example_design(3);
        let s = emit_design(&d);
        assert!(s.contains("// design: adriatic_example"));
        for m in &d.modules {
            assert!(s.contains(&format!("class {}", m.name)));
        }
        assert!(s.contains("SC_MODULE(top)"));
    }
}
