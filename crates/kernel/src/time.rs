//! Simulated time.
//!
//! Time is kept in integer femtoseconds, which gives sub-picosecond
//! resolution while still covering ~5 hours of simulated time in a `u64` —
//! far beyond what any system-level run in this repository needs. Integer
//! time makes the kernel fully deterministic: there is no floating-point
//! accumulation error, and two schedules that are equal compare equal.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Femtoseconds per unit, used by the constructors below.
pub const FS_PER_PS: u64 = 1_000;
/// Femtoseconds per nanosecond.
pub const FS_PER_NS: u64 = 1_000_000;
/// Femtoseconds per microsecond.
pub const FS_PER_US: u64 = 1_000_000_000;
/// Femtoseconds per millisecond.
pub const FS_PER_MS: u64 = 1_000_000_000_000;
/// Femtoseconds per second.
pub const FS_PER_S: u64 = 1_000_000_000_000_000;

/// An absolute point in simulated time, in femtoseconds since elaboration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in femtoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero (start of simulation).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw femtosecond count.
    #[inline]
    pub fn as_fs(self) -> u64 {
        self.0
    }

    /// Time as fractional nanoseconds (for reports only, never for ordering).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / FS_PER_US as f64
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0.checked_sub(earlier.0).unwrap_or_else(|| {
                time_arith_overflow("SimTime::since: earlier is later than self")
            }),
        )
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from femtoseconds.
    #[inline]
    pub const fn fs(v: u64) -> SimDuration {
        SimDuration(v)
    }
    /// Construct from picoseconds.
    #[inline]
    pub const fn ps(v: u64) -> SimDuration {
        SimDuration(v * FS_PER_PS)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn ns(v: u64) -> SimDuration {
        SimDuration(v * FS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn us(v: u64) -> SimDuration {
        SimDuration(v * FS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn ms(v: u64) -> SimDuration {
        SimDuration(v * FS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn s(v: u64) -> SimDuration {
        SimDuration(v * FS_PER_S)
    }

    /// Duration of `cycles` periods of a clock running at `freq_mhz` MHz.
    ///
    /// This is the conversion used throughout the bus and fabric models when
    /// turning cycle counts into simulated time.
    #[inline]
    pub fn cycles_at_mhz(cycles: u64, freq_mhz: u64) -> SimDuration {
        debug_assert!(freq_mhz > 0, "clock frequency must be nonzero");
        // period in fs = 1e15 / (freq_mhz * 1e6) = 1e9 / freq_mhz
        SimDuration(cycles * (1_000_000_000 / freq_mhz))
    }

    /// Raw femtosecond count.
    #[inline]
    pub fn as_fs(self) -> u64 {
        self.0
    }

    /// Duration as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// Duration as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / FS_PER_US as f64
    }

    /// True if zero length.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Fraction of `total` this duration represents, in [0, 1] for
    /// sub-durations. Returns 0.0 when `total` is zero.
    #[inline]
    pub fn fraction_of(self, total: SimDuration) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }
}

/// Diverging sink for time-arithmetic overflow. Operator impls cannot
/// return `Result`, so out-of-range arithmetic on simulation time is a
/// programming error by contract; this is the single panic site for all
/// of them.
#[cold]
#[inline(never)]
#[track_caller]
fn time_arith_overflow(what: &str) -> ! {
    panic!("simulation time arithmetic out of range: {what}")
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).unwrap_or_else(|| {
            time_arith_overflow("SimTime overflow: schedule beyond u64 femtoseconds")
        }))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).unwrap_or_else(|| {
            time_arith_overflow("SimTime underflow: subtracting past time zero")
        }))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .unwrap_or_else(|| time_arith_overflow("SimDuration overflow in addition")),
        )
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .unwrap_or_else(|| time_arith_overflow("SimDuration underflow in subtraction")),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .unwrap_or_else(|| time_arith_overflow("SimDuration overflow in multiplication")),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_fs(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_fs(self.0))
    }
}

/// Render a femtosecond count with the largest unit that divides it cleanly
/// enough to read (three significant decimals at most).
fn format_fs(fs: u64) -> String {
    const UNITS: [(u64, &str); 6] = [
        (FS_PER_S, "s"),
        (FS_PER_MS, "ms"),
        (FS_PER_US, "us"),
        (FS_PER_NS, "ns"),
        (FS_PER_PS, "ps"),
        (1, "fs"),
    ];
    for &(scale, unit) in &UNITS {
        if fs >= scale {
            let whole = fs / scale;
            let frac = fs % scale;
            if frac == 0 {
                return format!("{whole}{unit}");
            }
            let v = fs as f64 / scale as f64;
            return format!("{v:.3}{unit}");
        }
    }
    "0fs".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::ps(1).as_fs(), 1_000);
        assert_eq!(SimDuration::ns(1).as_fs(), 1_000_000);
        assert_eq!(SimDuration::us(2).as_fs(), 2_000_000_000);
        assert_eq!(SimDuration::ms(3), SimDuration::us(3000));
        assert_eq!(SimDuration::s(1), SimDuration::ms(1000));
    }

    #[test]
    fn cycles_at_mhz_matches_period() {
        // 100 MHz -> 10 ns period.
        assert_eq!(SimDuration::cycles_at_mhz(1, 100), SimDuration::ns(10));
        assert_eq!(SimDuration::cycles_at_mhz(5, 100), SimDuration::ns(50));
        // 250 MHz -> 4 ns period (VariCore clock rate from the paper).
        assert_eq!(SimDuration::cycles_at_mhz(1, 250), SimDuration::ns(4));
        // 200 MHz multipliers on Virtex-II Pro -> 5 ns.
        assert_eq!(SimDuration::cycles_at_mhz(1, 200), SimDuration::ns(5));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::ns(5);
        assert_eq!(t.as_fs(), 5 * FS_PER_NS);
        let t2 = t + SimDuration::ns(7);
        assert_eq!(t2.since(t), SimDuration::ns(7));
        assert_eq!(t2 - SimDuration::ns(12), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.saturating_since(t2), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_panics_on_inverted_order() {
        let _ = SimTime::ZERO.since(SimTime(1));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::ns(10) * 3;
        assert_eq!(d, SimDuration::ns(30));
        assert_eq!(d / 2, SimDuration::ns(15));
        assert_eq!(d.saturating_sub(SimDuration::us(1)), SimDuration::ZERO);
        assert_eq!(SimDuration::ns(3).fraction_of(SimDuration::ns(12)), 0.25);
        assert_eq!(SimDuration::ns(3).fraction_of(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::ns(10).to_string(), "10ns");
        assert_eq!(SimDuration::fs(1_500_000).to_string(), "1.500ns");
        assert_eq!(SimDuration::ZERO.to_string(), "0fs");
        assert_eq!(SimTime(FS_PER_S).to_string(), "1s");
    }

    #[test]
    fn ordering_is_total_on_raw_fs() {
        let mut v = vec![SimTime(5), SimTime(1), SimTime(3)];
        v.sort();
        assert_eq!(v, vec![SimTime(1), SimTime(3), SimTime(5)]);
    }
}
